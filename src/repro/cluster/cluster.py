"""A simulated shared-nothing cluster: the library's main facade.

Wraps a partitioned database with the distributed execution engine, a SQL
front end and bulk loading, standing in for the paper's XDB middleware
over MySQL nodes.  Example::

    cluster = SimulatedCluster.partition(database, config)
    result = cluster.sql("SELECT COUNT(*) AS n FROM lineitem l")
    print(result.rows, result.simulated_seconds())
    print(result.explain_operators())

Queries run on a pluggable engine backend; the default is a
:class:`~repro.engine.backends.ThreadPoolBackend` shared by every query
of the cluster, which executes independent per-partition operator tasks
concurrently between exchange barriers.  Pass ``backend="serial"`` (or a
:class:`~repro.engine.backends.SerialBackend` instance) for
single-threaded execution, or ``backend="process"`` for true multicore
execution on a fork-capable platform — results and stats are identical
across all backends by construction (the equivalence suite pins this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.node import NodeReport
from repro.engine.backends import Backend, ThreadPoolBackend, make_backend
from repro.engine.rows import DEFAULT_BATCH_SIZE
from repro.partitioning.bulk_loader import BulkLoader
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.partitioner import partition_database
from repro.query.cost import CostParameters
from repro.query.executor import Executor, QueryResult
from repro.query.plan import PlanNode
from repro.sql.planner import sql_to_plan
from repro.storage.partitioned import PartitionedDatabase
from repro.storage.table import Database

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serve.server import ClusterServer


def _text_result(lines: list[str]) -> QueryResult:
    """A :class:`QueryResult` carrying rendered plan text as rows.

    Shaped like an RDBMS ``EXPLAIN`` resultset: one ``(plan,)`` row per
    line.  ``stats`` is empty and ``plan`` is None — there is no executed
    query behind the rows themselves.
    """
    from repro.query.cost import ExecutionStats

    return QueryResult(
        ("plan",), [(line,) for line in lines], ExecutionStats(0), None
    )


class SimulatedCluster:
    """A cluster of ``n`` simulated nodes holding one partitioned database.

    Args:
        database: The unpartitioned source database.
        partitioned: Its partitioned form (one store per node).
        config: The partitioning configuration that produced it.
        cost: Cost parameters of the simulated hardware; stamped onto
            every :class:`QueryResult` so ``result.simulated_seconds()``
            uses them without re-passing.
        optimizations: Enable the paper's hasS-index rewrites.
        locality: Ablation switch — ``False`` makes the rewriter ignore
            the co-partitioning cases (1)-(3) and shuffle every join, as
            an engine unaware of PREF placement would.
        backend: Engine scheduling backend — an instance or a name from
            :data:`~repro.engine.backends.BACKENDS` (``"serial"``,
            ``"thread"``, ``"process"``).  Default: a thread pool shared
            across this cluster's queries.
        batch_size: Rows per expression-kernel invocation in the
            pipeline operators (default
            :data:`~repro.engine.rows.DEFAULT_BATCH_SIZE`); a pure
            granularity knob — results are invariant in it.
        predicate_transfer: Enable Bloom-filter predicate transfer across
            the join graph (results are invariant in this knob; bytes
            shuffled and rows shipped drop on non-co-partitioned joins).
        bloom_fpr: Target false-positive rate of the transferred Bloom
            filters, in (0, 1).
    """

    def __init__(
        self,
        database: Database,
        partitioned: PartitionedDatabase,
        config: PartitioningConfig,
        cost: CostParameters | None = None,
        optimizations: bool = True,
        locality: bool = True,
        backend: Backend | str | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        predicate_transfer: bool = False,
        bloom_fpr: float = 0.01,
    ) -> None:
        self.database = database
        self.partitioned = partitioned
        self.config = config
        self.cost = cost or CostParameters()
        self.backend = make_backend(backend) or ThreadPoolBackend()
        self._executor_options = {
            "optimizations": optimizations,
            "locality": locality,
            "batch_size": batch_size,
            "predicate_transfer": predicate_transfer,
            "bloom_fpr": bloom_fpr,
        }
        self.executor = Executor(
            partitioned,
            backend=self.backend,
            cost=self.cost,
            **self._executor_options,
        )
        self.loader = BulkLoader(partitioned, config)

    @classmethod
    def partition(
        cls,
        database: Database,
        config: PartitioningConfig,
        cost: CostParameters | None = None,
        optimizations: bool = True,
        locality: bool = True,
        backend: Backend | str | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        predicate_transfer: bool = False,
        bloom_fpr: float = 0.01,
    ) -> "SimulatedCluster":
        """Partition *database* under *config* and wrap it in a cluster."""
        partitioned = partition_database(database, config)
        return cls(
            database,
            partitioned,
            config,
            cost,
            optimizations,
            locality=locality,
            backend=backend,
            batch_size=batch_size,
            predicate_transfer=predicate_transfer,
            bloom_fpr=bloom_fpr,
        )

    @property
    def node_count(self) -> int:
        """Number of nodes (== partitions)."""
        return self.partitioned.partition_count

    # -- querying ------------------------------------------------------------

    def run(
        self,
        plan: PlanNode,
        analyze: bool = False,
        query_name: str | None = None,
    ) -> QueryResult:
        """Execute a logical plan on the cluster.

        With ``analyze=True`` the result carries a query trace and
        ``result.explain_analyze()`` renders the annotated-vs-measured
        plan."""
        return self.executor.execute(plan, analyze=analyze, query_name=query_name)

    def sql(self, text: str, analyze: bool = False) -> QueryResult:
        """Parse, plan, and execute a SQL statement.

        A leading ``EXPLAIN [ANALYZE]`` prefix turns the statement into
        its plan rendering: the result holds one ``(plan,)`` row per
        output line instead of query rows (ANALYZE runs the query and
        renders measurements; plain EXPLAIN only plans it).
        """
        from repro.sql.planner import strip_explain

        mode, body = strip_explain(text)
        if mode == "explain":
            lines = self.explain(body).splitlines()
            return _text_result(lines)
        plan = sql_to_plan(body, self.database.schema)
        if mode == "explain_analyze":
            result = self.run(plan, analyze=True)
            return _text_result(result.explain_analyze().splitlines())
        return self.run(plan, analyze=analyze)

    def explain(self, plan_or_sql: PlanNode | str) -> str:
        """The annotated physical plan, as text."""
        if isinstance(plan_or_sql, str):
            plan = sql_to_plan(plan_or_sql, self.database.schema)
        else:
            plan = plan_or_sql
        return self.executor.explain(plan)

    def explain_analyze(
        self, plan_or_sql: PlanNode | str, query_name: str | None = None
    ) -> str:
        """Run the query traced and render ``EXPLAIN ANALYZE`` text."""
        if isinstance(plan_or_sql, str):
            plan = sql_to_plan(plan_or_sql, self.database.schema)
        else:
            plan = plan_or_sql
        return self.run(plan, analyze=True, query_name=query_name).explain_analyze()

    def simulated_seconds(self, plan: PlanNode) -> float:
        """Execute *plan* and return its simulated runtime."""
        return self.run(plan).simulated_seconds(self.cost)

    def serve(self, **options) -> "ClusterServer":
        """A started :class:`~repro.serve.ClusterServer` over this cluster.

        Keyword options are forwarded (``max_inflight``, ``queue_depth``,
        ``queue_timeout``, ``plan_cache_size``, ``result_cache_size``,
        ``metrics``).  Use as a context manager::

            with cluster.serve(queue_depth=64) as server:
                ticket = server.submit("SELECT ...")

        While serving, route bulk loads through ``server.load`` (not
        ``cluster.loader``) so epochs bump and dependent cache entries
        drop.
        """
        from repro.serve.server import ClusterServer

        return ClusterServer(self, **options).start()

    def close(self) -> None:
        """Release the engine backend's scheduler resources."""
        self.backend.close()

    # -- online repartitioning ---------------------------------------------------

    def repartition(self, new_config: PartitioningConfig):
        """Switch this cluster to *new_config* in place; return the plan.

        The current logical database is rebuilt from the canonical rows of
        the partitioned tables (NOT from the original source database —
        incremental loads since partitioning live only in the partitions),
        re-partitioned under *new_config*, and swapped in together with a
        fresh executor and loader.  Returns the
        :class:`~repro.partitioning.migration.MigrationPlan` comparing old
        and new placements.

        Not concurrency-safe on its own: when the cluster is being served,
        call :meth:`repro.serve.ClusterServer.migrate` instead, which runs
        this under the serve layer's write lock and invalidates caches.
        """
        from repro.partitioning.migration import plan_migration

        database = Database(self.database.schema)
        for name in self.database.schema.table_names:
            if self.partitioned.has_table(name):
                database.load(
                    name, list(self.partitioned.table(name).canonical_rows())
                )
            else:
                database.load(name, list(self.database.table(name).rows))
        new_partitioned = partition_database(database, new_config)
        plan = plan_migration(
            database,
            self.config,
            new_config,
            old_partitioned=self.partitioned,
            new_partitioned=new_partitioned,
        )
        self.database = database
        self.partitioned = new_partitioned
        self.config = new_config
        self.executor = Executor(
            new_partitioned,
            backend=self.backend,
            cost=self.cost,
            **self._executor_options,
        )
        self.loader = BulkLoader(new_partitioned, new_config)
        return plan

    # -- storage -----------------------------------------------------------------

    def node_reports(self) -> list[NodeReport]:
        """Per-node storage snapshots."""
        reports = []
        for node_id in range(self.node_count):
            tables = {}
            rows = 0
            size = 0
            for name, table in self.partitioned.tables.items():
                partition = table.partitions[node_id]
                tables[name] = partition.row_count
                rows += partition.row_count
                size += partition.row_count * table.schema.row_byte_width
            reports.append(NodeReport(node_id, rows, size, tables))
        return reports

    def data_redundancy(self) -> float:
        """DR of the stored database."""
        return self.partitioned.data_redundancy()
