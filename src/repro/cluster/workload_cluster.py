"""A multi-fragment deployment of a workload-driven design.

The WD algorithm produces several merged MASTs, each materialised as its
own physical database (paper Section 4: "for query execution, a query can
be routed to the MAST which contains the query and which has minimal
data-redundancy for all tables read by that query").  This facade builds
all fragment clusters, routes queries to them, and reports combined
storage numbers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cluster.cluster import SimulatedCluster
from repro.design.estimator import RedundancyEstimator
from repro.engine.backends import Backend, ThreadPoolBackend
from repro.design.workload import QuerySpec
from repro.design.workload_driven import (
    WorkloadDesignResult,
    WorkloadDrivenDesigner,
    route_to_config,
)
from repro.errors import DesignError
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import HashScheme, ReplicatedScheme
from repro.query.cost import CostParameters
from repro.query.executor import QueryResult
from repro.query.plan import PlanNode
from repro.sql.planner import sql_to_plan
from repro.storage.table import Database


class WorkloadCluster:
    """Fragment clusters for one workload-driven design, with routing."""

    def __init__(
        self,
        database: Database,
        design: WorkloadDesignResult,
        partition_count: int,
        replicate: Iterable[str] = (),
        cost: CostParameters | None = None,
        backend: Backend | None = None,
    ) -> None:
        self.database = database
        self.design = design
        self.partition_count = partition_count
        self.replicated = tuple(replicate) or design.replicated
        self.cost = cost or CostParameters()
        #: One engine backend shared by every fragment cluster, so a
        #: routed workload reuses a single scheduler/thread pool.
        self.backend = backend or ThreadPoolBackend()
        self._estimator = RedundancyEstimator(database, partition_count)
        self.configs: list[PartitioningConfig] = [
            self._covering_config(fragment.config)
            for fragment in design.fragments
        ]
        self.clusters: list[SimulatedCluster] = [
            SimulatedCluster.partition(
                database, config, cost=self.cost, backend=self.backend
            )
            for config in self.configs
        ]

    @classmethod
    def design(
        cls,
        database: Database,
        workload: Sequence[QuerySpec],
        partition_count: int,
        replicate: Iterable[str] = (),
        sampling_rate: float = 1.0,
        cost: CostParameters | None = None,
        backend: Backend | None = None,
    ) -> "WorkloadCluster":
        """Run the WD algorithm and materialise every fragment."""
        designer = WorkloadDrivenDesigner(
            database, partition_count, sampling_rate=sampling_rate
        )
        result = designer.design(workload, replicate=replicate)
        return cls(
            database,
            result,
            partition_count,
            replicate=replicate,
            cost=cost,
            backend=backend,
        )

    # -- routing ------------------------------------------------------------

    def route_tables(self, tables: Iterable[str]) -> int:
        """Fragment index covering *tables* with minimal redundancy."""
        choice = route_to_config(
            frozenset(tables),
            [fragment.config for fragment in self.design.fragments],
            self._estimator,
            replicated=self.replicated,
        )
        if choice is None:
            raise DesignError(
                f"no fragment covers tables {sorted(set(tables))}"
            )
        return choice

    def route_plan(self, plan: PlanNode) -> int:
        """Fragment index for a logical plan (by its base tables)."""
        spec = QuerySpec.from_plan("q", plan, self.database.schema)
        return self.route_tables(spec.tables)

    # -- execution -------------------------------------------------------------

    def run(self, plan: PlanNode) -> QueryResult:
        """Route and execute a logical plan."""
        return self.clusters[self.route_plan(plan)].run(plan)

    def sql(self, text: str) -> QueryResult:
        """Route and execute a SQL statement."""
        return self.run(sql_to_plan(text, self.database.schema))

    def explain(self, text: str) -> str:
        """The annotated physical plan on the routed fragment."""
        plan = sql_to_plan(text, self.database.schema)
        index = self.route_plan(plan)
        return (
            f"-- routed to fragment {index}\n"
            + self.clusters[index].explain(plan)
        )

    def close(self) -> None:
        """Release the shared engine backend's scheduler resources."""
        self.backend.close()

    # -- storage ------------------------------------------------------------------

    def total_stored_rows(self) -> int:
        """Stored rows over all fragments, sharing identical schemes."""
        from repro.design.workload_driven import _scheme_signature

        seen: set[tuple] = set()
        total = 0
        for cluster in self.clusters:
            for table in cluster.config.tables:
                signature = (table, _scheme_signature(cluster.config, table))
                if signature in seen:
                    continue
                seen.add(signature)
                total += cluster.partitioned.table(table).total_rows
        return total

    def data_redundancy(self) -> float:
        """Combined DR over the union of tables stored by the fragments."""
        tables = {
            table for cluster in self.clusters for table in cluster.config.tables
        }
        base = sum(self.database.table(table).row_count for table in tables)
        if base == 0:
            return 0.0
        return self.total_stored_rows() / base - 1.0

    # -- internals -------------------------------------------------------------------

    def _covering_config(
        self, fragment_config: PartitioningConfig
    ) -> PartitioningConfig:
        """Fragment config + replicated small tables + hash-PK defaults."""
        config = PartitioningConfig(self.partition_count)
        for table, scheme in fragment_config:
            config.add(table, scheme)
        for table in self.replicated:
            if self.database.schema.has_table(table) and table not in config:
                config.add(table, ReplicatedScheme(self.partition_count))
        for table in self.database.schema.table_names:
            if table in config:
                continue
            table_schema = self.database.schema.table(table)
            columns = table_schema.primary_key or (
                table_schema.columns[0].name,
            )
            config.add(
                table, HashScheme(tuple(columns), self.partition_count)
            )
        return config
