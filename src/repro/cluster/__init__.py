"""Simulated shared-nothing cluster facades."""

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.node import NodeReport
from repro.cluster.workload_cluster import WorkloadCluster

__all__ = ["NodeReport", "SimulatedCluster", "WorkloadCluster"]
