"""Per-node views of a simulated shared-nothing cluster."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeReport:
    """Storage snapshot of one simulated node.

    Attributes:
        node_id: Node index (== partition index).
        rows: Stored row copies on this node.
        bytes: Nominal stored bytes on this node.
        tables: Row count per table on this node.
    """

    node_id: int
    rows: int
    bytes: int
    tables: dict[str, int]
