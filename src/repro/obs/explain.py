"""``EXPLAIN ANALYZE`` rendering and JSON export of query traces.

Three output contracts, all over the same :class:`~repro.obs.span.QueryTrace`:

* :func:`render_analyze` — the human text form: one line per operator,
  the rewriter's static ``Part``/``Dup`` annotation side by side with the
  measured rows, shuffle volume, duplicate elimination, locality ratio
  and per-partition skew.
* :func:`trace_to_json` — a plain-dict export that validates against the
  checked-in ``trace_schema.json`` (CI asserts this on every backend).
* :func:`validate_trace` — an in-house validator for the JSON-Schema
  subset the trace schema uses (the container deliberately has no
  third-party ``jsonschema``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.span import OperatorSpan, QueryTrace

#: Location of the JSON schema the exported traces must satisfy.
SCHEMA_PATH = Path(__file__).with_name("trace_schema.json")


# --------------------------------------------------------------------------
# JSON export
# --------------------------------------------------------------------------


def span_to_json(span: OperatorSpan) -> dict:
    """One span (and its subtree) as schema-conforming plain data."""
    return {
        "op_id": span.op_id,
        "label": span.label,
        "name": span.name,
        "method": span.method,
        "hash_columns": list(span.hash_columns),
        "dup": span.dup,
        "governing": list(span.governing),
        "strategy": span.strategy,
        "case": span.case,
        "rows_in": span.rows_in,
        "rows_out": span.rows_out,
        "rows_out_by_partition": {
            str(partition): rows
            for partition, rows in sorted(span.rows_out_by_partition.items())
        },
        "dup_eliminated": span.dup_eliminated,
        "network_bytes": span.network_bytes,
        "rows_shipped": span.rows_shipped,
        "shuffles": span.shuffles,
        "partitions_scanned": span.partitions_scanned,
        "bloom_filters": span.bloom_filters,
        "bloom_probed": span.bloom_probed,
        "bloom_pruned": span.bloom_pruned,
        "patch_rows": span.patch_rows,
        "node_work": list(span.node_work),
        "seconds": span.seconds,
        "locality": span.locality,
        "skew": span.skew,
        "tasks": [
            {
                "phase": task.phase,
                "node_id": task.node_id,
                "seconds": task.seconds,
                "worker": task.worker,
            }
            for task in span.tasks
        ],
        "children": [span_to_json(child) for child in span.children],
    }


def trace_to_json(trace: QueryTrace) -> dict:
    """The whole trace as plain data (``json.dumps``-able)."""
    return {
        "version": 1,
        "query": trace.query,
        "backend": trace.backend,
        "node_count": trace.node_count,
        "root": span_to_json(trace.root),
        "metrics": trace.metrics.snapshot(),
    }


def dump_trace(trace: QueryTrace, path: str | Path) -> None:
    """Write the JSON export of *trace* to *path*."""
    Path(path).write_text(json.dumps(trace_to_json(trace), indent=2))


# --------------------------------------------------------------------------
# Schema validation (in-house JSON-Schema subset)
# --------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def load_trace_schema() -> dict:
    """The checked-in trace schema, parsed."""
    return json.loads(SCHEMA_PATH.read_text())


def validate_trace(data: object, schema: dict | None = None) -> list[str]:
    """Validate *data* against *schema* (default: the trace schema).

    Returns a list of human-readable violations — empty means valid.
    Supports the subset of JSON Schema the trace schema uses: ``type``
    (single or list), ``properties`` + ``required`` +
    ``additionalProperties``, ``items``, ``enum``, ``minimum``, and
    local ``$ref``/``$defs`` (which is what makes the recursive span
    definition work).
    """
    root = schema if schema is not None else load_trace_schema()
    errors: list[str] = []

    def resolve(node: dict) -> dict:
        while "$ref" in node:
            reference = node["$ref"]
            if not reference.startswith("#/"):
                raise ValueError(f"unsupported $ref {reference!r}")
            target: object = root
            for part in reference[2:].split("/"):
                target = target[part]  # type: ignore[index]
            node = target  # type: ignore[assignment]
        return node

    def check_type(value: object, expected: str) -> bool:
        if expected == "number":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if expected == "integer":
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, _TYPES[expected])

    def check(value: object, node: dict, path: str) -> None:
        node = resolve(node)
        declared = node.get("type")
        if declared is not None:
            options = declared if isinstance(declared, list) else [declared]
            if not any(check_type(value, option) for option in options):
                errors.append(
                    f"{path or '$'}: expected {declared}, "
                    f"got {type(value).__name__}"
                )
                return
        if "enum" in node and value not in node["enum"]:
            errors.append(f"{path or '$'}: {value!r} not in {node['enum']!r}")
        if "minimum" in node and isinstance(value, (int, float)):
            if not isinstance(value, bool) and value < node["minimum"]:
                errors.append(f"{path or '$'}: {value!r} < {node['minimum']}")
        if isinstance(value, dict):
            for name in node.get("required", ()):
                if name not in value:
                    errors.append(f"{path or '$'}: missing property {name!r}")
            properties = node.get("properties", {})
            additional = node.get("additionalProperties", True)
            for name, item in value.items():
                if name in properties:
                    check(item, properties[name], f"{path}.{name}")
                elif additional is False:
                    errors.append(f"{path or '$'}: unexpected property {name!r}")
                elif isinstance(additional, dict):
                    check(item, additional, f"{path}.{name}")
        if isinstance(value, list) and "items" in node:
            for index, item in enumerate(value):
                check(item, node["items"], f"{path}[{index}]")

    check(data, root, "")
    return errors


# --------------------------------------------------------------------------
# Text rendering
# --------------------------------------------------------------------------


def _annotation(span: OperatorSpan) -> str:
    """The rewriter's static annotation, matching ``Annotated.explain``."""
    parts = [span.method]
    if span.hash_columns:
        parts[0] += f" on {','.join(span.hash_columns)}"
    parts.append(f"dup={int(span.dup)}")
    if span.strategy:
        strategy = span.strategy
        if span.case:
            strategy += f"/{span.case}"
        parts.append(strategy)
    return f"[{', '.join(parts)}]"


def _measured(span: OperatorSpan) -> str:
    """The measured counters, aligned with the static annotation."""
    rows_in = span.rows_in
    arrow = f"{rows_in}->{span.rows_out}" if rows_in is not None else str(span.rows_out)
    fields = [f"rows={arrow}"]
    if span.rows_shipped or span.network_bytes:
        fields.append(f"shipped={span.rows_shipped} ({span.network_bytes}B)")
    if span.shuffles:
        fields.append(f"shuffles={span.shuffles}")
    if span.dup_eliminated:
        fields.append(f"dup_elim={span.dup_eliminated}")
    if span.bloom_probed or span.bloom_filters:
        fields.append(f"bloom_pruned={span.bloom_pruned}/{span.bloom_probed}")
    if span.patch_rows:
        fields.append(f"patch_shipped={span.patch_rows}")
    if span.partitions_scanned:
        fields.append(f"parts={span.partitions_scanned}")
    locality = span.locality
    if locality is not None:
        fields.append(f"locality={locality:.0%}")
    skew = span.skew
    if skew is not None:
        fields.append(f"skew={skew:.2f}")
    fields.append(f"time={span.seconds * 1e3:.2f}ms")
    return "  ".join(fields)


def render_analyze(trace: QueryTrace) -> str:
    """The ``EXPLAIN ANALYZE`` text form of *trace*.

    One line per operator (plan order, children indented), static
    annotation first, measured counters second, then a totals footer
    from the merged metrics registry.
    """
    lines = []
    header = "EXPLAIN ANALYZE"
    if trace.query:
        header += f" {trace.query}"
    if trace.backend:
        header += f" (backend={trace.backend}, nodes={trace.node_count})"
    else:
        header += f" (nodes={trace.node_count})"
    lines.append(header)

    def walk(span: OperatorSpan, indent: int) -> None:
        lines.append(
            f"{'  ' * indent}{span.label} {_annotation(span)}  {_measured(span)}"
        )
        for child in span.children:
            walk(child, indent + 1)

    walk(trace.root, 0)
    counters = trace.metrics.counters
    lines.append(
        "totals: "
        + "  ".join(
            f"{name.removeprefix('engine.')}={int(value)}"
            for name, value in sorted(counters.items())
            if name.startswith("engine.")
        )
    )
    return "\n".join(lines)
