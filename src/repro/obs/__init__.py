"""Query-lifecycle observability: metrics, spans, and EXPLAIN ANALYZE.

``repro.obs`` has three layers:

* :mod:`repro.obs.metrics` — a process-safe :class:`MetricsRegistry` of
  counters and histograms whose deltas merge commutatively alongside the
  cost stats (identical totals on every backend);
* :mod:`repro.obs.span` — the :class:`QueryTrace`/:class:`OperatorSpan`
  span tree built from one finished execution, with measured locality
  and per-partition skew;
* :mod:`repro.obs.explain` — ``EXPLAIN ANALYZE`` text rendering, JSON
  export, and schema validation of traces.

Attributes are loaded lazily (PEP 562) so importing the metrics module
from the engine never drags the span/explain layers — or anything that
imports the engine — back in.
"""

from __future__ import annotations

_EXPORTS = {
    "Histogram": "repro.obs.metrics",
    "MetricsRegistry": "repro.obs.metrics",
    "ROW_BUCKETS": "repro.obs.metrics",
    "TIME_BUCKETS": "repro.obs.metrics",
    "TIMING_PREFIX": "repro.obs.metrics",
    "OperatorSpan": "repro.obs.span",
    "QueryTrace": "repro.obs.span",
    "TaskSpan": "repro.obs.span",
    "build_trace": "repro.obs.span",
    "dump_trace": "repro.obs.explain",
    "load_trace_schema": "repro.obs.explain",
    "render_analyze": "repro.obs.explain",
    "span_to_json": "repro.obs.explain",
    "trace_to_json": "repro.obs.explain",
    "validate_trace": "repro.obs.explain",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
