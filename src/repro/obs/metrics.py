"""A process-safe registry of counters and histograms for the engine.

The engine's :class:`~repro.engine.context.ExecutionContext` owns one
registry per query and feeds it from the same recording calls that update
:class:`~repro.query.cost.ExecutionStats`; worker processes record into
the plain (lock-free) registry of their
:class:`~repro.engine.context.ContextDelta` and the coordinator folds
those in through :meth:`MetricsRegistry.merge` — the same commutative
path ``merge_delta`` uses for the cost stats, which is what makes the
merged totals independent of task-completion order and identical across
the serial/thread/process backends.

Two metric kinds:

* **counters** — monotonically increasing numbers (row counts, bytes,
  shuffle round-trips).  All engine counters are integers, so merging is
  exact in any order.
* **histograms** — fixed-bucket distributions (per-partition row counts
  for skew, task wall times).  Bucket boundaries are fixed at creation,
  so merging is a per-bucket sum and therefore commutative.

Wall-clock metrics live under the ``time.`` prefix and are excluded from
:meth:`MetricsRegistry.canonical`, the comparison form used by the
backend-equivalence checks (timings are scheduling artefacts; counts are
not).
"""

from __future__ import annotations

import threading

#: Default buckets for row-count distributions (upper bounds, inclusive).
ROW_BUCKETS: tuple[float, ...] = (
    1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0, 262144.0, float("inf"),
)

#: Default buckets for wall-time distributions, in seconds.
TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, float("inf"),
)

#: Finer-grained buckets for per-query serving latency, in seconds: the
#: serving layer's p50/p99 estimates come from these, so they resolve the
#: sub-millisecond cache-hit regime and the multi-second tail separately.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0002, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, float("inf"),
)

#: Buckets for queue-depth samples (small-integer distribution).
DEPTH_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, float("inf"),
)

#: Metric-name prefix whose values are wall-clock measurements and must
#: be excluded from cross-backend comparisons.
TIMING_PREFIX = "time."


class Histogram:
    """A fixed-bucket histogram; merging sums per-bucket counts."""

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name: str, buckets: tuple[float, ...]) -> None:
        if not buckets or buckets[-1] != float("inf"):
            buckets = tuple(buckets) + (float("inf"),)
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        self.count += 1
        self.total += value

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: incompatible buckets "
                f"{other.buckets!r} != {self.buckets!r}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total

    def canonical(self) -> tuple:
        """Comparable form: buckets and counts, no float totals."""
        return (self.name, self.buckets, tuple(self.counts), self.count)

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile (0 < q <= 1) from the bucket counts.

        Returns the upper bound of the bucket the quantile rank falls
        into — a conservative (over-)estimate, the usual convention for
        fixed-bucket histograms.  When the rank lands in the open-ended
        final bucket, the largest finite boundary is returned instead (an
        under-estimate; the histogram cannot resolve beyond its range).
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                bound = self.buckets[index]
                if bound == float("inf"):
                    finite = [b for b in self.buckets if b != float("inf")]
                    return finite[-1] if finite else 0.0
                return bound
        return 0.0  # pragma: no cover - cumulative always reaches count

    def as_dict(self) -> dict:
        return {
            "buckets": [b for b in self.buckets],
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


class MetricsRegistry:
    """Named counters and histograms with commutative merging.

    The coordinator's registry (``locked=True``) may be updated from any
    backend thread; worker-side registries (inside a
    :class:`~repro.engine.context.ContextDelta`) are single-owner and
    skip the lock.
    """

    def __init__(self, locked: bool = True) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock() if locked else None

    def __getstate__(self) -> dict:
        # Locks cannot cross pickle/deepcopy; the copy keeps the same
        # locked-ness and gets a fresh lock on restore.
        return {
            "counters": self.counters,
            "histograms": self.histograms,
            "locked": self._lock is not None,
        }

    def __setstate__(self, state: dict) -> None:
        self.counters = state["counters"]
        self.histograms = state["histograms"]
        self._lock = threading.Lock() if state["locked"] else None

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add *amount* to counter *name* (created at zero)."""
        if self._lock is None:
            self.counters[name] = self.counters.get(name, 0) + amount
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] = ROW_BUCKETS
    ) -> None:
        """Record *value* into histogram *name* (created with *buckets*)."""
        if self._lock is None:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(name, buckets)
            histogram.observe(value)
            return
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(name, buckets)
            histogram.observe(value)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry (commutative: sums only)."""
        if self._lock is not None:
            with self._lock:
                self._merge(other)
        else:
            self._merge(other)

    def _merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, histogram in other.histograms.items():
            existing = self.histograms.get(name)
            if existing is None:
                copy = Histogram(name, histogram.buckets)
                copy.merge(histogram)
                self.histograms[name] = copy
            else:
                existing.merge(histogram)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter *name* (zero if never incremented)."""
        return self.counters.get(name, 0)

    def snapshot(self) -> dict:
        """A plain-data snapshot of every metric (JSON-serialisable)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def canonical(self, exclude_prefixes: tuple[str, ...] = (TIMING_PREFIX,)) -> tuple:
        """Order-independent comparable form, excluding timing metrics.

        Two backends that executed the same query must produce equal
        canonical registries regardless of scheduling, task fusion, or
        the order their deltas merged in.
        """
        counters = tuple(
            (name, value)
            for name, value in sorted(self.counters.items())
            if not name.startswith(exclude_prefixes)
        )
        histograms = tuple(
            histogram.canonical()
            for name, histogram in sorted(self.histograms.items())
            if not name.startswith(exclude_prefixes)
        )
        return (counters, histograms)
