"""Span-based query traces: the data model behind ``EXPLAIN ANALYZE``.

A completed query run yields one :class:`QueryTrace` — a tree of
:class:`OperatorSpan` objects mirroring the physical operator tree, each
holding the per-partition :class:`TaskSpan` list of the engine tasks that
ran for it plus the measured per-operator accounting (rows in/out, bytes
shuffled, PREF duplicates eliminated, per-partition skew) and the
rewriter's static ``Part``/``Dup`` annotations for side-by-side display.

Traces are plain data (no references into the engine), picklable and
JSON-exportable (:func:`repro.obs.explain.trace_to_json`).

Canonicalisation
----------------

:meth:`QueryTrace.canonical` is the cross-backend comparison form: wall
times, worker identities and ``time.*`` metrics are excluded, task lists
are sorted by (phase, partition), and per-partition row maps by
partition index.  Two backends executing the same compiled plan must
produce equal canonical traces — the backend-equivalence tests and the
fuzz differ rely on this.

Measured locality
-----------------

For a join span the *moved* rows are the rows its inputs had to ship to
meet the join's placement requirement: the rows shipped by immediate
repartition children plus the rows the join itself broadcast.  The
locality ratio ``(rows_in - moved) / rows_in`` is the measured
counterpart of :func:`repro.design.locality.config_data_locality` — a
fully co-partitioned join (paper Section 2.2, cases 1-3) moves nothing
and reports locality 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.context import OperatorStats, TraceEvent

#: Engine task phases in execution order within one operator.
PHASE_ORDER = {"prepare": 0, "exchange": 1, "partition": 2}


@dataclass(frozen=True)
class TaskSpan:
    """One engine task (operator × phase × partition) that ran."""

    phase: str  #: "prepare" | "exchange" | "partition"
    node_id: int | None  #: Partition index; None for exchange barriers.
    seconds: float  #: Wall time (excluded from canonical comparisons).
    worker: str | None = None  #: Thread name or "pid:<n>" (excluded too).

    def canonical(self) -> tuple:
        """Comparable form: where it ran logically, not physically."""
        return (PHASE_ORDER.get(self.phase, 9), self.phase, self.node_id)


@dataclass
class OperatorSpan:
    """One physical operator instance with annotations and measurements.

    The static fields (``method`` … ``case``) come from the rewriter's
    :class:`~repro.query.rewrite.Annotated` plan; the measured fields are
    the operator's slice of the execution accounting.  ``rows_in`` is
    derived — the sum of the children's ``rows_out`` (None for leaves).
    """

    op_id: int
    label: str  #: Display label (may carry strategy/table decoration).
    name: str  #: Undecorated operator kind ("scan", "join", ...).
    # -- static annotations (rewriter) -------------------------------------
    method: str  #: Part(o) method value ("seed", "hashed", "pref", ...).
    hash_columns: tuple[str, ...] = ()
    dup: bool = False  #: The paper's Dup(o) flag.
    governing: tuple[str, ...] = ()
    strategy: str | None = None  #: Join/aggregate strategy hint.
    case: str | None = None  #: Locality case ("case1" | "case2" | "case3").
    # -- measured ----------------------------------------------------------
    rows_out: int = 0
    rows_out_by_partition: dict[int, int] = field(default_factory=dict)
    dup_eliminated: int = 0
    network_bytes: int = 0
    rows_shipped: int = 0
    shuffles: int = 0
    partitions_scanned: int = 0
    #: Predicate transfer: Bloom filters attached (static), rows probed
    #: against them and rows pruned by them (measured).
    bloom_filters: int = 0
    bloom_probed: int = 0
    bloom_pruned: int = 0
    #: Patched-PREF patch-list rows delivered by the residual shuffle.
    patch_rows: int = 0
    node_work: tuple[float, ...] = ()
    tasks: tuple[TaskSpan, ...] = ()
    children: tuple["OperatorSpan", ...] = ()

    # -- derived -----------------------------------------------------------

    @property
    def rows_in(self) -> int | None:
        """Input rows: sum of the children's outputs (None for leaves)."""
        if not self.children:
            return None
        return sum(child.rows_out for child in self.children)

    @property
    def seconds(self) -> float:
        """Wall time summed over this operator's tasks."""
        return sum(task.seconds for task in self.tasks)

    @property
    def moved_rows(self) -> int:
        """Rows that crossed node boundaries to feed this operator.

        Own shipped rows (broadcast joins, gathers) plus the rows shipped
        by immediate repartition children inserted to meet this
        operator's placement requirement.
        """
        moved = self.rows_shipped
        for child in self.children:
            if child.name == "repartition":
                moved += child.rows_shipped
        return moved

    @property
    def locality(self) -> float | None:
        """Measured locality ratio for join spans, else None.

        ``(rows_in - moved_rows) / rows_in`` clamped to [0, 1]; 1.0 when
        the join consumed no rows at all (nothing had to move).
        """
        if self.name != "join":
            return None
        rows_in = self.rows_in
        if not rows_in:
            return 1.0
        local = rows_in - self.moved_rows
        return max(0.0, min(1.0, local / rows_in))

    @property
    def skew(self) -> float | None:
        """Max/mean output partition size (1.0 = perfectly balanced)."""
        sizes = [n for n in self.rows_out_by_partition.values()]
        if len(sizes) < 2:
            return None
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return None
        return max(sizes) / mean

    # -- traversal / comparison --------------------------------------------

    def walk(self) -> Iterator["OperatorSpan"]:
        """Yield the span subtree in post-order (children first)."""
        for child in self.children:
            yield from child.walk()
        yield self

    def canonical(self) -> tuple:
        """Comparable form of the subtree: shape and counts, no timings.

        Spans without predicate-transfer activity keep the exact tuple
        shape of the pre-Bloom engine, so the frozen row-engine trace
        fixtures stay comparable; a bloom_probe span appends one
        ``(filters, probed, pruned)`` element.
        """
        base = (
            self.op_id,
            self.label,
            self.name,
            self.method,
            self.hash_columns,
            self.dup,
            self.strategy,
            self.case,
            self.rows_out,
            tuple(sorted(self.rows_out_by_partition.items())),
            self.dup_eliminated,
            self.network_bytes,
            self.rows_shipped,
            self.shuffles,
            self.partitions_scanned,
            tuple(self.node_work),
            tuple(sorted(task.canonical() for task in self.tasks)),
            tuple(child.canonical() for child in self.children),
        )
        if self.bloom_filters or self.bloom_probed or self.bloom_pruned:
            base += ((self.bloom_filters, self.bloom_probed, self.bloom_pruned),)
        if self.patch_rows:
            # Same back-compat pattern: patch-free spans keep the frozen
            # tuple shape; the tag disambiguates from the bloom element.
            base += (("patch", self.patch_rows),)
        return base


@dataclass
class QueryTrace:
    """A completed query's span tree plus its merged metrics registry."""

    root: OperatorSpan
    metrics: MetricsRegistry
    node_count: int
    backend: str | None = None
    query: str | None = None

    def spans(self) -> list[OperatorSpan]:
        """All operator spans in plan post-order."""
        return list(self.root.walk())

    def span(self, op_id: int) -> OperatorSpan:
        """The span of operator *op_id*."""
        for candidate in self.root.walk():
            if candidate.op_id == op_id:
                return candidate
        raise KeyError(f"no span with op_id {op_id}")

    def joins(self) -> list[OperatorSpan]:
        """The join spans, in plan post-order."""
        return [s for s in self.root.walk() if s.name == "join"]

    def canonical(self) -> tuple:
        """Backend-independent comparison form (no timings/workers)."""
        return (self.node_count, self.root.canonical(), self.metrics.canonical())


def build_trace(
    root,
    operators: Sequence["OperatorStats"],
    events: Iterable["TraceEvent"],
    metrics: MetricsRegistry,
    node_count: int,
    backend: str | None = None,
    query: str | None = None,
) -> QueryTrace:
    """Assemble a :class:`QueryTrace` from one finished execution.

    Args:
        root: The executed physical operator tree
            (:class:`~repro.engine.operators.PhysicalOperator`).
        operators: Per-operator accounting in plan post-order
            (``ExecutionContext.operator_stats()``).
        events: The :class:`~repro.engine.context.TraceEvent` stream the
            run emitted, in any order — task spans are sorted by
            (phase, partition), which makes the result independent of
            task-completion order.
        metrics: The run's merged metrics registry.
        node_count: Cluster size the query ran at.
    """
    stats_by_id = {stats.op_id: stats for stats in operators}
    tasks_by_id: dict[int, list[TaskSpan]] = {}
    for event in events:
        tasks_by_id.setdefault(event.op_id, []).append(
            TaskSpan(event.phase, event.node_id, event.seconds, event.worker)
        )

    def build(op) -> OperatorSpan:
        children = tuple(build(child) for child in op.inputs)
        stats = stats_by_id.get(op.op_id)
        tasks = tuple(
            sorted(
                tasks_by_id.get(op.op_id, ()),
                key=lambda task: task.canonical(),
            )
        )
        props = op.props
        part = props.part
        extra = op.annotated.extra
        span = OperatorSpan(
            op.op_id,
            op.label,
            name=op.name,
            method=part.method.value,
            hash_columns=tuple(part.hash_columns),
            dup=props.dup,
            governing=tuple(props.governing),
            strategy=extra.get("strategy"),
            case=extra.get("case"),
            bloom_filters=len(extra.get("bloom", ())),
            children=children,
            tasks=tasks,
        )
        if stats is not None:
            span.rows_out = stats.rows_out
            span.rows_out_by_partition = dict(stats.rows_out_by_partition)
            span.dup_eliminated = stats.dup_eliminated
            span.network_bytes = stats.network_bytes
            span.rows_shipped = stats.rows_shipped
            span.shuffles = stats.shuffles
            span.partitions_scanned = stats.partitions_scanned
            span.bloom_probed = stats.bloom_probed
            span.bloom_pruned = stats.bloom_pruned
            span.patch_rows = stats.patch_rows
            span.node_work = tuple(stats.node_work)
        return span

    return QueryTrace(build(root), metrics, node_count, backend, query)
