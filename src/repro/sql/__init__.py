"""SQL front end: lexer, parser, and planner for an SPJA dialect."""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_select
from repro.sql.planner import plan_select, sql_to_plan, strip_explain

__all__ = [
    "Token",
    "TokenType",
    "parse_select",
    "plan_select",
    "sql_to_plan",
    "strip_explain",
    "tokenize",
]
