"""Recursive-descent parser for the SPJA SQL dialect.

Grammar (informal)::

    select    := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                 [GROUP BY cols] [HAVING expr] [ORDER BY keys] [LIMIT n]
    items     := item ("," item)* | "*"
    item      := agg "(" [DISTINCT] expr | "*" ")" [AS name]
               | expr [AS name]
    join      := [INNER | LEFT [OUTER] | CROSS] JOIN table_ref [ON expr]
               | "," table_ref
    expr      := or_expr with AND/OR/NOT, comparisons, IN, BETWEEN,
                 IS [NOT] NULL, + - * /, parentheses
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.query.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Negation,
    and_,
)
from repro.sql.ast import (
    ExistsExpression,
    InSubqueryExpression,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

AGGREGATES = ("sum", "count", "avg", "min", "max")


class Parser:
    """Parses one SELECT statement."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers ----------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_keyword(self, *names: str) -> Token:
        token = self.advance()
        if not token.is_keyword(*names):
            raise SqlSyntaxError(
                f"expected {'/'.join(names).upper()} at offset "
                f"{token.position}, found {token.value!r}"
            )
        return token

    def expect_symbol(self, symbol: str) -> Token:
        token = self.advance()
        if not token.is_symbol(symbol):
            raise SqlSyntaxError(
                f"expected {symbol!r} at offset {token.position}, "
                f"found {token.value!r}"
            )
        return token

    def accept_keyword(self, *names: str) -> bool:
        if self.peek().is_keyword(*names):
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        if self.peek().is_symbol(symbol):
            self.advance()
            return True
        return False

    # -- entry point ----------------------------------------------------------------

    def parse(self) -> SelectStatement:
        """Parse the statement, requiring all input to be consumed."""
        statement = self._select()
        token = self.peek()
        if token.type is not TokenType.END:
            raise SqlSyntaxError(
                f"unexpected trailing input at offset {token.position}: "
                f"{token.value!r}"
            )
        return statement

    def _select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self._select_items()
        self.expect_keyword("from")
        base = self._table_ref()
        joins: list[JoinClause] = []
        while True:
            if self.accept_symbol(","):
                joins.append(JoinClause(self._table_ref(), "inner", None))
                continue
            kind = self._join_kind()
            if kind is None:
                break
            table = self._table_ref()
            condition = None
            if self.accept_keyword("on"):
                condition = self._expr()
            elif kind != "cross":
                raise SqlSyntaxError("JOIN requires an ON condition")
            joins.append(JoinClause(table, kind, condition))
        where = self._expr() if self.accept_keyword("where") else None
        group_by: list[str] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = self._column_list()
        having = self._expr() if self.accept_keyword("having") else None
        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self._order_items()
        limit = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError("LIMIT requires a number")
            limit = int(token.value)
        return SelectStatement(
            items=items,
            distinct=distinct,
            base=base,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def _join_kind(self) -> str | None:
        if self.accept_keyword("join"):
            return "inner"
        if self.accept_keyword("inner"):
            self.expect_keyword("join")
            return "inner"
        if self.accept_keyword("left"):
            self.accept_keyword("outer")
            self.expect_keyword("join")
            return "left"
        if self.accept_keyword("cross"):
            self.expect_keyword("join")
            return "cross"
        return None

    # -- select list -----------------------------------------------------------------

    def _select_items(self) -> list[SelectItem]:
        if self.accept_symbol("*"):
            return [SelectItem(None, None, None, star=True)]
        items = [self._select_item()]
        while self.accept_symbol(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        token = self.peek()
        if token.is_keyword(*AGGREGATES):
            func = self.advance().value
            self.expect_symbol("(")
            distinct = self.accept_keyword("distinct")
            if self.accept_symbol("*"):
                if func != "count":
                    raise SqlSyntaxError(f"{func.upper()}(*) is not valid")
                expression = None
                star = True
            else:
                expression = self._expr()
                star = False
            self.expect_symbol(")")
            if distinct:
                if func != "count":
                    raise SqlSyntaxError("DISTINCT only supported in COUNT")
                func = "count_distinct"
            alias = self._alias() or f"{func}_{len(func)}"
            return SelectItem(expression, alias, func, star=star)
        expression = self._expr()
        return SelectItem(expression, self._alias(), None)

    def _alias(self) -> str | None:
        if self.accept_keyword("as"):
            token = self.advance()
            if token.type is not TokenType.IDENTIFIER:
                raise SqlSyntaxError("expected alias name after AS")
            return token.value
        if self.peek().type is TokenType.IDENTIFIER:
            return self.advance().value
        return None

    def _table_ref(self) -> TableRef:
        token = self.advance()
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(
                f"expected table name at offset {token.position}"
            )
        alias = self._alias()
        return TableRef(token.value, alias)

    def _column_list(self) -> list[str]:
        columns = [self._column_name()]
        while self.accept_symbol(","):
            columns.append(self._column_name())
        return columns

    def _column_name(self) -> str:
        token = self.advance()
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(
                f"expected column name at offset {token.position}"
            )
        name = token.value
        while self.accept_symbol("."):
            part = self.advance()
            name += "." + part.value
        return name

    def _order_items(self) -> list[OrderItem]:
        items = []
        while True:
            column = self._column_name()
            ascending = True
            if self.accept_keyword("desc"):
                ascending = False
            else:
                self.accept_keyword("asc")
            items.append(OrderItem(column, ascending))
            if not self.accept_symbol(","):
                return items

    # -- expressions ---------------------------------------------------------------

    def _expr(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        operands = [self._and_expr()]
        while self.accept_keyword("or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("or", tuple(operands))

    def _and_expr(self) -> Expression:
        operands = [self._not_expr()]
        while self.accept_keyword("and"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", tuple(operands))

    def _not_expr(self) -> Expression:
        if self.peek().is_keyword("exists"):
            return self._exists(negated=False)
        if self.accept_keyword("not"):
            if self.peek().is_keyword("exists"):
                return self._exists(negated=True)
            return Negation(self._not_expr())
        return self._comparison()

    def _exists(self, negated: bool) -> Expression:
        self.expect_keyword("exists")
        self.expect_symbol("(")
        select = self._select()
        self.expect_symbol(")")
        return ExistsExpression(select, negated=negated)

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self.peek()
        if token.is_symbol("=", "!=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            if op == "<>":
                op = "!="
            right = self._additive()
            return Comparison(op, left, right)
        if token.is_keyword("between"):
            self.advance()
            low = self._additive()
            self.expect_keyword("and")
            high = self._additive()
            return and_(
                Comparison(">=", left, low), Comparison("<=", left, high)
            )
        if token.is_keyword("in") or token.is_keyword("not"):
            negated = False
            if token.is_keyword("not"):
                # only NOT IN reaches here (NOT expr handled above)
                save = self.index
                self.advance()
                if not self.accept_keyword("in"):
                    self.index = save
                    return left
                negated = True
            else:
                self.advance()
            self.expect_symbol("(")
            if self.peek().is_keyword("select"):
                select = self._select()
                self.expect_symbol(")")
                return InSubqueryExpression(left, select, negated=negated)
            values = [self._literal_value()]
            while self.accept_symbol(","):
                values.append(self._literal_value())
            self.expect_symbol(")")
            return InList(left, tuple(values), negated=negated)
        if token.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNull(left, negated=negated)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while self.peek().is_symbol("+", "-"):
            op = self.advance().value
            left = Arithmetic(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._primary()
        while self.peek().is_symbol("*", "/"):
            op = self.advance().value
            left = Arithmetic(op, left, self._primary())
        return left

    def _primary(self) -> Expression:
        token = self.advance()
        if token.is_symbol("("):
            inner = self._expr()
            self.expect_symbol(")")
            return inner
        if token.is_symbol("-"):
            operand = self._primary()
            return Arithmetic("-", Literal(0), operand)
        if token.type is TokenType.NUMBER:
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.type is TokenType.STRING:
            return Literal(token.value)
        if token.is_keyword("null"):
            return Literal(None)
        if token.type is TokenType.IDENTIFIER:
            name = token.value
            while self.accept_symbol("."):
                part = self.advance()
                name += "." + part.value
            return ColumnRef(name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _literal_value(self):
        token = self.advance()
        if token.type is TokenType.NUMBER:
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.STRING:
            return token.value
        raise SqlSyntaxError("IN lists may contain only literals")


def parse_select(text: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return Parser(text).parse()
