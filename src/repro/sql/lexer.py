"""Tokeniser for the SQL dialect of the :mod:`repro.sql` front end."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "order", "limit",
    "having", "as", "and", "or", "not", "in", "between", "is", "null",
    "join", "inner", "left", "right", "outer", "cross", "on", "asc", "desc",
    "sum", "count", "avg", "min", "max", "exists", "like", "union", "all",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+",
           "-", "/", ".")


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value in symbols


def tokenize(text: str) -> list[Token]:
    """Split *text* into tokens.

    Raises:
        SqlSyntaxError: On unterminated strings or unexpected characters.
    """
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            end = text.find("'", index + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated string at offset {index}")
            tokens.append(Token(TokenType.STRING, text[index + 1 : end], index))
            index = end + 1
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # A dot not followed by a digit terminates the number
                    # (it is a qualifier dot, e.g. "t1.x" after "1").
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, text[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            index = end
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token(TokenType.SYMBOL, symbol, index))
                index += len(symbol)
                break
        else:
            raise SqlSyntaxError(
                f"unexpected character {char!r} at offset {index}"
            )
    tokens.append(Token(TokenType.END, "", length))
    return tokens
