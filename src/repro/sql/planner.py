"""Plans parsed SQL statements into logical SPJA plans.

Responsibilities: filter pushdown to the owning scan, extraction of
equi-join predicates from ON/WHERE conjuncts, greedy join-order selection
along connected predicates (avoiding cross products when possible), and the
aggregation/having/projection/order pipeline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.catalog.schema import DatabaseSchema
from repro.errors import SqlError
from repro.query.expressions import (
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    and_,
)
from repro.query.plan import (
    Aggregate,
    AggregateSpec,
    Filter,
    Join,
    JoinKind,
    OrderBy,
    PlanNode,
    Project,
    Scan,
)
from repro.query.expressions import Negation
from repro.sql.ast import (
    ExistsExpression,
    InSubqueryExpression,
    SelectStatement,
    SubqueryExpression,
)
from repro.sql.parser import parse_select


@dataclass
class _Source:
    alias: str
    table: str
    filters: list[Expression]
    kind: str = "inner"  # how it joins in (inner/left/cross)
    on: Expression | None = None


def plan_select(statement: SelectStatement, schema: DatabaseSchema) -> PlanNode:
    """Turn a parsed SELECT into a logical plan against *schema*."""
    planner = _Planner(statement, schema)
    return planner.plan()


def sql_to_plan(text: str, schema: DatabaseSchema) -> PlanNode:
    """Parse and plan a SELECT statement in one step."""
    return plan_select(parse_select(text), schema)


_EXPLAIN_PREFIX = re.compile(
    r"^\s*EXPLAIN(?P<analyze>\s+ANALYZE)?\b\s*", re.IGNORECASE
)


def strip_explain(text: str) -> tuple[str | None, str]:
    """Split a leading ``EXPLAIN [ANALYZE]`` prefix off a SQL statement.

    Returns ``(mode, body)`` where *mode* is ``"explain"``,
    ``"explain_analyze"``, or None for an unprefixed statement.  The
    prefix is handled here (not in the lexer) so EXPLAIN stays a client
    feature of the cluster facade rather than part of the query grammar.
    """
    match = _EXPLAIN_PREFIX.match(text)
    if match is None:
        return None, text
    mode = "explain_analyze" if match.group("analyze") else "explain"
    return mode, text[match.end():]


class _Planner:
    def __init__(self, statement: SelectStatement, schema: DatabaseSchema) -> None:
        self.statement = statement
        self.schema = schema
        self.sources: list[_Source] = []
        self.sources.append(
            _Source(statement.base.name, statement.base.table, [])
        )
        for join in statement.joins:
            self.sources.append(
                _Source(
                    join.table.name,
                    join.table.table,
                    [],
                    kind=join.kind,
                    on=join.condition,
                )
            )
        seen = set()
        for source in self.sources:
            if source.alias in seen:
                raise SqlError(f"duplicate table alias {source.alias!r}")
            seen.add(source.alias)
            if not schema.has_table(source.table):
                raise SqlError(f"unknown table {source.table!r}")

    # -- helpers --------------------------------------------------------------

    def _owner(self, column: str) -> str | None:
        """Alias owning a (possibly qualified) column reference."""
        if "." in column:
            qualifier = column.split(".", 1)[0]
            for source in self.sources:
                if source.alias == qualifier:
                    return source.alias
            return None
        owners = [
            source.alias
            for source in self.sources
            if self.schema.table(source.table).has_column(column)
        ]
        if len(owners) == 1:
            return owners[0]
        return None

    def _aliases_of(self, expression: Expression) -> set[str] | None:
        """Aliases referenced by an expression (None if any unresolved)."""
        aliases: set[str] = set()
        for column in expression.referenced_columns():
            owner = self._owner(column)
            if owner is None:
                return None
            aliases.add(owner)
        return aliases

    @staticmethod
    def _conjuncts(expression: Expression | None) -> list[Expression]:
        if expression is None:
            return []
        if isinstance(expression, BooleanOp) and expression.op == "and":
            result = []
            for operand in expression.operands:
                result.extend(_Planner._conjuncts(operand))
            return result
        return [expression]

    def _qualify(self, column: str) -> str:
        """Fully qualify a column reference for the executor."""
        if "." in column:
            return column
        owner = self._owner(column)
        if owner is None:
            return column
        return f"{owner}.{column}"

    # -- planning ----------------------------------------------------------------

    def plan(self) -> PlanNode:
        join_predicates: list[tuple[str, str, str, str]] = []
        residuals: list[Expression] = []
        subqueries: list[SubqueryExpression] = []

        def classify(expression: Expression, allow_push: bool) -> None:
            if isinstance(expression, Negation) and isinstance(
                expression.operand, ExistsExpression
            ):
                expression = ExistsExpression(
                    expression.operand.select,
                    negated=not expression.operand.negated,
                )
            if isinstance(expression, SubqueryExpression):
                subqueries.append(expression)
                return
            if (
                isinstance(expression, Comparison)
                and expression.op == "="
                and isinstance(expression.left, ColumnRef)
                and isinstance(expression.right, ColumnRef)
            ):
                left_owner = self._owner(expression.left.name)
                right_owner = self._owner(expression.right.name)
                outer_kinds = {
                    source.alias: source.kind for source in self.sources
                }
                if (
                    left_owner is not None
                    and right_owner is not None
                    and left_owner != right_owner
                    and outer_kinds.get(left_owner) != "left"
                    and outer_kinds.get(right_owner) != "left"
                ):
                    join_predicates.append(
                        (
                            left_owner,
                            self._qualify(expression.left.name),
                            right_owner,
                            self._qualify(expression.right.name),
                        )
                    )
                    return
            aliases = self._aliases_of(expression)
            if allow_push and aliases is not None and len(aliases) == 1:
                alias = next(iter(aliases))
                for source in self.sources:
                    if source.alias == alias:
                        if source.kind == "left":
                            # WHERE filters on an outer-joined table apply
                            # AFTER the padding; pushing them below the
                            # join would change the query's semantics.
                            break
                        source.filters.append(expression)
                        return
            residuals.append(expression)

        for source in self.sources:
            if source.on is not None and source.kind == "inner":
                for conjunct in self._conjuncts(source.on):
                    classify(conjunct, allow_push=True)
        for conjunct in self._conjuncts(self.statement.where):
            classify(conjunct, allow_push=True)

        plan = self._join_sources(join_predicates, residuals)
        for residual in residuals:
            plan = Filter(plan, residual)
        for subquery in subqueries:
            plan = self._apply_subquery(plan, subquery)
        plan = self._aggregate_and_project(plan)
        if self.statement.order_by or self.statement.limit is not None:
            if self.statement.order_by:
                keys = tuple(
                    (self._order_key_name(item.column), item.ascending)
                    for item in self.statement.order_by
                )
            else:
                # LIMIT without ORDER BY: order by the first output column.
                keys = ((self._first_output_column(), True),)
            plan = OrderBy(plan, keys, self.statement.limit)
        return plan

    def _apply_subquery(
        self, plan: PlanNode, expression: SubqueryExpression
    ) -> PlanNode:
        """De-sugar [NOT] EXISTS / [NOT] IN (SELECT ...) to semi/anti joins."""
        kind = JoinKind.ANTI if expression.negated else JoinKind.SEMI
        if isinstance(expression, InSubqueryExpression):
            statement = expression.select
            if len(statement.items) != 1 or statement.items[0].star:
                raise SqlError(
                    "IN subqueries must select exactly one column"
                )
            item = statement.items[0]
            if item.aggregate or not isinstance(item.expression, ColumnRef):
                raise SqlError(
                    "IN subqueries must select a plain column"
                )
            inner = _Planner(statement, self.schema).plan()
            inner_key = item.alias or item.expression.name.split(".")[-1]
            outer_key = self._qualify_expression_column(expression.operand)
            return Join(plan, inner, ((outer_key, inner_key),), kind)
        assert isinstance(expression, ExistsExpression)
        statement = expression.select
        nested = _Planner(statement, self.schema)
        correlations: list[tuple[str, str]] = []
        remaining: list[Expression] = []
        for conjunct in self._conjuncts(statement.where):
            pair = self._correlation_pair(conjunct, nested)
            if pair is not None:
                correlations.append(pair)
            else:
                remaining.append(conjunct)
        if not correlations:
            raise SqlError(
                "EXISTS subqueries need an equality correlating them with "
                "the outer query"
            )
        import copy

        decorrelated = copy.copy(statement)
        decorrelated.where = and_(*remaining) if remaining else None
        inner = _Planner(decorrelated, self.schema).plan()
        return Join(plan, inner, tuple(correlations), kind)

    def _correlation_pair(
        self, conjunct: Expression, nested: "_Planner"
    ) -> tuple[str, str] | None:
        """(outer_column, inner_column) if *conjunct* correlates the scopes."""
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            return None
        left_inner = nested._owner(conjunct.left.name)
        right_inner = nested._owner(conjunct.right.name)
        if left_inner is not None and right_inner is None:
            outer = self._owner(conjunct.right.name)
            if outer is not None:
                return (
                    self._qualify(conjunct.right.name),
                    f"{left_inner}.{conjunct.left.name.split('.')[-1]}",
                )
        if right_inner is not None and left_inner is None:
            outer = self._owner(conjunct.left.name)
            if outer is not None:
                return (
                    self._qualify(conjunct.left.name),
                    f"{right_inner}.{conjunct.right.name.split('.')[-1]}",
                )
        return None

    def _qualify_expression_column(self, expression: Expression) -> str:
        if not isinstance(expression, ColumnRef):
            raise SqlError("IN subqueries require a plain column operand")
        return self._qualify(expression.name)

    def _order_key_name(self, column: str) -> str:
        """Resolve an ORDER BY reference against the projected outputs."""
        short = column.split(".")[-1]
        for index, item in enumerate(self.statement.items):
            if item.alias == column or item.alias == short:
                return item.alias
            if isinstance(item.expression, ColumnRef):
                ref_short = item.expression.name.split(".")[-1]
                if item.expression.name == column or ref_short == short:
                    return item.alias or ref_short
        return column

    def _join_sources(
        self,
        join_predicates: list[tuple[str, str, str, str]],
        residuals: list[Expression],
    ) -> PlanNode:
        def scan_of(source: _Source) -> PlanNode:
            node: PlanNode = Scan(source.table, source.alias)
            for filter_expression in source.filters:
                node = Filter(node, filter_expression)
            return node

        # LEFT JOIN sources keep their declared order and ON condition.
        inner_sources = [s for s in self.sources if s.kind != "left"]
        left_sources = [s for s in self.sources if s.kind == "left"]

        joined = {inner_sources[0].alias}
        plan = scan_of(inner_sources[0])
        pending = inner_sources[1:]
        predicates = list(join_predicates)
        while pending:
            progressed = False
            for source in list(pending):
                keys = [
                    (l, r) if left_owner in joined else (r, l)
                    for (left_owner, l, right_owner, r) in predicates
                    if (left_owner in joined and right_owner == source.alias)
                    or (right_owner in joined and left_owner == source.alias)
                ]
                if keys:
                    plan = Join(plan, scan_of(source), tuple(keys))
                    joined.add(source.alias)
                    pending.remove(source)
                    predicates = [
                        p
                        for p in predicates
                        if not (
                            (p[0] in joined and p[2] in joined)
                            and (source.alias in (p[0], p[2]))
                        )
                    ]
                    progressed = True
            if not progressed:
                source = pending.pop(0)
                residual = source.on if source.kind == "cross" else None
                plan = Join(
                    plan, scan_of(source), (), JoinKind.CROSS, residual
                )
                joined.add(source.alias)
        for source in left_sources:
            keys = []
            for conjunct in self._conjuncts(source.on):
                if (
                    isinstance(conjunct, Comparison)
                    and conjunct.op == "="
                    and isinstance(conjunct.left, ColumnRef)
                    and isinstance(conjunct.right, ColumnRef)
                ):
                    left_name = self._qualify(conjunct.left.name)
                    right_name = self._qualify(conjunct.right.name)
                    if self._owner(conjunct.left.name) == source.alias:
                        keys.append((right_name, left_name))
                    else:
                        keys.append((left_name, right_name))
            if not keys:
                raise SqlError("LEFT JOIN requires an equi-join ON condition")
            plan = Join(plan, scan_of(source), tuple(keys), JoinKind.LEFT_OUTER)
            joined.add(source.alias)
        return plan

    def _aggregate_and_project(self, plan: PlanNode) -> PlanNode:
        statement = self.statement
        has_aggregates = any(item.aggregate for item in statement.items)
        if not has_aggregates and not statement.group_by:
            if len(statement.items) == 1 and statement.items[0].star:
                return plan  # SELECT * — no projection needed
            outputs = []
            for index, item in enumerate(statement.items):
                name = item.alias or self._default_name(item, index)
                outputs.append((name, item.expression))
            return Project(plan, tuple(outputs), distinct=statement.distinct)
        group_by = tuple(self._qualify(c) for c in statement.group_by)
        specs = []
        for index, item in enumerate(statement.items):
            if not item.aggregate:
                continue
            name = item.alias or self._default_name(item, index)
            expression = None if item.star else item.expression
            specs.append(AggregateSpec(item.aggregate, expression, name))
        plan = Aggregate(plan, group_by, tuple(specs))
        if statement.having is not None:
            plan = Filter(plan, statement.having)
        # Re-project to the declared select order / aliases.
        outputs = []
        for index, item in enumerate(statement.items):
            name = item.alias or self._default_name(item, index)
            if item.aggregate:
                outputs.append((name, ColumnRef(name)))
            else:
                column = item.expression
                if not isinstance(column, ColumnRef):
                    raise SqlError(
                        "non-aggregate SELECT items must be plain group-by "
                        "columns"
                    )
                short = column.name.split(".")[-1]
                outputs.append((item.alias or short, ColumnRef(column.name)))
        return Project(plan, tuple(outputs), distinct=statement.distinct)

    def _default_name(self, item, index: int) -> str:
        if item.expression is not None and isinstance(item.expression, ColumnRef):
            return item.expression.name.split(".")[-1]
        if item.aggregate:
            return f"{item.aggregate}_{index}"
        return f"col_{index}"

    def _first_output_column(self) -> str:
        item = self.statement.items[0]
        if item.star:
            source = self.sources[0]
            return (
                f"{source.alias}."
                f"{self.schema.table(source.table).columns[0].name}"
            )
        if item.alias:
            return item.alias
        return self._default_name(item, 0)
