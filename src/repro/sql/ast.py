"""AST nodes produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.expressions import Expression


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: an expression with an optional alias."""

    expression: Expression | None  # None for bare '*'
    alias: str | None = None
    aggregate: str | None = None  # sum/count/avg/min/max/count_distinct
    star: bool = False  # COUNT(*) or SELECT *


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with an optional alias."""

    table: str
    alias: str | None = None

    @property
    def name(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class JoinClause:
    """An explicit JOIN clause."""

    table: TableRef
    kind: str  # "inner" | "left" | "cross"
    condition: Expression | None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: str
    ascending: bool = True


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""

    items: list[SelectItem]
    distinct: bool
    base: TableRef
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[str] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None


class SubqueryExpression(Expression):
    """Marker base for subquery predicates (only legal in WHERE)."""

    def bind(self, columns):  # pragma: no cover - rejected during planning
        from repro.errors import SqlError

        raise SqlError("subquery predicates are only supported in WHERE")


@dataclass(eq=False)
class ExistsExpression(SubqueryExpression):
    """``[NOT] EXISTS (SELECT ...)``."""

    select: "SelectStatement"
    negated: bool = False

    def referenced_columns(self):
        return ()


@dataclass(eq=False)
class InSubqueryExpression(SubqueryExpression):
    """``column [NOT] IN (SELECT ...)``."""

    operand: Expression
    select: "SelectStatement"
    negated: bool = False

    def referenced_columns(self):
        return self.operand.referenced_columns()
