"""Column and data-type definitions for table schemas.

The type system is deliberately small: the partitioning and design algorithms
in this library only need to hash, compare and measure values.  Each
:class:`DataType` carries a nominal byte width used by the network cost model
(the paper weighs shuffles by the volume of data shipped).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CatalogError


class DataType(enum.Enum):
    """Supported column data types with nominal on-wire byte widths."""

    INTEGER = "integer"
    BIGINT = "bigint"
    FLOAT = "float"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    CHAR = "char"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def byte_width(self) -> int:
        """Nominal width in bytes used by the network cost model."""
        return _BYTE_WIDTHS[self]

    @property
    def python_types(self) -> tuple[type, ...]:
        """Python types accepted for values of this data type."""
        return _PYTHON_TYPES[self]


_BYTE_WIDTHS: dict[DataType, int] = {
    DataType.INTEGER: 4,
    DataType.BIGINT: 8,
    DataType.FLOAT: 8,
    DataType.DECIMAL: 8,
    DataType.VARCHAR: 24,
    DataType.CHAR: 8,
    DataType.DATE: 4,
    DataType.BOOLEAN: 1,
}

_PYTHON_TYPES: dict[DataType, tuple[type, ...]] = {
    DataType.INTEGER: (int,),
    DataType.BIGINT: (int,),
    DataType.FLOAT: (float, int),
    DataType.DECIMAL: (float, int),
    DataType.VARCHAR: (str,),
    DataType.CHAR: (str,),
    DataType.DATE: (int,),  # days since epoch, keeps comparisons cheap
    DataType.BOOLEAN: (bool,),
}


@dataclass(frozen=True)
class Column:
    """A named, typed column of a table schema.

    Attributes:
        name: Column name, unique within its table.
        dtype: The column's :class:`DataType`.
        nullable: Whether ``None`` is a legal value.
    """

    name: str
    dtype: DataType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name: {self.name!r}")

    @property
    def byte_width(self) -> int:
        """Nominal byte width of one value of this column."""
        return self.dtype.byte_width

    def accepts(self, value: object) -> bool:
        """Return ``True`` if *value* is legal for this column."""
        if value is None:
            return self.nullable
        return isinstance(value, self.dtype.python_types)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        null = " NULL" if self.nullable else ""
        return f"{self.name} {self.dtype.value.upper()}{null}"
