"""Column statistics: frequency histograms with optional sampling.

The redundancy estimator (paper Appendix A) needs, for every edge of a MAST,
the frequency histogram of the join key in the *referenced* table.  The paper
builds these histograms from a sample of the data to trade accuracy for
design-time speed (Figure 13 studies exactly that trade-off), so sampling is
built in here.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence


@dataclass(frozen=True)
class FrequencyHistogram:
    """Frequencies of distinct values of one column (possibly sampled).

    Attributes:
        frequencies: Mapping from distinct value to its observed count.
        sampling_rate: Fraction of rows that was inspected, in (0, 1].
        row_count: Number of rows actually inspected (after sampling).
    """

    frequencies: dict[Hashable, int]
    sampling_rate: float
    row_count: int

    @property
    def distinct_count(self) -> int:
        """Number of distinct values observed."""
        return len(self.frequencies)

    @property
    def total_count(self) -> int:
        """Total number of observations (sum of frequencies)."""
        return self.row_count

    def frequency(self, value: Hashable) -> int:
        """Observed frequency of *value* (0 if unseen)."""
        return self.frequencies.get(value, 0)

    def scaled_frequency(self, value: Hashable) -> float:
        """Frequency extrapolated to the full table (inverse sampling)."""
        return self.frequency(value) / self.sampling_rate

    def items(self) -> Iterable[tuple[Hashable, int]]:
        """Iterate over (value, frequency) pairs."""
        return self.frequencies.items()


def build_histogram(
    values: Sequence[Hashable],
    sampling_rate: float = 1.0,
    seed: int = 0,
) -> FrequencyHistogram:
    """Build a frequency histogram over *values*.

    Args:
        values: The column values (one entry per row).
        sampling_rate: Fraction of rows to inspect, in (0, 1].  A rate of
            1.0 scans every row; lower rates draw a uniform random sample
            without replacement.
        seed: Seed for the sampling RNG, making histograms reproducible.

    Returns:
        A :class:`FrequencyHistogram` over the inspected rows.

    Raises:
        ValueError: If *sampling_rate* is outside (0, 1].
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    if sampling_rate >= 1.0:
        sample: Sequence[Hashable] = values
    else:
        sample_size = max(1, round(len(values) * sampling_rate)) if values else 0
        rng = random.Random(seed)
        sample = rng.sample(list(values), sample_size) if sample_size else []
    counts = Counter(sample)
    return FrequencyHistogram(
        frequencies=dict(counts),
        sampling_rate=sampling_rate,
        row_count=len(sample),
    )
