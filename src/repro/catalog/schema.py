"""Table and database schema objects, including referential constraints.

Foreign keys are first-class citizens here because the schema-driven design
algorithm (paper Section 3) derives its schema graph directly from the
referential constraints of the database schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.catalog.column import Column, DataType
from repro.errors import CatalogError, DuplicateObjectError, UnknownObjectError


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint from one table to another.

    ``source_table.source_columns`` references ``target_table.target_columns``.
    Multi-column (composite) foreign keys are supported; the column lists are
    positionally aligned.

    Attributes:
        name: Constraint name, unique within the database schema.
        source_table: Referencing table name (holds the foreign key).
        source_columns: Referencing column names.
        target_table: Referenced table name.
        target_columns: Referenced column names (usually the primary key).
    """

    name: str
    source_table: str
    source_columns: tuple[str, ...]
    target_table: str
    target_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.source_columns) != len(self.target_columns):
            raise CatalogError(
                f"foreign key {self.name!r}: column lists differ in length"
            )
        if not self.source_columns:
            raise CatalogError(f"foreign key {self.name!r}: no columns")
        if self.source_table == self.target_table:
            raise CatalogError(
                f"foreign key {self.name!r}: self-referencing constraints "
                "are not supported by the design algorithms"
            )

    def column_pairs(self) -> Iterator[tuple[str, str]]:
        """Yield aligned (source_column, target_column) pairs."""
        return zip(self.source_columns, self.target_columns)


class TableSchema:
    """An ordered collection of named, typed columns plus an optional PK."""

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: Iterable[str] = (),
    ) -> None:
        if not name or not name.isidentifier():
            raise CatalogError(f"invalid table name: {name!r}")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise CatalogError(f"table {name!r} has no columns")
        self._index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise DuplicateObjectError(
                    f"table {name!r}: duplicate column {column.name!r}"
                )
            self._index[column.name] = position
        self.primary_key: tuple[str, ...] = tuple(primary_key)
        for key_column in self.primary_key:
            if key_column not in self._index:
                raise UnknownObjectError(
                    f"table {name!r}: primary key column {key_column!r} "
                    "is not a column of the table"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        """The column names in declaration order."""
        return tuple(column.name for column in self.columns)

    @property
    def row_byte_width(self) -> int:
        """Nominal byte width of one row (used by the network cost model)."""
        return sum(column.byte_width for column in self.columns)

    def has_column(self, name: str) -> bool:
        """Return ``True`` if the table has a column called *name*."""
        return name in self._index

    def column(self, name: str) -> Column:
        """Return the :class:`Column` called *name*."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise UnknownObjectError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def position(self, name: str) -> int:
        """Return the 0-based position of column *name*."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownObjectError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def positions(self, names: Iterable[str]) -> tuple[int, ...]:
        """Return positions for several column names at once."""
        return tuple(self.position(name) for name in names)

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"


class DatabaseSchema:
    """A set of table schemas plus the foreign keys linking them."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._foreign_keys: dict[str, ForeignKey] = {}

    # -- tables ------------------------------------------------------------

    def add_table(self, table: TableSchema) -> TableSchema:
        """Register *table*; raises if the name is taken."""
        if table.name in self._tables:
            raise DuplicateObjectError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def create_table(
        self,
        name: str,
        columns: Iterable[Column | tuple[str, DataType]],
        primary_key: Iterable[str] = (),
    ) -> TableSchema:
        """Convenience builder accepting ``(name, dtype)`` tuples."""
        normalised = [
            column if isinstance(column, Column) else Column(*column)
            for column in columns
        ]
        return self.add_table(TableSchema(name, normalised, primary_key))

    def drop_table(self, name: str) -> None:
        """Remove a table and every foreign key touching it."""
        if name not in self._tables:
            raise UnknownObjectError(f"no table {name!r}")
        del self._tables[name]
        self._foreign_keys = {
            fk_name: fk
            for fk_name, fk in self._foreign_keys.items()
            if fk.source_table != name and fk.target_table != name
        }

    def has_table(self, name: str) -> bool:
        """Return ``True`` if a table called *name* exists."""
        return name in self._tables

    def table(self, name: str) -> TableSchema:
        """Return the schema of table *name*."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownObjectError(f"no table {name!r}") from None

    @property
    def tables(self) -> Mapping[str, TableSchema]:
        """Read-only view of the table schemas by name."""
        return dict(self._tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all tables in creation order."""
        return tuple(self._tables)

    # -- foreign keys --------------------------------------------------------

    def add_foreign_key(
        self,
        name: str,
        source_table: str,
        source_columns: Iterable[str],
        target_table: str,
        target_columns: Iterable[str],
    ) -> ForeignKey:
        """Register a foreign key, validating both endpoints."""
        if name in self._foreign_keys:
            raise DuplicateObjectError(f"foreign key {name!r} already exists")
        fk = ForeignKey(
            name=name,
            source_table=source_table,
            source_columns=tuple(source_columns),
            target_table=target_table,
            target_columns=tuple(target_columns),
        )
        source = self.table(fk.source_table)
        target = self.table(fk.target_table)
        for source_column, target_column in fk.column_pairs():
            if not source.has_column(source_column):
                raise UnknownObjectError(
                    f"foreign key {name!r}: {source_table}.{source_column} "
                    "does not exist"
                )
            if not target.has_column(target_column):
                raise UnknownObjectError(
                    f"foreign key {name!r}: {target_table}.{target_column} "
                    "does not exist"
                )
        self._foreign_keys[name] = fk
        return fk

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        """All foreign keys in creation order."""
        return tuple(self._foreign_keys.values())

    def foreign_keys_of(self, table: str) -> tuple[ForeignKey, ...]:
        """All foreign keys where *table* is source or target."""
        self.table(table)  # validate existence
        return tuple(
            fk
            for fk in self._foreign_keys.values()
            if table in (fk.source_table, fk.target_table)
        )

    def restricted_to(self, tables: Iterable[str]) -> "DatabaseSchema":
        """Return a copy containing only *tables* and the FKs among them.

        The SD design algorithm uses this to exclude small, fully-replicated
        tables before building the schema graph (paper Section 3.1).
        """
        keep = set(tables)
        unknown = keep - set(self._tables)
        if unknown:
            raise UnknownObjectError(f"unknown tables: {sorted(unknown)}")
        restricted = DatabaseSchema()
        for name, table in self._tables.items():
            if name in keep:
                restricted.add_table(table)
        for fk in self._foreign_keys.values():
            if fk.source_table in keep and fk.target_table in keep:
                restricted._foreign_keys[fk.name] = fk
        return restricted

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"DatabaseSchema({len(self._tables)} tables, "
            f"{len(self._foreign_keys)} foreign keys)"
        )
