"""Catalog: column types, table schemas, referential constraints, statistics."""

from repro.catalog.column import Column, DataType
from repro.catalog.schema import DatabaseSchema, ForeignKey, TableSchema
from repro.catalog.statistics import FrequencyHistogram, build_histogram

__all__ = [
    "Column",
    "DataType",
    "DatabaseSchema",
    "ForeignKey",
    "TableSchema",
    "FrequencyHistogram",
    "build_histogram",
]
