"""repro — PREF: locality-aware partitioning for parallel database systems.

A from-scratch reproduction of Zamanian, Binnig and Salama,
"Locality-aware Partitioning in Parallel Database Systems" (SIGMOD 2015):
the PREF partitioning scheme, query processing over PREF-partitioned tables
on a simulated shared-nothing cluster, bulk loading with partition indexes,
and the schema-driven (SD) and workload-driven (WD) automated partitioning
design algorithms, evaluated with TPC-H and TPC-DS style workloads.
"""

from repro.catalog import (
    Column,
    DatabaseSchema,
    DataType,
    ForeignKey,
    TableSchema,
)
from repro.partitioning import (
    BulkLoader,
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
    RangeScheme,
    ReplicatedScheme,
    RoundRobinScheme,
    partition_database,
)
from repro.storage import Database, PartitionedDatabase, Table

__version__ = "1.0.0"

__all__ = [
    "BulkLoader",
    "Column",
    "Database",
    "DatabaseSchema",
    "DataType",
    "ForeignKey",
    "HashScheme",
    "JoinPredicate",
    "PartitionedDatabase",
    "PartitioningConfig",
    "PrefScheme",
    "RangeScheme",
    "ReplicatedScheme",
    "RoundRobinScheme",
    "Table",
    "TableSchema",
    "partition_database",
    "__version__",
]
