"""Query processing: plans, rewrite rules, distributed + local executors."""

from repro.engine import (
    OperatorStats,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.query.builder import Query
from repro.query.certify import (
    Certificate,
    CertifyResult,
    Refutation,
    certify,
)
from repro.query.cost import CostParameters, ExecutionStats
from repro.query.executor import Executor, QueryResult
from repro.query.expressions import and_, col, lit, not_, or_
from repro.query.local_executor import LocalExecutor
from repro.query.plan import (
    Aggregate,
    AggregateSpec,
    Filter,
    Join,
    JoinKind,
    OrderBy,
    PlanNode,
    Project,
    Scan,
)
from repro.query.rewrite import Annotated, Rewriter

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "Annotated",
    "Certificate",
    "CertifyResult",
    "CostParameters",
    "ExecutionStats",
    "Executor",
    "Filter",
    "Join",
    "JoinKind",
    "LocalExecutor",
    "OperatorStats",
    "OrderBy",
    "PlanNode",
    "Project",
    "Query",
    "QueryResult",
    "Refutation",
    "Rewriter",
    "Scan",
    "SerialBackend",
    "ThreadPoolBackend",
    "and_",
    "certify",
    "col",
    "lit",
    "not_",
    "or_",
]
