"""A fluent builder for SPJA logical plans.

Example::

    plan = (
        Query.scan("orders", alias="o")
        .join(Query.scan("customer", alias="c"), on=[("o.custkey", "c.custkey")])
        .aggregate(group_by=["c.cname"], aggregates=[("sum", col("o.total"), "revenue")])
        .order_by([("revenue", False)])
        .plan()
    )
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.query.expressions import Expression, col
from repro.query.plan import (
    Aggregate,
    AggregateSpec,
    Filter,
    Join,
    JoinKind,
    OrderBy,
    PlanNode,
    Project,
    Scan,
)


class Query:
    """Immutable fluent wrapper around a logical plan node."""

    def __init__(self, node: PlanNode) -> None:
        self._node = node

    @classmethod
    def scan(cls, table: str, alias: str | None = None) -> "Query":
        """Start a query from a base-table scan."""
        return cls(Scan(table, alias))

    def where(self, condition: Expression) -> "Query":
        """Filter rows by a boolean expression."""
        return Query(Filter(self._node, condition))

    def select(
        self,
        outputs: Sequence[tuple[str, Expression] | str],
        distinct: bool = False,
    ) -> "Query":
        """Project output columns.

        Entries may be ``(name, expression)`` pairs or bare column names
        (projected under their short name).
        """
        normalised = []
        for output in outputs:
            if isinstance(output, str):
                short = output.split(".")[-1]
                normalised.append((short, col(output)))
            else:
                normalised.append(output)
        return Query(Project(self._node, tuple(normalised), distinct=distinct))

    def join(
        self,
        other: "Query",
        on: Iterable[tuple[str, str]],
        kind: JoinKind = JoinKind.INNER,
        residual: Expression | None = None,
    ) -> "Query":
        """Equi-join with another query."""
        return Query(
            Join(self._node, other._node, tuple(on), kind, residual)
        )

    def semi_join(self, other: "Query", on: Iterable[tuple[str, str]]) -> "Query":
        """Keep rows with at least one match in *other*."""
        return self.join(other, on, kind=JoinKind.SEMI)

    def anti_join(self, other: "Query", on: Iterable[tuple[str, str]]) -> "Query":
        """Keep rows with no match in *other*."""
        return self.join(other, on, kind=JoinKind.ANTI)

    def left_join(
        self,
        other: "Query",
        on: Iterable[tuple[str, str]],
        residual: Expression | None = None,
    ) -> "Query":
        """Left outer join with another query."""
        return self.join(other, on, kind=JoinKind.LEFT_OUTER, residual=residual)

    def cross_join(
        self, other: "Query", residual: Expression | None = None
    ) -> "Query":
        """Cross join (theta join when *residual* is given)."""
        return Query(
            Join(self._node, other._node, (), JoinKind.CROSS, residual)
        )

    def aggregate(
        self,
        group_by: Sequence[str] = (),
        aggregates: Sequence[tuple[str, Expression | None, str]] = (),
    ) -> "Query":
        """Group-by aggregation; ``aggregates`` are (func, expr, name)."""
        specs = tuple(
            AggregateSpec(func, expr, name) for func, expr, name in aggregates
        )
        return Query(Aggregate(self._node, tuple(group_by), specs))

    def order_by(
        self,
        keys: Sequence[tuple[str, bool] | str],
        limit: int | None = None,
    ) -> "Query":
        """Sort (ascending by default) and optionally limit the result."""
        normalised = tuple(
            (key, True) if isinstance(key, str) else key for key in keys
        )
        return Query(OrderBy(self._node, normalised, limit))

    def plan(self) -> PlanNode:
        """The built logical plan."""
        return self._node

    def explain(self) -> str:
        """Readable logical plan."""
        return self._node.explain()
