"""Static parallel-correctness certification of rewritten plans.

Complements the dynamic fuzzer with the static criterion of
parallel-correctness for conjunctive queries (Ameloot et al.) phrased as
distribution constraints (Geck et al.): walk an :class:`Annotated` plan
bottom-up and derive, for every operator, a :class:`Fact` — a symbolic
guarantee about which tuples (and how many copies of each) every
partition holds — from the partitioning configuration alone, independent
of the rewriter's own ``Part``/``Dup`` claims.  At every join, aggregate,
dedup and repartition the derived facts must justify executing the
operator per-partition and unioning the results; where the rewriter's
*declared* dup-governing columns disagree with the derived redundancy
accounting, the plan is refuted.

The derivation trusts the structural metadata of the plan (column
layouts, origins) and the engine's operator arithmetic (e.g. the
two-phase aggregate merge); what it checks is the *placement reasoning*:
co-location claims, PREF-partner coverage, and duplicate governance.
Every placement claim is routed through the module-level
:func:`check_partner` gatekeeper and every redundancy claim through
:func:`check_dup_bits`, so tests can disable one family of checks and
prove that a historically buggy plan is only rejected *because* of it.

Constraint vocabulary of a :class:`Fact`:

* ``slots`` — per hash position, the set of column names whose values
  locate every copy of a row at ``stable_hash(values) % count``;
* ``anchors`` — base tables whose contained rows still sit in their
  stored placement;
* ``pref`` — the result behaves like the referencing table of a PREF
  scheme: each row has one copy in exactly every partition storing a
  partner (partner-less rows exist once);
* ``dup_bits`` — hidden columns governing redundant copies (all bits
  falsy identifies the canonical copy exactly once);
* ``live_bits`` — hidden columns whose value may be non-zero; a declared
  dedup on a live but non-governing bit drops real rows;
* ``anonymous_dup`` — redundant copies may exist whose governing column
  was projected away (nothing can eliminate them any more);
* ``complete`` — base tables whose full logical content is present.

Known incompleteness (sound but may refute correct plans): value-level
reasoning (a filter that happens to keep one partition's rows), schemes
beyond the configured ones, and PREF claims kept through joins only when
the referenced key is unique.  Assumptions the rewriter verified but the
certifier cannot re-derive (partner-filter build completeness, Bloom
probes being false-positive-only) must be stated as ``extra["assume"]``
annotations; they are validated for internal consistency and listed in
the certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PlanningError
from repro.partitioning.scheme import (
    HashScheme,
    PrefScheme,
    SchemeKind,
)
from repro.query.expressions import ColumnRef
from repro.query.plan import (
    Aggregate,
    BloomProbe,
    DedupFilter,
    Filter,
    Join,
    JoinKind,
    OrderBy,
    PartnerFilter,
    Project,
    Repartition,
    Scan,
)
from repro.query.relation import dup_column, has_column, is_hidden
from repro.query.rewrite import Annotated
from repro.storage.partitioned import PartitionedDatabase


@dataclass(frozen=True)
class PrefClaim:
    """The result is placed like the referencing table of *scheme*.

    Semantics: every row's copies occupy exactly the partitions that
    store a partner (a referenced-table row satisfying the scheme
    predicate against the row's referencing columns), one copy each;
    rows whose referencing key has no partner (including NULL keys)
    exist as exactly one copy somewhere.
    """

    scheme: PrefScheme
    table: str
    seed: str | None


@dataclass(frozen=True)
class Fact:
    """Derived placement guarantee for one operator's output."""

    form: str  # "partitioned" | "replicated" | "gathered"
    count: int
    slots: tuple[frozenset[str], ...] = ()
    anchors: frozenset[str] = frozenset()
    pref: PrefClaim | None = None
    dup_bits: frozenset[str] = frozenset()
    live_bits: frozenset[str] = frozenset()
    anonymous_dup: bool = False
    complete: frozenset[str] = frozenset()

    def describe(self) -> str:
        """Compact single-line rendering for certificates."""
        parts = [self.form if self.form != "partitioned" else f"part/{self.count}"]
        if self.slots:
            rendered = ",".join(
                "{" + "=".join(sorted(slot)) + "}" for slot in self.slots
            )
            parts.append(f"hash[{rendered}]")
        if self.pref is not None:
            parts.append(f"pref→{self.pref.scheme.referenced_table}")
        if self.anchors:
            parts.append("@" + ",".join(sorted(self.anchors)))
        if self.dup_bits:
            parts.append("dup{" + ",".join(sorted(self.dup_bits)) + "}")
        if self.anonymous_dup:
            parts.append("dup?*")
        if self.complete:
            parts.append("full{" + ",".join(sorted(self.complete)) + "}")
        return " ".join(parts)


@dataclass
class Certificate:
    """Per-node certified constraints for a plan that passed all checks."""

    lines: list[tuple[int, str, str]]
    assumptions: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Indented tree (same shape as ``explain``) with constraints."""
        out = [
            "  " * depth + label + "  :: " + constraint
            for depth, label, constraint in self.lines
        ]
        for assumption in self.assumptions:
            out.append(f"assuming: {assumption}")
        return "\n".join(out)


@dataclass
class Refutation:
    """A failed certification: which check failed, where, and why."""

    check: str
    reason: str
    path: tuple[str, ...]
    counterexample: dict | None = None

    def render(self) -> str:
        location = " > ".join(self.path)
        text = f"REFUTED [{self.check}] at {location}: {self.reason}"
        if self.counterexample is not None:
            text += "\n(counterexample database attached)"
        return text


@dataclass
class CertifyResult:
    """Outcome of :func:`certify` — a proof or a refutation."""

    certificate: Certificate | None = None
    refutation: Refutation | None = None

    @property
    def certified(self) -> bool:
        return self.certificate is not None

    def render(self) -> str:
        if self.certificate is not None:
            return self.certificate.render()
        assert self.refutation is not None
        return self.refutation.render()


class _Refuted(Exception):
    def __init__(self, check: str, reason: str, path: tuple[str, ...]):
        super().__init__(reason)
        self.check = check
        self.reason = reason
        self.path = path


# -- gatekeepers -------------------------------------------------------------
#
# All placement-claim validation funnels through check_partner and all
# redundancy validation through check_dup_bits.  Returning None grants
# the claim; returning a string refutes the plan with that reason.  The
# reintroduction meta-tests monkeypatch these to `lambda *a, **k: None`
# and assert that known-bad plans then certify — proving each check is
# the one with bite.


def check_partner(claim: str, ctx: dict) -> str | None:
    """Validate one placement claim (join case, aggregate strategy)."""
    checker = _PARTNER_CHECKS.get(claim)
    if checker is None:
        return f"unknown placement claim {claim!r}"
    return checker(ctx)


def check_dup_bits(
    where: str,
    declared: tuple[str, ...],
    fact: Fact,
    require_free: bool = False,
) -> str | None:
    """Validate declared dup-governing columns against derived redundancy.

    A declared bit that is live but not governing would drop
    non-redundant rows (over-dedup).  With *require_free*, any governed
    or anonymous redundancy not covered by *declared* means duplicate
    copies reach an operator that must see each logical row once.
    """
    for bit in declared:
        if bit in fact.live_bits and bit not in fact.dup_bits:
            return (
                f"{where}: dedup on {bit} would drop non-redundant rows "
                "(bit is live but does not govern copies)"
            )
    if require_free:
        remaining = fact.dup_bits - frozenset(declared)
        if remaining:
            return (
                f"{where}: rows may still carry PREF duplicates governed "
                f"by {sorted(remaining)} with no dedup declared"
            )
        if fact.anonymous_dup:
            return (
                f"{where}: rows may carry redundant copies whose "
                "governing dup column was projected away"
            )
    return None


# -- individual claim checks -------------------------------------------------


def _resolved(ctx_pairs, i=None):
    return ctx_pairs if i is None else ctx_pairs[i]


def _check_both_replicated(ctx: dict) -> str | None:
    lf, rf = ctx["left"], ctx["right"]
    if lf.form != "replicated" or rf.form != "replicated":
        return "both_replicated join over a non-replicated input"
    return None


def _check_replicated_right(ctx: dict) -> str | None:
    lf, rf = ctx["left"], ctx["right"]
    if rf.form != "replicated":
        return "replicated_right join but the right input is not replicated"
    if lf.form != "partitioned":
        return (
            "replicated_right join needs a partitioned left input "
            f"(got {lf.form}; a single-copy left would be joined once "
            "per node)"
        )
    if lf.count != ctx["count"]:
        return "left input partition count does not match the cluster"
    return None


def _check_replicated_left(ctx: dict) -> str | None:
    lf, rf = ctx["left"], ctx["right"]
    if lf.form != "replicated":
        return "replicated_left join but the left input is not replicated"
    if rf.form != "partitioned":
        return "replicated_left join needs a partitioned right input"
    if rf.count != ctx["count"]:
        return "right input partition count does not match the cluster"
    if ctx["kind"] is not JoinKind.INNER:
        return (
            "replicated_left is only sound for inner joins: the "
            "preserved side is a full copy per node, so per-partition "
            f"{ctx['kind'].value} decisions would repeat its rows"
        )
    return None


def _check_case1(ctx: dict) -> str | None:
    lf, rf = ctx["left"], ctx["right"]
    if lf.form != "partitioned" or rf.form != "partitioned":
        return "case-1 join over a non-partitioned input"
    if lf.count != rf.count or lf.count != ctx["count"]:
        return "case-1 join inputs have mismatched partition counts"
    if not lf.slots or not rf.slots:
        return (
            "case-1 join requires both inputs hash-placed on the join "
            "keys, but no hash placement could be derived"
        )
    if len(lf.slots) != len(rf.slots):
        return "case-1 join inputs are hashed on keys of different arity"
    pairs = ctx["pairs"]
    for i, left_slot in enumerate(lf.slots):
        right_slot = rf.slots[i]
        if not any(
            ln in left_slot and rn in right_slot for ln, rn in pairs
        ):
            return (
                f"hash position {i} is not equated by any join pair: "
                f"left placed by {sorted(left_slot)}, right by "
                f"{sorted(right_slot)}"
            )
    return None


def _check_pref_case(ctx: dict) -> str | None:
    referencing: Fact = ctx["referencing"]
    referenced: Fact = ctx["referenced"]
    case = ctx["case"]
    if referencing.form != "partitioned" or referenced.form != "partitioned":
        return f"{case} join over a non-partitioned input"
    if referencing.count != referenced.count or referencing.count != ctx["count"]:
        return f"{case} join inputs have mismatched partition counts"
    claim = referencing.pref
    if claim is None:
        return (
            f"{case} join requires the referencing input to carry a PREF "
            "placement guarantee, but none could be derived"
        )
    scheme = claim.scheme
    table_s = scheme.referenced_table
    if table_s not in referenced.anchors:
        return (
            f"referenced table {table_s!r} does not anchor the other "
            "join input (its rows may have moved)"
        )
    partitioned: PartitionedDatabase = ctx["partitioned"]
    stored = partitioned.table(table_s)
    if case == "case2":
        # Case 2 needs each referenced row to exist exactly once, so the
        # pair (r, s) forms exactly once cluster-wide (at s's partition,
        # where r is guaranteed a copy).  A seed table qualifies, and so
        # does a PREF table whose materialisation happens to be
        # duplicate- and patch-free (effectively seed-placed).
        if stored.scheme.kind is SchemeKind.REPLICATED:
            return (
                f"case-2 join against replicated table {table_s!r}: "
                "every partition stores a partner, so pairs repeat "
                "per node"
            )
        if stored.has_governing_duplicates:
            return (
                f"case-2 join but referenced table {table_s!r} rows are "
                "not single-copy (stored duplicates or patch deliveries)"
            )
    else:
        other = referenced.pref
        if other is None:
            return (
                "case-3 join requires the referenced input to carry a "
                "PREF placement guarantee too"
            )
        if other.seed != claim.seed:
            return (
                f"case-3 join of PREF chains with different seeds "
                f"({other.seed!r} vs {claim.seed!r})"
            )
        if stored.patch_count:
            # The referencing table was placed against this table's
            # stored copies; patched-out partners break the coverage
            # argument (configs like this are rejected at validate time).
            return (
                f"referenced table {table_s!r} has patch-list overflow: "
                "its stored copies do not cover all partner partitions"
            )
    # Every conjunct of the partitioning predicate must be realised by a
    # join pair, origin-wise.
    table_r = claim.table
    needed = {
        ((table_r, ref_col), (table_s, s_col))
        for ref_col, s_col in zip(
            scheme.referencing_columns(table_r), scheme.referenced_columns
        )
    }
    if not needed <= ctx["pair_origins"]:
        missing = needed - ctx["pair_origins"]
        return (
            "the join predicate does not realise the PREF partitioning "
            f"predicate (missing {sorted(missing)})"
        )
    kind: JoinKind = ctx["kind"]
    if kind is not JoinKind.INNER:
        if kind not in (JoinKind.LEFT_OUTER, JoinKind.SEMI, JoinKind.ANTI):
            return f"{case} join does not support kind {kind.value}"
        if ctx["referenced_side"] != "left":
            # Preserved side is the referencing input: every copy's
            # local match decision is only globally consistent when the
            # referenced content is the complete base table.
            if table_s in referenced.complete:
                pass
            elif ctx["assume"].get("pristine") == table_s:
                ctx["assumptions"].append(
                    f"{case} {kind.value} join: referenced side holds the "
                    f"complete content of {table_s!r} (rewriter-stated)"
                )
            else:
                return (
                    f"{kind.value} join preserves the referencing side, "
                    f"but the referenced side is not provably the "
                    f"complete content of {table_s!r}"
                )
    return None


def _check_shuffled(ctx: dict) -> str | None:
    lf, rf = ctx["left"], ctx["right"]
    if lf.form != "partitioned" or rf.form != "partitioned":
        return "shuffled join over a non-partitioned input"
    if lf.count != rf.count or lf.count != ctx["count"]:
        return "shuffled join inputs have mismatched partition counts"
    pairs = ctx["pairs"]
    if not pairs:
        return "shuffled join without equi-join pairs"
    if len(lf.slots) != len(pairs) or len(rf.slots) != len(pairs):
        return (
            "shuffled join inputs are not hash-placed on exactly the "
            "join keys"
        )
    for i, (ln, rn) in enumerate(pairs):
        if ln not in lf.slots[i]:
            return (
                f"left input is not placed by join key {ln} at hash "
                f"position {i}"
            )
        if rn not in rf.slots[i]:
            return (
                f"right input is not placed by join key {rn} at hash "
                f"position {i}"
            )
    return None


def _check_broadcast(ctx: dict) -> str | None:
    lf, rf = ctx["left"], ctx["right"]
    for fact, side in ((lf, "left"), (rf, "right")):
        if fact.form == "partitioned" and fact.count != ctx["count"]:
            return (
                f"broadcast join {side} input partition count does not "
                "match the cluster"
            )
    return None


def _check_partner_filter(ctx: dict) -> str | None:
    scheme: PrefScheme | None = ctx["scheme"]
    alias = ctx["alias"]
    if scheme is None:
        return (
            f"partner filter on alias {alias!r} which is not a "
            "PREF-partitioned scan"
        )
    table_s = scheme.referenced_table
    if ctx["assume"].get("pristine") != table_s:
        return (
            "partner filter requires the build side to be the complete "
            f"content of {table_s!r}, but the plan does not state that "
            "assumption"
        )
    if has_column(alias) not in ctx["columns"]:
        return (
            f"partner filter needs the hidden {has_column(alias)} column, "
            "which is not present"
        )
    ctx["assumptions"].append(
        f"partner filter on {alias!r}: hasS bitmap ≡ membership in the "
        f"complete content of {table_s!r} (rewriter-stated)"
    )
    return None


def _check_aggregate_local(ctx: dict) -> str | None:
    child: Fact = ctx["child"]
    if child.form != "partitioned":
        return "local aggregate over a non-partitioned input"
    if child.count != ctx["count"]:
        return "local aggregate input partition count mismatch"
    if not child.slots:
        return (
            "local aggregate requires hash placement on a prefix of the "
            "grouping columns, but no hash placement could be derived"
        )
    group_names = ctx["group_names"]
    if len(group_names) < len(child.slots):
        return (
            "grouping columns do not cover the input's hash placement "
            f"({len(group_names)} groups, {len(child.slots)} hash "
            "positions): a group may span partitions"
        )
    for i, slot in enumerate(child.slots):
        if group_names[i] not in slot:
            return (
                f"grouping column {group_names[i]} is not the hash "
                f"placement column at position {i} (placed by "
                f"{sorted(slot)}): a group may span partitions"
            )
    return None


def _check_aggregate_single(ctx: dict) -> str | None:
    child: Fact = ctx["child"]
    if child.form not in ("replicated", "gathered"):
        return (
            "single-node aggregate over a partitioned input would drop "
            "remote rows"
        )
    return None


def _check_aggregate_two_phase(ctx: dict) -> str | None:
    child: Fact = ctx["child"]
    if child.form == "partitioned" and child.count != ctx["count"]:
        return "two-phase aggregate input partition count mismatch"
    if child.form == "replicated":
        return (
            "two-phase aggregate over a replicated input would "
            "accumulate every copy"
        )
    return None


_PARTNER_CHECKS = {
    "join:both_replicated": _check_both_replicated,
    "join:replicated_right": _check_replicated_right,
    "join:replicated_left": _check_replicated_left,
    "join:case1": _check_case1,
    "join:case2": _check_pref_case,
    "join:case3": _check_pref_case,
    "join:shuffled": _check_shuffled,
    "join:broadcast": _check_broadcast,
    "join:partner_filter": _check_partner_filter,
    "aggregate:local": _check_aggregate_local,
    "aggregate:single": _check_aggregate_single,
    "aggregate:two_phase": _check_aggregate_two_phase,
}


# -- the bottom-up derivation ------------------------------------------------


class _Certifier:
    def __init__(self, partitioned: PartitionedDatabase) -> None:
        self.partitioned = partitioned
        self.count = partitioned.partition_count
        self.lines: list[list] = []
        self.assumptions: list[str] = []
        self.path: list[str] = []

    # -- plumbing ----------------------------------------------------------

    def refute(self, check: str, reason: str) -> None:
        raise _Refuted(check, reason, tuple(self.path))

    def gate_partner(self, claim: str, ctx: dict) -> None:
        ctx.setdefault("count", self.count)
        ctx.setdefault("partitioned", self.partitioned)
        ctx.setdefault("assumptions", self.assumptions)
        reason = check_partner(claim, ctx)
        if reason is not None:
            self.refute(claim, reason)

    def gate_dup(
        self,
        where: str,
        declared: tuple[str, ...],
        fact: Fact,
        require_free: bool = False,
    ) -> None:
        reason = check_dup_bits(where, declared, fact, require_free)
        if reason is not None:
            self.refute("dup_bits", reason)

    def name_of(self, a: Annotated, ref: str) -> str:
        try:
            return a.props.columns[a.props.position(ref)]
        except PlanningError as exc:
            self.refute("structure", f"cannot resolve column {ref!r}: {exc}")
            raise AssertionError  # unreachable

    def derive(self, a: Annotated) -> Fact:
        label = a.node._label()
        strategy = a.extra.get("strategy")
        if strategy:
            case = a.extra.get("case")
            label += f" [{strategy}{'/' + case if case else ''}]"
        entry = [len(self.path), label, ""]
        self.lines.append(entry)
        self.path.append(label)
        fact = self._derive_node(a)
        entry[2] = fact.describe()
        self.path.pop()
        return fact

    def _derive_node(self, a: Annotated) -> Fact:
        node = a.node
        if isinstance(node, Scan):
            return self._scan(a)
        if isinstance(node, Filter):
            return self._filter(a)
        if isinstance(node, BloomProbe):
            return self._bloom_probe(a)
        if isinstance(node, Project):
            return self._project(a)
        if isinstance(node, DedupFilter):
            return self._dedup(a)
        if isinstance(node, PartnerFilter):
            return self._partner_filter(a)
        if isinstance(node, Repartition):
            return self._repartition(a)
        if isinstance(node, Join):
            return self._join(a)
        if isinstance(node, Aggregate):
            return self._aggregate(a)
        if isinstance(node, OrderBy):
            return self._order_by(a)
        self.refute("structure", f"cannot certify node {node!r}")
        raise AssertionError  # unreachable

    # -- leaves ------------------------------------------------------------

    def _scan(self, a: Annotated) -> Fact:
        node: Scan = a.node
        try:
            table = self.partitioned.table(node.table)
        except Exception as exc:
            self.refute("structure", f"unknown table {node.table!r}: {exc}")
        if a.extra.get("prune") is not None:
            self.assumptions.append(
                f"partition pruning on {node.name!r} only skips partitions "
                "that cannot store a qualifying row"
            )
        alias = node.name
        base = frozenset((node.table,))
        scheme = table.scheme
        if scheme.kind is SchemeKind.REPLICATED:
            return Fact("replicated", self.count, complete=base)
        if scheme.kind is SchemeKind.PREF:
            duplicated = table.has_governing_duplicates
            slots: tuple[frozenset[str], ...] = ()
            if table.effective_hash is not None and not duplicated:
                slots = tuple(
                    frozenset((f"{alias}.{c}",)) for c in table.effective_hash
                )
            live = {has_column(alias)}
            dup_bits: frozenset[str] = frozenset()
            if duplicated:
                live.add(dup_column(alias))
                dup_bits = frozenset((dup_column(alias),))
            return Fact(
                "partitioned",
                self.count,
                slots=slots,
                anchors=base,
                pref=PrefClaim(scheme, node.table, table.seed_table),
                dup_bits=dup_bits,
                live_bits=frozenset(live),
                complete=base,
            )
        slots = ()
        if isinstance(scheme, HashScheme):
            slots = tuple(
                frozenset((f"{alias}.{c}",)) for c in scheme.columns
            )
        return Fact(
            "partitioned",
            self.count,
            slots=slots,
            anchors=base,
            complete=base,
        )

    # -- row filters -------------------------------------------------------

    def _filter(self, a: Annotated) -> Fact:
        node: Filter = a.node
        child = self.derive(a.inputs[0])
        child_props = a.inputs[0].props
        for ref in node.condition.referenced_columns():
            try:
                name = child_props.columns[child_props.position(ref)]
            except PlanningError as exc:
                self.refute(
                    "structure", f"filter references unknown column: {exc}"
                )
            if is_hidden(name):
                self.refute(
                    "dup_bits",
                    f"filter reads hidden bitmap column {name}: predicates "
                    "over dup/has bits are not value-uniform across copies",
                )
        return replace(child, complete=frozenset())

    def _bloom_probe(self, a: Annotated) -> Fact:
        child = self.derive(a.inputs[0])
        self.assumptions.append(
            "Bloom probes only drop rows that cannot affect the result "
            "(false-positive-only filters, transfer respects join kinds)"
        )
        return child

    def _partner_filter(self, a: Annotated) -> Fact:
        node: PartnerFilter = a.node
        child = self.derive(a.inputs[0])
        scheme = None
        for inner in _walk(a.inputs[0]):
            if isinstance(inner.node, Scan) and inner.node.name == node.table:
                stored = self.partitioned.table(inner.node.table)
                if isinstance(stored.scheme, PrefScheme):
                    scheme = stored.scheme
        self.gate_partner(
            "join:partner_filter",
            {
                "scheme": scheme,
                "alias": node.table,
                "columns": a.inputs[0].props.columns,
                "assume": a.extra.get("assume", {}),
            },
        )
        # hasS is identical across all copies of a row, so the filter
        # decision is copy-uniform: every claim survives.
        return replace(child, complete=frozenset())

    # -- projection --------------------------------------------------------

    def _project(self, a: Annotated) -> Fact:
        node: Project = a.node
        child = self.derive(a.inputs[0])
        child_props = a.inputs[0].props
        rename: dict[str, str] = {}
        for name, expr in node.outputs:
            if isinstance(expr, ColumnRef):
                source = self.name_of(a.inputs[0], expr.name)
                rename[source] = name
            else:
                for ref in expr.referenced_columns():
                    try:
                        src = child_props.columns[child_props.position(ref)]
                    except PlanningError as exc:
                        self.refute(
                            "structure",
                            f"projection references unknown column: {exc}",
                        )
                    if is_hidden(src):
                        self.refute(
                            "dup_bits",
                            f"projection computes from hidden bitmap "
                            f"column {src}",
                        )
        anonymous = child.anonymous_dup
        for bit in child.dup_bits:
            if bit not in rename:
                anonymous = True
        dup_bits = frozenset(
            rename[bit] for bit in child.dup_bits if bit in rename
        )
        live = frozenset(
            rename[bit] for bit in child.live_bits if bit in rename
        )
        slots: tuple[frozenset[str], ...] = ()
        if child.slots:
            mapped = tuple(
                frozenset(rename[n] for n in slot if n in rename)
                for slot in child.slots
            )
            slots = mapped if all(mapped) else ()
        fact = Fact(
            child.form,
            child.count,
            slots=slots,
            anchors=child.anchors,
            pref=child.pref,
            dup_bits=dup_bits,
            live_bits=live,
            anonymous_dup=anonymous,
            complete=frozenset() if node.distinct else child.complete,
        )
        if a.extra.get("distinct") == "local":
            fact = self._apply_local_distinct(
                fact, tuple(name for name, _ in node.outputs)
            )
            if a.extra.get("assume", {}).get("membership_only"):
                # The rewriter shipped only locally-distinct join keys to
                # a semi/anti build side; per-partition dedup is enough
                # because downstream only tests key membership.
                self.assumptions.append(
                    "locally-distinct key projection feeds a "
                    "membership-only consumer (rewriter-stated)"
                )
        return fact

    def _apply_local_distinct(
        self, fact: Fact, columns: tuple[str, ...]
    ) -> Fact:
        """A per-partition DISTINCT discharges redundancy only when every
        copy of a row is provably in one partition and value-identical
        (no hidden columns distinguishing copies)."""
        if any(is_hidden(c) for c in columns):
            return replace(fact, complete=frozenset())
        if fact.form in ("replicated", "gathered"):
            return replace(
                fact,
                dup_bits=frozenset(),
                live_bits=frozenset(),
                anonymous_dup=False,
                complete=frozenset(),
            )
        # Partitioned: copies may sit in different partitions; a local
        # distinct does not merge them, so redundancy claims flow.
        return replace(fact, complete=frozenset())

    # -- dedup and exchange ------------------------------------------------

    def _dedup(self, a: Annotated) -> Fact:
        child = self.derive(a.inputs[0])
        declared = a.inputs[0].props.governing
        self.gate_dup("dedup", declared, child)
        # Rows do not move: placement claims survive.  The PREF claim is
        # dropped — eliminating copies breaks "one copy per partner
        # partition".
        return replace(
            child,
            dup_bits=child.dup_bits - frozenset(declared),
            live_bits=child.live_bits - frozenset(declared),
            pref=None,
        )

    def _repartition(self, a: Annotated) -> Fact:
        node: Repartition = a.node
        child = self.derive(a.inputs[0])
        if node.count != self.count:
            self.refute(
                "structure",
                f"repartition into {node.count} partitions on a "
                f"{self.count}-partition cluster",
            )
        declared: tuple[str, ...] = ()
        if node.dedup:
            declared = a.inputs[0].props.governing
            self.gate_dup("repartition dedup", declared, child)
        key_names = tuple(self.name_of(a.inputs[0], k) for k in node.keys)
        for name in key_names:
            if is_hidden(name):
                self.refute(
                    "dup_bits",
                    f"repartition keyed on hidden bitmap column {name}",
                )
        fact = Fact(
            "partitioned",
            node.count,
            slots=tuple(frozenset((n,)) for n in key_names),
            dup_bits=child.dup_bits - frozenset(declared),
            live_bits=child.live_bits - frozenset(declared),
            anonymous_dup=child.anonymous_dup,
            complete=child.complete,
        )
        if a.extra.get("distinct") == "local" and set(key_names) == set(
            a.props.columns
        ):
            # Hashing on *every* column co-locates all copies of a
            # value-identical row; the post-shuffle local distinct is
            # then a global distinct.
            fact = self._apply_local_distinct(fact, a.props.columns)
        return fact

    # -- joins -------------------------------------------------------------

    def _join(self, a: Annotated) -> Fact:
        node: Join = a.node
        la, ra = a.inputs
        lf = self.derive(la)
        rf = self.derive(ra)
        for side, fact in (("left", lf), ("right", rf)):
            if fact.form == "gathered" and a.extra.get("strategy") == "local":
                self.refute(
                    "structure",
                    f"local join over a gathered {side} input (it exists "
                    "only on the coordinator)",
                )
        pairs = tuple(
            (self.name_of(la, l), self.name_of(ra, r)) for l, r in node.on
        )
        strategy = a.extra.get("strategy")
        if strategy == "broadcast":
            return self._broadcast_join(a, node, lf, rf, pairs)
        if strategy != "local":
            self.refute(
                "structure", f"join without a known strategy ({strategy!r})"
            )
        case = a.extra.get("case")
        if case in ("case2", "case3"):
            return self._pref_join(a, node, lf, rf, pairs)
        ctx = {"left": lf, "right": rf, "pairs": pairs, "kind": node.kind}
        if case in (
            "both_replicated",
            "replicated_right",
            "replicated_left",
            "case1",
            "shuffled",
        ):
            self.gate_partner(f"join:{case}", ctx)
        else:
            self.refute("structure", f"unknown join case {case!r}")
        left_names = frozenset(la.props.columns)
        kind = node.kind
        # Padded LEFT OUTER rows NULL every right-side column, so only
        # left-side names keep locating rows; inner joins keep both.
        restrict = left_names if kind is JoinKind.LEFT_OUTER else None

        if case == "both_replicated":
            fact = Fact(
                "replicated",
                self.count,
                dup_bits=lf.dup_bits | rf.dup_bits,
                live_bits=lf.live_bits | rf.live_bits,
                anonymous_dup=lf.anonymous_dup or rf.anonymous_dup,
            )
            return self._narrow_semi_anti(fact, lf, kind)

        if case == "replicated_right":
            fact = Fact(
                "partitioned",
                self.count,
                slots=_extend_slots(lf.slots, pairs, kind, restrict),
                anchors=lf.anchors,
                pref=lf.pref,
                dup_bits=lf.dup_bits | rf.dup_bits,
                live_bits=lf.live_bits | rf.live_bits,
                anonymous_dup=lf.anonymous_dup or rf.anonymous_dup,
            )
            return self._narrow_semi_anti(fact, lf, kind)

        if case == "replicated_left":
            # Inner only (the gate enforced it); mirror of the above.
            return Fact(
                "partitioned",
                self.count,
                slots=_extend_slots(rf.slots, pairs, kind, None),
                anchors=rf.anchors,
                pref=rf.pref,
                dup_bits=lf.dup_bits | rf.dup_bits,
                live_bits=lf.live_bits | rf.live_bits,
                anonymous_dup=lf.anonymous_dup or rf.anonymous_dup,
            )

        # case1 / shuffled: both sides co-partitioned by the join keys.
        anchors = (lf.anchors | rf.anchors) if case == "case1" else frozenset()
        fact = Fact(
            "partitioned",
            self.count,
            slots=_extend_slots(lf.slots, pairs, kind, restrict),
            anchors=anchors,
            dup_bits=lf.dup_bits | rf.dup_bits,
            live_bits=lf.live_bits | rf.live_bits,
            anonymous_dup=lf.anonymous_dup or rf.anonymous_dup,
        )
        return self._narrow_semi_anti(fact, lf, kind)

    def _narrow_semi_anti(self, fact: Fact, lf: Fact, kind: JoinKind) -> Fact:
        """Semi/anti output is the left input only; copy-uniform keep
        decisions preserve every left-side claim.  Build-side redundancy
        is membership-harmless and does not flow."""
        if kind not in (JoinKind.SEMI, JoinKind.ANTI):
            return fact
        return replace(
            fact,
            slots=lf.slots,
            anchors=lf.anchors,
            pref=lf.pref,
            dup_bits=lf.dup_bits,
            live_bits=lf.live_bits,
            anonymous_dup=lf.anonymous_dup,
            complete=frozenset(),
        )

    def _pref_join(
        self,
        a: Annotated,
        node: Join,
        lf: Fact,
        rf: Fact,
        pairs: tuple[tuple[str, str], ...],
    ) -> Fact:
        case = a.extra["case"]
        referenced_side = a.extra.get("referenced_side")
        la, ra = a.inputs
        if referenced_side not in ("left", "right"):
            # Older/hand-built plans: infer the orientation from which
            # side carries a PREF claim anchored by the other.
            referenced_side = self._infer_referenced_side(lf, rf)
        referenced = lf if referenced_side == "left" else rf
        referencing = rf if referenced_side == "left" else lf
        referencing_a = ra if referenced_side == "left" else la
        referenced_a = la if referenced_side == "left" else ra
        pair_origins = set()
        for l_ref, r_ref in node.on:
            origin_a = _safe_origin(referencing_a, l_ref) or _safe_origin(
                referencing_a, r_ref
            )
            origin_b = _safe_origin(referenced_a, l_ref) or _safe_origin(
                referenced_a, r_ref
            )
            if origin_a and origin_b:
                pair_origins.add((origin_a, origin_b))
        self.gate_partner(
            f"join:{case}",
            {
                "referencing": referencing,
                "referenced": referenced,
                "referenced_side": referenced_side,
                "pair_origins": pair_origins,
                "kind": node.kind,
                "case": case,
                "assume": a.extra.get("assume", {}),
            },
        )
        kind = node.kind
        left_names = frozenset(la.props.columns)
        restrict = left_names if kind is JoinKind.LEFT_OUTER else None
        anchors = lf.anchors | rf.anchors
        # The pair (r, s) forms once per stored copy of s: referenced-side
        # redundancy governs the result, referencing-side dup bits become
        # live but no longer governing (each copy pairs with *different*
        # local partners, so none is redundant).
        dup_bits = referenced.dup_bits
        live = lf.live_bits | rf.live_bits
        anonymous = referenced.anonymous_dup
        if case == "case2":
            pref = self._unique_partner_claim(referencing)
            slots = _extend_slots(referencing.slots, pairs, kind, restrict)
        else:
            pref = referenced.pref
            slots = _extend_slots(referenced.slots, pairs, kind, restrict)
        fact = Fact(
            "partitioned",
            self.count,
            slots=slots,
            anchors=anchors,
            pref=pref,
            dup_bits=dup_bits,
            live_bits=live,
            anonymous_dup=anonymous,
            complete=frozenset(),
        )
        return self._narrow_semi_anti(fact, lf, kind)

    def _infer_referenced_side(self, lf: Fact, rf: Fact) -> str:
        if rf.pref is not None and rf.pref.scheme.referenced_table in lf.anchors:
            return "left"
        return "right"

    def _unique_partner_claim(self, referencing: Fact) -> PrefClaim | None:
        """A case-2 result keeps the referencing PREF claim only when the
        referenced key is unique: with several partners per row, the
        joined rows no longer have a copy in every partner partition."""
        claim = referencing.pref
        if claim is None:
            return None
        scheme = claim.scheme
        try:
            stored = self.partitioned.table(scheme.referenced_table)
        except Exception:
            return None
        pk = set(stored.schema.primary_key)
        if pk and pk <= set(scheme.referenced_columns):
            return claim
        return None

    def _broadcast_join(
        self,
        a: Annotated,
        node: Join,
        lf: Fact,
        rf: Fact,
        pairs: tuple[tuple[str, str], ...],
    ) -> Fact:
        self.gate_partner(
            "join:broadcast", {"left": lf, "right": rf, "kind": node.kind}
        )
        kind = node.kind
        fact = Fact(
            "partitioned",
            self.count,
            dup_bits=lf.dup_bits | rf.dup_bits,
            live_bits=lf.live_bits | rf.live_bits,
            anonymous_dup=lf.anonymous_dup or rf.anonymous_dup,
        )
        return self._narrow_semi_anti(fact, lf, kind)

    # -- aggregation and ordering ------------------------------------------

    def _aggregate(self, a: Annotated) -> Fact:
        node: Aggregate = a.node
        child = self.derive(a.inputs[0])
        child_a = a.inputs[0]
        strategy = a.extra.get("strategy")
        # Any duplicate copy reaching an accumulator is counted; the
        # rewriter must have eliminated every governed copy below.
        self.gate_dup("aggregate input", (), child, require_free=True)
        group_names = tuple(self.name_of(child_a, g) for g in node.group_by)
        for name in group_names:
            if is_hidden(name):
                self.refute(
                    "dup_bits",
                    f"aggregate grouped on hidden bitmap column {name}",
                )
        if strategy == "single":
            self.gate_partner("aggregate:single", {"child": child})
            return Fact("gathered", self.count)
        if strategy == "local":
            self.gate_partner(
                "aggregate:local",
                {"child": child, "group_names": group_names},
            )
            slots = tuple(
                frozenset((group_names[i],))
                for i in range(len(child.slots))
            )
            return Fact("partitioned", self.count, slots=slots)
        if strategy == "two_phase":
            self.gate_partner("aggregate:two_phase", {"child": child})
            if not node.group_by:
                return Fact("gathered", self.count)
            return Fact(
                "partitioned",
                self.count,
                slots=tuple(frozenset((n,)) for n in group_names),
            )
        self.refute(
            "structure", f"aggregate without a known strategy ({strategy!r})"
        )
        raise AssertionError  # unreachable

    def _order_by(self, a: Annotated) -> Fact:
        child = self.derive(a.inputs[0])
        # Sorting and LIMIT must see each logical row exactly once.
        self.gate_dup("order-by input", (), child, require_free=True)
        return Fact("gathered", self.count)


def _extend_slots(
    base: tuple[frozenset[str], ...],
    pairs: tuple[tuple[str, str], ...],
    kind: JoinKind,
    restrict_to: frozenset[str] | None,
) -> tuple[frozenset[str], ...]:
    """Grow hash-placement slots with join-pair equalities.

    For inner joins each pair's sides carry equal values in every output
    row, so both names locate the row.  Outer/semi/anti joins only keep
    names from the preserved side (*restrict_to*): padded rows NULL the
    other side, and semi/anti outputs do not contain it at all.
    """
    if not base:
        return ()
    extended = []
    for slot in base:
        grown = set(slot)
        if kind is JoinKind.INNER:
            for ln, rn in pairs:
                if ln in grown:
                    grown.add(rn)
                if rn in grown:
                    grown.add(ln)
        if restrict_to is not None:
            grown &= restrict_to
        if not grown:
            return ()
        extended.append(frozenset(grown))
    return tuple(extended)


def _safe_origin(side: Annotated, column: str) -> tuple[str, str] | None:
    try:
        return side.props.origin_of(column)
    except PlanningError:
        return None


def _walk(annotated: Annotated):
    yield annotated
    for child in annotated.inputs:
        yield from _walk(child)


def certify(
    annotated: Annotated, partitioned: PartitionedDatabase
) -> CertifyResult:
    """Statically certify (or refute) one rewritten plan.

    Returns a :class:`CertifyResult` whose certificate carries the
    per-node derived constraints, or whose refutation names the failed
    check, the plan path, and the reason.
    """
    certifier = _Certifier(partitioned)
    try:
        fact = certifier.derive(annotated)
        certifier.gate_dup(
            "query result",
            annotated.props.governing,
            fact,
            require_free=True,
        )
    except _Refuted as refuted:
        return CertifyResult(
            refutation=Refutation(
                check=refuted.check,
                reason=refuted.reason,
                path=refuted.path,
            )
        )
    return CertifyResult(
        certificate=Certificate(
            lines=[tuple(line) for line in certifier.lines],
            assumptions=certifier.assumptions,
        )
    )
