"""Partition pruning (the paper's "future work" extension).

A filter with equality predicates directly over a base-table scan can skip
partitions that provably contain no matching rows:

* **hash-partitioned tables** — equality on all hash columns pins the single
  partition ``hash(key) % n``;
* **PREF tables with verified effective-hash placement** — same, through the
  derived chain columns;
* **PREF tables filtered on their partitioning-predicate columns** — the
  partition index that bulk loading maintains (paper Section 2.3) maps the
  key to exactly the partitions holding copies, including round-robin
  orphans (the index is built over the table's own rows).

The rewriter attaches a :class:`PruneInfo` to the scan; the executor skips
the excluded partitions entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PlanningError
from repro.partitioning.scheme import (
    HashScheme,
    PrefScheme,
    SchemeKind,
    stable_hash,
)
from repro.query.expressions import (
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
)
from repro.storage.partitioned import PartitionedTable


@dataclass(frozen=True)
class PruneInfo:
    """How the executor restricts a scan to a subset of partitions.

    Attributes:
        kind: ``hash`` (compute the partition from the key),
            ``effective_hash`` (same, via derived chain columns), or
            ``partition_index`` (look the key up in the partition index).
        columns: Unqualified column names forming the pruning key, in the
            order the partitioning scheme expects.
        values: The literal key values, aligned with ``columns``.
    """

    kind: str
    columns: tuple[str, ...]
    values: tuple

    def partitions(self, table: PartitionedTable) -> frozenset[int]:
        """Partitions that may contain matching rows."""
        key = self.values[0] if len(self.values) == 1 else self.values
        if self.kind == "hash":
            scheme = table.scheme
            assert isinstance(scheme, HashScheme)
            return frozenset((scheme.partition_of(key),))
        if self.kind == "effective_hash":
            return frozenset(
                (stable_hash(key) % table.partition_count,)
            )
        if self.kind == "partition_index":
            return table.partition_index(self.columns).partitions_of(key)
        raise PlanningError(f"unknown prune kind {self.kind!r}")


def equality_bindings(condition: Expression) -> dict[str, object]:
    """Extract ``column == literal`` conjuncts from a filter condition."""
    bindings: dict[str, object] = {}

    def walk(expression: Expression) -> None:
        if isinstance(expression, BooleanOp) and expression.op == "and":
            for operand in expression.operands:
                walk(operand)
            return
        if isinstance(expression, Comparison) and expression.op == "=":
            left, right = expression.left, expression.right
            # ``col = NULL`` is never true under three-valued logic, so a
            # NULL literal pins nothing (and must not shadow a real
            # binding on the same column).
            if (
                isinstance(left, ColumnRef)
                and isinstance(right, Literal)
                and right.value is not None
            ):
                bindings[left.name] = right.value
            elif (
                isinstance(right, ColumnRef)
                and isinstance(left, Literal)
                and left.value is not None
            ):
                bindings[right.name] = left.value

    walk(condition)
    return bindings


def derive_prune_info(
    table: PartitionedTable,
    alias: str,
    condition: Expression,
) -> PruneInfo | None:
    """Pruning opportunity for *condition* applied directly to a scan.

    Returns None when the condition does not pin all columns of any usable
    placement key.
    """
    bindings = equality_bindings(condition)
    if not bindings:
        return None

    def lookup(column: str) -> object | None:
        for qualifier in (f"{alias}.{column}", column):
            if qualifier in bindings:
                return bindings[qualifier]
        return None

    def bound(columns: Sequence[str]) -> tuple | None:
        values = tuple(lookup(column) for column in columns)
        if any(value is None for value in values):
            return None
        return values

    scheme = table.scheme
    if isinstance(scheme, HashScheme):
        values = bound(scheme.columns)
        if values is not None:
            return PruneInfo("hash", tuple(scheme.columns), values)
        return None
    if scheme.kind is SchemeKind.PREF:
        assert isinstance(scheme, PrefScheme)
        if table.patch_count:
            # Patched tables need every partition's residual deliveries to
            # happen; pruning to the stored-copy partitions would skip the
            # patch-list copies joins in overflow partitions rely on.
            return None
        if table.effective_hash is not None:
            values = bound(table.effective_hash)
            if values is not None:
                return PruneInfo(
                    "effective_hash", tuple(table.effective_hash), values
                )
        referencing = scheme.referencing_columns(table.name)
        values = bound(referencing)
        if values is not None:
            return PruneInfo("partition_index", tuple(referencing), values)
    return None
