"""Execution statistics and the simulated-time cost model.

The paper evaluates on a 10-node EC2 cluster; we run everything in one
process, so query "runtime" is derived from first-principles accounting the
executor performs while it physically moves rows between per-node partition
stores:

* per-node CPU work — weighted row operations (scan, probe, build, emit);
  replicated tables make every node scan the full table, which is exactly
  the penalty the paper observes for classical partitioning on TPC-H Q9;
* network volume — bytes shipped by re-partition, broadcast and gather
  operators (PREF's whole point is driving this to zero for joins);
* shuffle round-trips — fixed latency per exchange operator.

Simulated seconds = max-per-node CPU + network/bandwidth + latency.  The
absolute constants are calibrated to commodity hardware but only the shape
of comparisons matters for reproducing the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostParameters:
    """Constants of the simulated cluster (default: commodity nodes).

    Attributes:
        cpu_tuple_seconds: Seconds per weighted row operation on one node.
        network_bandwidth_bytes: Aggregate shuffle bandwidth in bytes/s.
        shuffle_latency_seconds: Fixed coordination latency per exchange.
        coordinator_overhead_seconds: Fixed per-query overhead.
        row_scale: Extrapolation factor: each simulated row stands for
            ``row_scale`` rows of the modelled deployment.  Benchmarks run
            on a scaled-down database (e.g. TPC-H SF 0.005 instead of the
            paper's SF 10) and set ``row_scale`` to the ratio, so CPU and
            network terms report deployment-scale seconds while the fixed
            latencies stay absolute.
    """

    cpu_tuple_seconds: float = 4e-7
    network_bandwidth_bytes: float = 30e6
    shuffle_latency_seconds: float = 0.05
    coordinator_overhead_seconds: float = 0.1
    row_scale: float = 1.0
    #: Rows (deployment scale) whose join-build hash table fits in one
    #: node's memory.  Builds beyond this pay grace-hash-join style extra
    #: passes over build and probe — the penalty that makes joins against
    #: large replicated tables (classical partitioning) so expensive on
    #: the paper's 3.75 GB nodes.
    memory_rows_per_node: float = 2.5e6
    #: Cost multiplier for each extra spill pass (spilled partitions are
    #: written and re-read from disk, which is slower than in-memory row
    #: processing).
    spill_pass_factor: float = 2.0


@dataclass
class ExecutionStats:
    """Accumulated execution costs of one distributed query."""

    node_count: int
    node_work: list[float] = field(default_factory=list)
    network_bytes: int = 0
    rows_shipped: int = 0
    shuffle_count: int = 0
    rows_processed: int = 0
    #: Base-table partitions actually materialised by scans (partition
    #: pruning reduces this).
    partitions_scanned: int = 0
    #: Rows discarded as PREF-induced duplicates (dedup operators and
    #: governing-column skips during repartitioning).
    rows_dup_eliminated: int = 0
    #: (node, build rows, probe rows) per executed hash join, for the
    #: memory-spill model.
    join_events: list[tuple[int, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.node_work:
            self.node_work = [0.0] * self.node_count

    def add_join_event(self, node: int, build_rows: int, probe_rows: int) -> None:
        """Record a hash join build/probe for the spill model."""
        self.join_events.append((node, build_rows, probe_rows))

    def add_work(self, node: int, rows: float) -> None:
        """Account *rows* weighted row operations on *node*."""
        self.node_work[node] += rows
        self.rows_processed += int(rows)

    def add_network(self, byte_count: int, rows: int) -> None:
        """Account a data transfer."""
        self.network_bytes += byte_count
        self.rows_shipped += rows

    def add_shuffle(self) -> None:
        """Account one exchange operator round-trip."""
        self.shuffle_count += 1

    @property
    def max_node_work(self) -> float:
        """Weighted row operations on the busiest node (the straggler)."""
        return max(self.node_work) if self.node_work else 0.0

    def canonical(self) -> tuple:
        """Every observable of the cost model, as a comparable tuple.

        Two runs of a query are cost-model-equivalent iff their canonical
        tuples are equal; the backend-equivalence suite and the benchmark
        divergence checks compare backends through this.  Join events are
        sorted because their recording order is a scheduling artefact.
        """
        return (
            self.network_bytes,
            self.rows_shipped,
            self.shuffle_count,
            tuple(self.node_work),
            self.rows_processed,
            self.partitions_scanned,
            self.rows_dup_eliminated,
            tuple(sorted(self.join_events)),
        )

    def simulated_seconds(self, params: CostParameters | None = None) -> float:
        """Simulated wall-clock runtime under *params*."""
        params = params or CostParameters()
        work = list(self.node_work)
        for node, build_rows, probe_rows in self.join_events:
            scaled_build = build_rows * params.row_scale
            passes = int(scaled_build // params.memory_rows_per_node)
            if scaled_build > 0 and scaled_build % params.memory_rows_per_node == 0:
                passes -= 1
            if passes > 0:
                work[node] += (
                    passes * (build_rows + probe_rows) * params.spill_pass_factor
                )
        max_work = max(work) if work else 0.0
        bandwidth = params.network_bandwidth_bytes * self.node_count
        return (
            max_work * params.row_scale * params.cpu_tuple_seconds
            + self.network_bytes * params.row_scale / bandwidth
            + self.shuffle_count * params.shuffle_latency_seconds
            + params.coordinator_overhead_seconds
        )

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another query's stats (for workload totals)."""
        for node in range(self.node_count):
            self.node_work[node] += other.node_work[node]
        self.network_bytes += other.network_bytes
        self.rows_shipped += other.rows_shipped
        self.shuffle_count += other.shuffle_count
        self.rows_processed += other.rows_processed
        self.partitions_scanned += other.partitions_scanned
        self.rows_dup_eliminated += other.rows_dup_eliminated
        self.join_events.extend(other.join_events)
