"""Predicate transfer: Bloom filters pushed across the join graph.

Implements the pre-filtering idea of "Predicate Transfer: Efficient
Pre-Filtering on Multi-Join Queries" (Yang et al.) on top of the PREF
rewriter's annotated plans.  After the locality rewrite, the scheduler:

1. collects every base-table scan (with its scan-adjacent filter chain)
   and every equi-join edge whose key columns trace back, origin-intact,
   to those scans;
2. simulates the transfer on the coordinator — masks start from the
   scan-adjacent predicates, then a forward pass (small relations first)
   and a backward pass push Bloom filters built from each side's
   surviving keys across every eligible edge;
3. wraps each scan whose simulation pruned at least one row in a
   :class:`~repro.query.plan.BloomProbe` node carrying the built filters,
   so the physical operators drop partner-less rows *before* any
   shuffle or join probe touches them.

Soundness rests on three facts: filters are built from a superset of the
keys that side can present at runtime (base values after scan-adjacent
filters only), Bloom filters have no false negatives, and pruning is a
pure function of the join-key value (all copies of a base tuple carry the
same key, so PREF duplicate bits and ``hasS`` bits stay consistent).
Eligibility is per join kind: both sides of INNER and SEMI joins may be
pruned, but only the non-preserved (right) side of LEFT_OUTER and ANTI
joins — pruning the preserved side would drop rows the join keeps.  NULL
keys are never inserted and probe as False, which is exactly SQL 3VL:
a NULL join key matches nothing, so the row cannot survive the join.

When co-partitioning already localises a join (locality cases 1-3), the
filters no longer save network on that edge, but still shrink every
operator above the scan; transfers stay enabled there and the knob
(``predicate_transfer=...``) defaults to off globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.statistics import build_histogram
from repro.engine.bloom import BloomFilter
from repro.engine.rows import ColumnBatch
from repro.query.plan import BloomProbe, Filter, Join, JoinKind, OrderBy, Scan
from repro.query.relation import Method
from repro.query.rewrite import Annotated
from repro.storage.partitioned import PartitionedDatabase

#: Join kinds whose *right* input may be pruned (rows there are kept only
#: when a partner exists, or serve purely as a match-existence set).
_PRUNE_RIGHT = frozenset(
    (JoinKind.INNER, JoinKind.SEMI, JoinKind.LEFT_OUTER, JoinKind.ANTI)
)
#: Join kinds whose *left* input may be pruned (left rows without a
#: partner never reach the output).
_PRUNE_LEFT = frozenset((JoinKind.INNER, JoinKind.SEMI))


@dataclass(frozen=True)
class TransferFilter:
    """One Bloom filter attached to a scan by the transfer scheduler.

    Attributes:
        positions: Key column positions in the probed scan's output batch.
        columns: The probed column names (for EXPLAIN).
        source: Alias of the scan whose keys built the filter.
        bloom: The filter itself (ships to pool workers with the operator).
        built_keys: Distinct non-NULL keys inserted at build time.
    """

    positions: tuple[int, ...]
    columns: tuple[str, ...]
    source: str
    bloom: BloomFilter
    built_keys: int


@dataclass
class _Site:
    """One base-table scan with its scan-adjacent filter chain."""

    scan: Annotated
    anchor: Annotated
    alias: str
    table: str
    conditions: list = field(default_factory=list)
    columns: list[list] | None = None
    alive: list[int] | None = None
    filters: list[TransferFilter] = field(default_factory=list)


@dataclass(frozen=True)
class _Edge:
    """A directed transfer edge: prune *target* with keys from *source*."""

    source_alias: str
    target_alias: str
    source_positions: tuple[int, ...]
    target_positions: tuple[int, ...]
    target_columns: tuple[str, ...]


def apply_predicate_transfer(
    annotated: Annotated,
    partitioned: PartitionedDatabase,
    fpr: float = 0.01,
) -> Annotated:
    """Insert :class:`BloomProbe` nodes into an annotated physical plan.

    Mutates the annotated tree in place (it is built fresh per query) and
    returns its root.  A no-op when the plan has no eligible join edges
    or when no filter would prune anything.
    """
    parents: dict[int, Annotated] = {}
    for node, parent in _walk(annotated):
        if parent is not None:
            parents[id(node)] = parent
    sites = _collect_sites(annotated, parents)
    edges = _collect_edges(annotated, sites)
    if not edges:
        return annotated
    touched = {e.source_alias for e in edges} | {e.target_alias for e in edges}
    for alias in touched:
        _materialize(sites[alias], partitioned)
    rank = {
        alias: position
        for position, alias in enumerate(
            sorted(touched, key=lambda a: (len(sites[a].alive), a))
        )
    }
    forward = sorted(
        (e for e in edges if rank[e.source_alias] < rank[e.target_alias]),
        key=lambda e: (rank[e.target_alias], rank[e.source_alias], e.target_columns),
    )
    backward = sorted(
        (e for e in edges if rank[e.source_alias] > rank[e.target_alias]),
        key=lambda e: (-rank[e.target_alias], -rank[e.source_alias], e.target_columns),
    )
    for edge in forward + backward:
        _transfer(sites[edge.source_alias], sites[edge.target_alias], edge, fpr)
    for site in sites.values():
        if site.filters:
            _attach(site, parents, annotated)
    return annotated


# -- graph collection --------------------------------------------------------


def _walk(annotated: Annotated, parent: Annotated | None = None):
    yield annotated, parent
    for child in annotated.inputs:
        yield from _walk(child, annotated)


def _collect_sites(
    annotated: Annotated, parents: dict[int, Annotated]
) -> dict[str, _Site]:
    """Every base-table scan, keyed by alias, with its filter chain."""
    sites: dict[str, _Site] = {}
    for node, _parent in _walk(annotated):
        if not isinstance(node.node, Scan):
            continue
        site = _Site(
            scan=node,
            anchor=node,
            alias=node.node.name,
            table=node.node.table,
        )
        current = node
        while True:
            parent = parents.get(id(current))
            if (
                parent is None
                or not isinstance(parent.node, Filter)
                or len(parent.inputs) != 1
            ):
                break
            site.conditions.append(parent.node.condition)
            site.anchor = parent
            current = parent
        sites[site.alias] = site
    return sites


def _reachable(annotated: Annotated) -> set[str]:
    """Scan aliases below *annotated* along prune-safe operator paths.

    Every operator in the tree passes key values through per row (or per
    group keyed by them), except OrderBy: a nested ORDER BY ... LIMIT
    could keep different rows once inputs shrink, so descent stops there.
    """
    if isinstance(annotated.node, OrderBy):
        return set()
    if isinstance(annotated.node, Scan):
        return {annotated.node.name}
    found: set[str] = set()
    for child in annotated.inputs:
        found |= _reachable(child)
    return found


def _collect_edges(
    annotated: Annotated, sites: dict[str, _Site]
) -> list[_Edge]:
    edges: set[_Edge] = set()
    for node, _parent in _walk(annotated):
        if not isinstance(node.node, Join) or len(node.inputs) != 2:
            continue
        join = node.node
        if not join.on:
            continue
        left, right = node.inputs
        left_aliases = _reachable(left)
        right_aliases = _reachable(right)
        resolved = []
        for lcol, rcol in join.on:
            lhit = _resolve(left, lcol, left_aliases, sites)
            rhit = _resolve(right, rcol, right_aliases, sites)
            if lhit is None or rhit is None:
                continue
            resolved.append((lhit, rhit))
        # Group key pairs by the scan pair they connect; each group is one
        # (composite-key) edge in each eligible direction.
        grouped: dict[tuple[str, str], list] = {}
        for (lalias, lpos, lname), (ralias, rpos, rname) in resolved:
            grouped.setdefault((lalias, ralias), []).append(
                (lpos, lname, rpos, rname)
            )
        for (lalias, ralias), pairs in grouped.items():
            pairs.sort()
            lpositions = tuple(p[0] for p in pairs)
            lcolumns = tuple(p[1] for p in pairs)
            rpositions = tuple(p[2] for p in pairs)
            rcolumns = tuple(p[3] for p in pairs)
            if join.kind in _PRUNE_RIGHT and _prunable(sites[ralias]):
                edges.add(
                    _Edge(lalias, ralias, lpositions, rpositions, rcolumns)
                )
            if join.kind in _PRUNE_LEFT and _prunable(sites[lalias]):
                edges.add(
                    _Edge(ralias, lalias, rpositions, lpositions, lcolumns)
                )
    return sorted(
        edges, key=lambda e: (e.target_alias, e.source_alias, e.target_columns)
    )


def _prunable(site: _Site) -> bool:
    """Replicated scans are never probe targets: no shuffle to save."""
    return site.scan.props.part.method is not Method.REPLICATED


def _resolve(
    side: Annotated,
    column: str,
    aliases: set[str],
    sites: dict[str, _Site],
) -> tuple[str, int, str] | None:
    """Trace a join-key column back to a scan output: (alias, pos, name).

    The column must still carry its base origin and keep the scan's own
    alias-qualified name, so intermediate projections cannot have swapped
    the value for something else.
    """
    try:
        origin = side.props.origin_of(column)
    except Exception:
        return None
    if origin is None or "." not in column:
        return None
    alias, base = column.split(".", 1)
    if alias not in aliases:
        return None
    site = sites.get(alias)
    if site is None or origin != (site.table, base):
        return None
    try:
        position = site.scan.props.columns.index(column)
    except ValueError:
        return None
    return alias, position, column


# -- the transfer simulation -------------------------------------------------


def _materialize(site: _Site, partitioned: PartitionedDatabase) -> None:
    """Load the scan's base columns and apply its adjacent predicates."""
    if site.columns is not None:
        return
    table = partitioned.table(site.table)
    replicated = site.scan.props.part.method is Method.REPLICATED
    partitions = (
        table.partitions[:1] if replicated else table.partitions
    )
    width = len(site.scan.props.columns)
    pieces = []
    for partition in partitions:
        if not partition.row_count:
            continue
        columns = [list(column) for column in partition.columnar()]
        if site.scan.props.part.method is Method.PREF:
            dup, has = partition.bitmap_lists()
            columns.append(list(dup))
            columns.append(list(has))
        pieces.append(ColumnBatch(columns, partition.row_count))
    batch = ColumnBatch.concat(pieces, width)
    site.columns = batch.columns if batch.columns else [[] for _ in range(width)]
    alive = list(range(batch.length))
    for condition in site.conditions:
        if not alive:
            break
        predicate = condition.bind_batch(site.scan.props.columns)
        mask = predicate(batch)
        alive = [index for index in alive if mask[index]]
    site.alive = alive


def _keys_at(columns: list[list], positions: tuple[int, ...], alive: list[int]):
    if len(positions) == 1:
        column = columns[positions[0]]
        return [column[index] for index in alive]
    selected = [columns[p] for p in positions]
    return [tuple(column[index] for column in selected) for index in alive]


def _transfer(source: _Site, target: _Site, edge: _Edge, fpr: float) -> None:
    if not target.alive:
        return
    source_keys = set(
        _keys_at(source.columns, edge.source_positions, source.alive)
    )
    source_keys.discard(None)
    # Sized from the catalog's frequency statistics over the surviving
    # source keys; an empty source still builds a (tiny) filter that
    # prunes every probe — no partner can exist.
    histogram = build_histogram(list(source_keys))
    bloom = BloomFilter.sized(max(1, histogram.distinct_count), fpr)
    built = bloom.add_many(source_keys)
    target_keys = _keys_at(target.columns, edge.target_positions, target.alive)
    hits = bloom.probe_many(target_keys)
    survivors = [
        index for index, hit in zip(target.alive, hits) if hit
    ]
    pruned = len(target.alive) - len(survivors)
    if pruned <= 0:
        return
    target.alive = survivors
    target.filters.append(
        TransferFilter(
            positions=edge.target_positions,
            columns=edge.target_columns,
            source=source.alias,
            bloom=bloom,
            built_keys=built,
        )
    )


# -- plan surgery ------------------------------------------------------------


def _attach(
    site: _Site, parents: dict[int, Annotated], root: Annotated
) -> None:
    """Wrap the site's anchor in a BloomProbe carrying its filters."""
    columns = tuple(
        dict.fromkeys(c for f in site.filters for c in f.columns)
    )
    sources = tuple(dict.fromkeys(f.source for f in site.filters))
    anchor = site.anchor
    probe = Annotated(
        BloomProbe(anchor.node, columns, sources),
        anchor.props,
        (anchor,),
        pristine=frozenset(),
        extra={"strategy": "bloom_probe", "bloom": tuple(site.filters)},
    )
    parent = parents.get(id(anchor))
    if parent is None:
        # A scan at the root joins nothing; edges require a Join above.
        return
    parent.inputs = tuple(
        probe if child is anchor else child for child in parent.inputs
    )
