"""Logical SPJA plan nodes (Selection, Projection, Join, Aggregation).

Plans are trees of immutable nodes.  The rewrite engine
(:mod:`repro.query.rewrite`) turns a logical plan into a physical plan by
inserting re-partitioning and PREF-duplicate-elimination operators per
paper Section 2.2; those physical operators live here too so both plan
flavours share one representation.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.errors import PlanningError
from repro.query.expressions import Expression


class JoinKind(enum.Enum):
    """Join flavours supported by the engine."""

    INNER = "inner"
    LEFT_OUTER = "left_outer"
    SEMI = "semi"
    ANTI = "anti"
    CROSS = "cross"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate function application.

    Attributes:
        func: One of ``sum``, ``count``, ``avg``, ``min``, ``max``,
            ``count_distinct``.  ``count`` with ``expr=None`` is COUNT(*).
        expr: Input expression (None only for COUNT(*)).
        name: Output column name.
    """

    func: str
    expr: Expression | None
    name: str

    _FUNCS = frozenset({"sum", "count", "avg", "min", "max", "count_distinct"})

    def __post_init__(self) -> None:
        if self.func not in self._FUNCS:
            raise PlanningError(f"unknown aggregate function {self.func!r}")
        if self.expr is None and self.func != "count":
            raise PlanningError(f"{self.func} requires an input expression")


class PlanNode:
    """Base class for plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        """Child nodes, left to right."""
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def explain(self, indent: int = 0) -> str:
        """A readable multi-line rendering of the plan tree."""
        line = "  " * indent + self._label()
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(PlanNode):
    """Read a base table, optionally under an alias.

    Columns are exposed qualified as ``<alias>.<column>`` (alias defaults to
    the table name).
    """

    table: str
    alias: str | None = None

    @property
    def name(self) -> str:
        """The alias under which columns are qualified."""
        return self.alias or self.table

    def _label(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        return f"Scan({self.table}{alias})"


@dataclass(frozen=True)
class Filter(PlanNode):
    """Select rows satisfying a boolean expression."""

    child: PlanNode
    condition: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Filter({self.condition!r})"


@dataclass(frozen=True)
class Project(PlanNode):
    """Compute output columns; optionally SQL-DISTINCT over them.

    Attributes:
        outputs: ``(name, expression)`` pairs defining the output columns.
        distinct: If True, applies SQL DISTINCT over the output values
            (value-based, distinct from PREF duplicate elimination).
    """

    child: PlanNode
    outputs: tuple[tuple[str, Expression], ...]
    distinct: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        names = ", ".join(name for name, _expr in self.outputs)
        prefix = "ProjectDistinct" if self.distinct else "Project"
        return f"{prefix}({names})"


@dataclass(frozen=True)
class Join(PlanNode):
    """Join two inputs.

    Equi-joins list aligned key column pairs in ``on``; a cross join has an
    empty ``on``.  ``residual`` is an extra non-equi condition applied to
    matched pairs (making the join a theta join when ``on`` is empty).
    """

    left: PlanNode
    right: PlanNode
    on: tuple[tuple[str, str], ...] = ()
    kind: JoinKind = JoinKind.INNER
    residual: Expression | None = None

    def __post_init__(self) -> None:
        if self.kind is JoinKind.CROSS and self.on:
            raise PlanningError("cross join must not have equi-join keys")
        if self.kind is not JoinKind.CROSS and not self.on and self.residual is None:
            raise PlanningError(
                "non-cross join needs equi-join keys or a residual condition"
            )

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @property
    def left_keys(self) -> tuple[str, ...]:
        """Join key columns on the left input."""
        return tuple(left for left, _right in self.on)

    @property
    def right_keys(self) -> tuple[str, ...]:
        """Join key columns on the right input."""
        return tuple(right for _left, right in self.on)

    def _label(self) -> str:
        keys = ", ".join(f"{l}={r}" for l, r in self.on)
        return f"Join[{self.kind.value}]({keys})"


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Group-by aggregation (scalar aggregation when ``group_by`` is empty)."""

    child: PlanNode
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def __post_init__(self) -> None:
        if not self.aggregates and not self.group_by:
            raise PlanningError("aggregate needs group keys or functions")
        names = [spec.name for spec in self.aggregates] + list(self.group_by)
        if len(names) != len(set(names)):
            raise PlanningError("duplicate output names in aggregate")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        aggs = ", ".join(f"{s.func}->{s.name}" for s in self.aggregates)
        return f"Aggregate(by=[{', '.join(self.group_by)}]; {aggs})"


@dataclass(frozen=True)
class OrderBy(PlanNode):
    """Order (and optionally limit) the final result on the coordinator."""

    child: PlanNode
    keys: tuple[tuple[str, bool], ...]  # (column, ascending)
    limit: int | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        keys = ", ".join(f"{c} {'ASC' if a else 'DESC'}" for c, a in self.keys)
        limit = f" LIMIT {self.limit}" if self.limit is not None else ""
        return f"OrderBy({keys}){limit}"


# --- physical-only operators (inserted by the rewriter) -----------------------


@dataclass(frozen=True)
class Repartition(PlanNode):
    """Shuffle rows by hash of *keys* into *count* partitions.

    Eliminates PREF duplicates before shipping when ``dedup`` is set
    (paper: "the re-partitioning operator also eliminates duplicates").
    """

    child: PlanNode
    keys: tuple[str, ...]
    count: int
    dedup: bool

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        dedup = ", dedup" if self.dedup else ""
        return f"Repartition(by=[{', '.join(self.keys)}], n={self.count}{dedup})"


@dataclass(frozen=True)
class Broadcast(PlanNode):
    """Replicate the child's full (deduplicated) output to every node."""

    child: PlanNode
    count: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Broadcast(n={self.count})"


@dataclass(frozen=True)
class DedupFilter(PlanNode):
    """Locally drop PREF duplicates (rows whose governing dup bits != 0)."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class PartnerFilter(PlanNode):
    """Filter a PREF scan by its ``hasS`` bitmap (semi-/anti-join rewrite).

    ``expect=True`` keeps partnered tuples (semi join), ``expect=False``
    keeps partner-less tuples (anti join).
    """

    child: PlanNode
    table: str
    expect: bool

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"PartnerFilter({self.table}, hasS={int(self.expect)})"


@dataclass(frozen=True)
class BloomProbe(PlanNode):
    """Prune rows whose join keys cannot find a partner (predicate transfer).

    Inserted over a scan (or its adjacent filters) by the predicate-transfer
    scheduler; the actual Bloom filters travel in the annotation's
    ``extra["bloom"]``, keeping the plan node itself immutable and hashable.
    ``columns`` names the probed key columns and ``sources`` the scan
    aliases whose keys built each filter (for EXPLAIN output).
    """

    child: PlanNode
    columns: tuple[str, ...]
    sources: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return (
            f"BloomProbe([{', '.join(self.columns)}] "
            f"<- {', '.join(self.sources)})"
        )


_COUNTER = itertools.count()


def fresh_name(prefix: str) -> str:
    """Generate a unique column/operator name (for rewriter internals)."""
    return f"{prefix}#{next(_COUNTER)}"


def referenced_tables(plan: PlanNode) -> frozenset[str]:
    """Base-table names a plan reads, from its :class:`Scan` leaves.

    The serving layer keys cache-invalidation dependencies on this set:
    a cached plan or result is stale once any of these tables' epochs
    move.  :class:`BloomProbe` sources are already covered — a probe's
    filter is built from tables that appear as scans elsewhere in the
    same plan."""
    return frozenset(
        node.table for node in plan.walk() if isinstance(node, Scan)
    )
