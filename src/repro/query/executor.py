"""The distributed executor: a thin facade over the execution engine.

``Executor`` keeps the API the rest of the library (clusters, benchmark
harness, tests) has always used, but execution itself now flows through a
three-stage pipeline:

1. the :class:`~repro.query.rewrite.Rewriter` produces the annotated
   logical plan (Part/Dup properties, inserted exchanges);
2. the physical compiler (:mod:`repro.engine.compile`) lowers it into a
   tree of self-contained physical operators;
3. a pluggable backend (:mod:`repro.engine.backends`) schedules the
   per-(operator, partition) tasks — serially, or concurrently between
   exchange barriers.

Rows physically move between per-node partition stores; every movement is
metered by :class:`~repro.query.cost.ExecutionStats` (network bytes, rows
shipped, shuffle round-trips) through the engine's
:class:`~repro.engine.context.ExecutionContext`, which additionally keeps
a per-operator × per-node breakdown exposed on :class:`QueryResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.engine.backends import Backend, SerialBackend
from repro.engine.bloom import validate_bloom_params
from repro.engine.context import (
    ExecutionContext,
    OperatorStats,
    TraceEvent,
    format_operator_stats,
)
from repro.engine.rows import (  # noqa: F401  (re-export: local_executor and
    # older callers import shared ordering semantics from here)
    DEFAULT_BATCH_SIZE,
    _null_pad,
    _sort_key,
)
from repro.query.cost import CostParameters, ExecutionStats
from repro.query.plan import PlanNode
from repro.query.relation import is_hidden
from repro.query.rewrite import Annotated, Rewriter
from repro.storage.partitioned import PartitionedDatabase

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.span import QueryTrace

Row = tuple


@dataclass
class QueryResult:
    """Result of a distributed query: rows, schema, and cost accounting.

    Attributes:
        columns: Visible output column names.
        rows: Result rows, gathered on the coordinator.
        stats: Global execution statistics (the cost model's input).
        plan: The annotated physical plan that was executed.
        operators: Per-operator × per-node breakdown of the same
            accounting, in plan post-order.
        cost: The cost parameters of the cluster that ran the query;
            :meth:`simulated_seconds` defaults to them.
        trace: The :class:`~repro.obs.span.QueryTrace` span tree, when
            the query ran with ``analyze=True`` (else None).
    """

    columns: tuple[str, ...]
    rows: list[Row]
    stats: ExecutionStats
    plan: Annotated | None
    operators: list[OperatorStats] = field(default_factory=list)
    cost: CostParameters | None = None
    trace: "QueryTrace | None" = None

    def simulated_seconds(self, params: CostParameters | None = None) -> float:
        """Simulated runtime under *params* (default: the cluster's own
        cost parameters, falling back to :class:`CostParameters()`)."""
        return self.stats.simulated_seconds(params or self.cost)

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def explain_operators(self) -> str:
        """The per-operator cost breakdown, as an aligned text table."""
        return format_operator_stats(self.operators)

    def explain_analyze(self) -> str:
        """The ``EXPLAIN ANALYZE`` text form of this run's trace.

        Requires the query to have run with ``analyze=True``.
        """
        if self.trace is None:
            raise ValueError(
                "query ran without analyze=True: no trace to render"
            )
        from repro.obs.explain import render_analyze

        return render_analyze(self.trace)


class Executor:
    """Executes logical plans against one partitioned database.

    Args:
        partitioned: The partitioned database to run on.
        optimizations: Enable the paper's hasS-index rewrites.
        locality: Ablation switch — with ``False`` the rewriter ignores
            the co-partitioning cases and shuffles every join.
        backend: Scheduling backend; defaults to a fresh
            :class:`SerialBackend`.  Backends may be shared between
            executors (the cluster facade shares one thread pool).
        cost: Cost parameters stamped onto every :class:`QueryResult` so
            ``result.simulated_seconds()`` uses the cluster's constants.
        trace: Optional per-task trace hook (receives
            :class:`~repro.engine.context.TraceEvent`).
        batch_size: Rows per expression-kernel invocation in the
            pipeline operators (default
            :data:`~repro.engine.rows.DEFAULT_BATCH_SIZE`).  A pure
            granularity knob: results are invariant in it.
        predicate_transfer: Enable Bloom-filter predicate transfer across
            the join graph (pre-filters scans so fewer rows are shuffled
            and probed).  Results are invariant in this knob.
        bloom_fpr: Target false-positive rate for the transferred Bloom
            filters, in (0, 1).
    """

    def __init__(
        self,
        partitioned: PartitionedDatabase,
        optimizations: bool = True,
        locality: bool = True,
        backend: Backend | None = None,
        cost: CostParameters | None = None,
        trace: Callable[[TraceEvent], None] | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        predicate_transfer: bool = False,
        bloom_fpr: float = 0.01,
    ) -> None:
        self.partitioned = partitioned
        self.count = partitioned.partition_count
        self.rewriter = Rewriter(
            partitioned, optimizations=optimizations, locality=locality
        )
        self.backend = backend or SerialBackend()
        self.cost = cost
        self.trace = trace
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        validate_bloom_params(bloom_fpr)
        self.predicate_transfer = bool(predicate_transfer)
        self.bloom_fpr = float(bloom_fpr)

    def annotate(self, plan: PlanNode) -> Annotated:
        """Rewrite *plan* and apply predicate transfer when enabled.

        The returned annotated plan is immutable as far as execution is
        concerned: :func:`~repro.engine.compile.compile_plan` only reads
        it, so one annotated plan may back many (even concurrent)
        executions — the serving layer's plan cache relies on this.  With
        predicate transfer enabled the annotation embeds Bloom filters
        built from the *current* table contents, so a cached annotated
        plan must be dropped when its tables change (epoch invalidation).
        """
        annotated = self.rewriter.rewrite(plan)
        if self.predicate_transfer:
            from repro.query.predicate_transfer import apply_predicate_transfer

            annotated = apply_predicate_transfer(
                annotated, self.partitioned, self.bloom_fpr
            )
        return annotated

    # Backwards-compatible private alias (pre-serving-layer name).
    _annotate = annotate

    def execute(
        self, plan: PlanNode, analyze: bool = False, query_name: str | None = None
    ) -> QueryResult:
        """Rewrite, compile, and run *plan* on the backend.

        With ``analyze=True`` the run is traced and the result carries a
        :class:`~repro.obs.span.QueryTrace` (``result.explain_analyze()``
        renders it); any user trace hook still receives every event.
        """
        return self.execute_annotated(
            self.annotate(plan), analyze=analyze, query_name=query_name
        )

    def execute_annotated(
        self,
        annotated: Annotated,
        analyze: bool = False,
        query_name: str | None = None,
    ) -> QueryResult:
        """Compile and run an already-annotated plan on the backend.

        Split out of :meth:`execute` so the serving layer's plan cache
        can pay the rewrite once and re-execute the cached annotation.
        """
        # Deferred import: the compiler pulls in the whole operator set,
        # whose modules import repro.query submodules; importing it at
        # call time keeps every package-first import order working.
        from repro.engine.compile import compile_plan

        root = compile_plan(
            annotated, self.partitioned, batch_size=self.batch_size
        )
        trace_hook = self.trace
        events: list[TraceEvent] = []
        if analyze:
            if trace_hook is None:
                trace_hook = events.append
            else:
                user_hook = trace_hook

                def trace_hook(event: TraceEvent) -> None:
                    events.append(event)
                    user_hook(event)

        ctx = ExecutionContext(self.count, trace=trace_hook)
        for op in root.walk():
            ctx.register(op)
        self.backend.run(root, ctx)
        stats = ctx.finish()
        trace = None
        if analyze:
            from repro.obs.span import build_trace

            trace = build_trace(
                root,
                ctx.operator_stats(),
                events,
                ctx.metrics,
                self.count,
                backend=self.backend.name,
                query=query_name,
            )
        batch = root.partition_batch(0)
        props = annotated.props
        visible = props.visible_columns
        positions = [
            index
            for index, column in enumerate(props.columns)
            if not is_hidden(column)
        ]
        if len(positions) != len(props.columns):
            batch = batch.select(positions)
        rows = batch.to_rows()
        return QueryResult(
            visible,
            rows,
            stats,
            annotated,
            operators=ctx.operator_stats(),
            cost=self.cost,
            trace=trace,
        )

    def explain(self, plan: PlanNode) -> str:
        """The annotated physical plan for *plan*, as text."""
        return self.annotate(plan).explain()
