"""The distributed executor: runs annotated physical plans on the cluster.

Rows physically move between per-node partition stores; every movement is
metered by :class:`~repro.query.cost.ExecutionStats` (network bytes, rows
shipped, shuffle round-trips) and every operator accounts weighted row work
on the node it runs on.  Simulated query runtime is derived from these
numbers — see :mod:`repro.query.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.partitioning.scheme import stable_hash
from repro.query.aggregates import make_accumulator
from repro.query.cost import CostParameters, ExecutionStats
from repro.query.expressions import Expression
from repro.query.plan import (
    Aggregate,
    DedupFilter,
    Filter,
    Join,
    JoinKind,
    OrderBy,
    PartnerFilter,
    PlanNode,
    Project,
    Repartition,
    Scan,
)
from repro.query.relation import (
    DistributedRelation,
    Method,
    RelProps,
    is_hidden,
)
from repro.query.rewrite import Annotated, Rewriter
from repro.storage.partitioned import PartitionedDatabase

Row = tuple


@dataclass
class QueryResult:
    """Result of a distributed query: rows, schema, and cost accounting."""

    columns: tuple[str, ...]
    rows: list[Row]
    stats: ExecutionStats
    plan: Annotated

    def simulated_seconds(self, params: CostParameters | None = None) -> float:
        """Simulated runtime of the query under the cost model."""
        return self.stats.simulated_seconds(params)

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class Executor:
    """Executes logical plans against one partitioned database."""

    def __init__(
        self,
        partitioned: PartitionedDatabase,
        optimizations: bool = True,
        locality: bool = True,
    ) -> None:
        self.partitioned = partitioned
        self.count = partitioned.partition_count
        self.rewriter = Rewriter(
            partitioned, optimizations=optimizations, locality=locality
        )

    def execute(self, plan: PlanNode) -> QueryResult:
        """Rewrite and run *plan*, returning rows and execution stats."""
        annotated = self.rewriter.rewrite(plan)
        stats = ExecutionStats(self.count)
        relation = self._exec(annotated, stats)
        rows = self._finalise(relation, stats)
        visible = relation.props.visible_columns
        positions = [
            index
            for index, column in enumerate(relation.props.columns)
            if not is_hidden(column)
        ]
        if len(positions) != len(relation.props.columns):
            rows = [tuple(row[p] for p in positions) for row in rows]
        return QueryResult(visible, rows, stats, annotated)

    def explain(self, plan: PlanNode) -> str:
        """The annotated physical plan for *plan*, as text."""
        return self.rewriter.rewrite(plan).explain()

    # -- plan dispatch ---------------------------------------------------------

    def _exec(self, annotated: Annotated, stats: ExecutionStats) -> DistributedRelation:
        node = annotated.node
        if isinstance(node, Scan):
            return self._exec_scan(annotated, stats)
        if isinstance(node, Filter):
            return self._exec_filter(annotated, stats)
        if isinstance(node, Project):
            return self._exec_project(annotated, stats)
        if isinstance(node, DedupFilter):
            return self._exec_dedup(annotated, stats)
        if isinstance(node, PartnerFilter):
            return self._exec_partner_filter(annotated, stats)
        if isinstance(node, Repartition):
            return self._exec_repartition(annotated, stats)
        if isinstance(node, Join):
            return self._exec_join(annotated, stats)
        if isinstance(node, Aggregate):
            return self._exec_aggregate(annotated, stats)
        if isinstance(node, OrderBy):
            return self._exec_order_by(annotated, stats)
        raise ExecutionError(f"cannot execute node {node!r}")

    # -- leaf operators -----------------------------------------------------------

    def _exec_scan(self, annotated: Annotated, stats: ExecutionStats) -> DistributedRelation:
        node: Scan = annotated.node
        table = self.partitioned.table(node.table)
        props = annotated.props
        if props.part.method is Method.REPLICATED:
            rows = list(table.partitions[0].rows)
            # Work is accounted where the replica is consumed (per node).
            return DistributedRelation(props, [rows])
        prune = annotated.extra.get("prune")
        allowed = prune.partitions(table) if prune is not None else None
        partitions: list[list[Row]] = []
        attach_bitmaps = props.part.method is Method.PREF
        for partition in table.partitions:
            if allowed is not None and partition.partition_id not in allowed:
                partitions.append([])
                continue
            stats.partitions_scanned += 1
            if attach_bitmaps:
                rows = [
                    row + (int(partition.dup[i]), int(partition.has_partner[i]))
                    for i, row in enumerate(partition.rows)
                ]
            else:
                rows = list(partition.rows)
            # Scans are not charged here: consumers charge their inputs
            # (and filters directly over a scan charge only their output,
            # modelling index access on the nodes).
            partitions.append(rows)
        return DistributedRelation(props, partitions)

    def _exec_filter(self, annotated: Annotated, stats: ExecutionStats) -> DistributedRelation:
        node: Filter = annotated.node
        child = self._exec(annotated.inputs[0], stats)
        predicate = node.condition.bind(child.props.columns)
        # A filter directly over a base-table scan is served by an index:
        # only the qualifying rows are charged.
        indexed = isinstance(annotated.inputs[0].node, Scan)
        partitions = []
        for index, rows in enumerate(child.partitions):
            kept = [row for row in rows if predicate(row)]
            self._account(stats, child, index, len(kept) if indexed else len(rows))
            partitions.append(kept)
        return DistributedRelation(annotated.props, partitions)

    def _exec_project(self, annotated: Annotated, stats: ExecutionStats) -> DistributedRelation:
        node: Project = annotated.node
        child = self._exec(annotated.inputs[0], stats)
        fns = [expr.bind(child.props.columns) for _name, expr in node.outputs]
        local_distinct = annotated.extra.get("distinct") == "local"
        partitions = []
        for index, rows in enumerate(child.partitions):
            projected = [tuple(fn(row) for fn in fns) for row in rows]
            if local_distinct:
                projected = list(dict.fromkeys(projected))
            self._account(stats, child, index, len(rows))
            partitions.append(projected)
        return DistributedRelation(annotated.props, partitions)

    def _exec_dedup(self, annotated: Annotated, stats: ExecutionStats) -> DistributedRelation:
        child = self._exec(annotated.inputs[0], stats)
        positions = child.props.positions(child.props.governing)
        # Elimination via the dup bitmap index costs only the kept rows
        # when applied directly over a scan.
        indexed = isinstance(annotated.inputs[0].node, Scan)
        partitions = []
        for index, rows in enumerate(child.partitions):
            kept = [
                row
                for row in rows
                if all(not row[p] for p in positions)
            ]
            self._account(stats, child, index, len(kept) if indexed else len(rows))
            partitions.append(kept)
        return DistributedRelation(annotated.props, partitions)

    def _exec_partner_filter(
        self, annotated: Annotated, stats: ExecutionStats
    ) -> DistributedRelation:
        node: PartnerFilter = annotated.node
        child = self._exec(annotated.inputs[0], stats)
        position = child.props.position(f"__has@{node.table}")
        expect = 1 if node.expect else 0
        # The hasS bitmap index serves this filter; only kept rows cost.
        indexed = isinstance(annotated.inputs[0].node, Scan)
        partitions = []
        for index, rows in enumerate(child.partitions):
            kept = [row for row in rows if row[position] == expect]
            self._account(stats, child, index, len(kept) if indexed else len(rows))
            partitions.append(kept)
        return DistributedRelation(annotated.props, partitions)

    # -- exchanges --------------------------------------------------------------------

    def _exec_repartition(
        self, annotated: Annotated, stats: ExecutionStats
    ) -> DistributedRelation:
        node: Repartition = annotated.node
        child = self._exec(annotated.inputs[0], stats)
        key_positions = child.props.positions(node.keys)
        governing = (
            child.props.positions(child.props.governing) if node.dedup else ()
        )
        row_bytes = child.props.row_bytes()
        targets: list[list[Row]] = [[] for _ in range(node.count)]
        stats.add_shuffle()

        def key_of(row: Row):
            if len(key_positions) == 1:
                return row[key_positions[0]]
            return tuple(row[p] for p in key_positions)

        if child.method is Method.REPLICATED:
            # Every node already holds the full content; each just keeps
            # its own hash range — no network traffic.
            rows = child.partitions[0]
            for row in rows:
                if governing and any(row[p] for p in governing):
                    continue
                target = stable_hash(key_of(row)) % node.count
                targets[target].append(row)
            for index in range(node.count):
                stats.add_work(index, len(rows))
        else:
            source_partitions = (
                [(0, child.partitions[0])]
                if child.method is Method.GATHERED
                else list(enumerate(child.partitions))
            )
            for source, rows in source_partitions:
                self._account(stats, child, source, len(rows))
                for row in rows:
                    if governing and any(row[p] for p in governing):
                        continue
                    target = stable_hash(key_of(row)) % node.count
                    targets[target].append(row)
                    if target != source:
                        stats.add_network(row_bytes, 1)
        local_distinct = annotated.extra.get("distinct") == "local"
        if local_distinct:
            targets = [list(dict.fromkeys(rows)) for rows in targets]
        return DistributedRelation(annotated.props, targets)

    # -- joins --------------------------------------------------------------------------

    def _exec_join(self, annotated: Annotated, stats: ExecutionStats) -> DistributedRelation:
        node: Join = annotated.node
        left = self._exec(annotated.inputs[0], stats)
        right = self._exec(annotated.inputs[1], stats)
        strategy = annotated.extra.get("strategy", "local")
        if strategy == "broadcast":
            return self._broadcast_join(annotated, node, left, right, stats)
        case = annotated.extra.get("case")
        if case == "both_replicated":
            rows = self._join_rows(
                node, left.partitions[0], right.partitions[0], left, right
            )
            stats.add_work(0, len(left.partitions[0]) + len(right.partitions[0]))
            stats.add_join_event(
                0, len(right.partitions[0]), len(left.partitions[0])
            )
            return DistributedRelation(annotated.props, [rows])
        partitions = []
        for index in range(self.count):
            left_rows = left.node_rows(index)
            right_rows = right.node_rows(index)
            out = self._join_rows(node, left_rows, right_rows, left, right)
            stats.add_work(index, len(left_rows) + len(right_rows) + len(out))
            stats.add_join_event(index, len(right_rows), len(left_rows))
            partitions.append(out)
        return DistributedRelation(annotated.props, partitions)

    def _broadcast_join(
        self,
        annotated: Annotated,
        node: Join,
        left: DistributedRelation,
        right: DistributedRelation,
        stats: ExecutionStats,
    ) -> DistributedRelation:
        """Ship the smaller input to every node (paper's remote join)."""
        stats.add_shuffle()
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI, JoinKind.LEFT_OUTER):
            # The preserved side must stay partitioned; ship the other one.
            ship_left = False
        else:
            ship_left = left.total_rows() <= right.total_rows()
        shipped, kept = (left, right) if ship_left else (right, left)
        shipped_rows = [
            row for partition in shipped.partitions for row in partition
        ]
        if shipped.method is not Method.REPLICATED:
            bytes_each = shipped.props.row_bytes()
            stats.add_network(
                bytes_each * len(shipped_rows) * max(self.count - 1, 1),
                len(shipped_rows) * max(self.count - 1, 1),
            )
        if kept.is_single_copy:
            # Both inputs are now fully available on every node; computing
            # per partition would emit the result once per node.  Compute
            # once instead.
            kept_rows = kept.partitions[0]
            if ship_left:
                out = self._join_rows(node, shipped_rows, kept_rows, left, right)
            else:
                out = self._join_rows(node, kept_rows, shipped_rows, left, right)
            stats.add_work(0, len(kept_rows) + len(shipped_rows) + len(out))
            stats.add_join_event(
                0,
                len(kept_rows) if ship_left else len(shipped_rows),
                len(shipped_rows) if ship_left else len(kept_rows),
            )
            return DistributedRelation(
                annotated.props, [out] + [[] for _ in range(self.count - 1)]
            )
        partitions = []
        for index in range(self.count):
            kept_rows = kept.node_rows(index)
            if ship_left:
                out = self._join_rows(node, shipped_rows, kept_rows, left, right)
            else:
                out = self._join_rows(node, kept_rows, shipped_rows, left, right)
            stats.add_work(index, len(kept_rows) + len(shipped_rows) + len(out))
            build_rows = len(kept_rows) if ship_left else len(shipped_rows)
            probe_rows = len(shipped_rows) if ship_left else len(kept_rows)
            stats.add_join_event(index, build_rows, probe_rows)
            partitions.append(out)
        return DistributedRelation(annotated.props, partitions)

    def _join_rows(
        self,
        node: Join,
        left_rows: list[Row],
        right_rows: list[Row],
        left: DistributedRelation,
        right: DistributedRelation,
    ) -> list[Row]:
        """Join two row lists on one node (hash join / nested loop)."""
        residual = None
        if node.residual is not None:
            combined = left.props.columns + right.props.columns
            residual = node.residual.bind(combined)
        if not node.on:
            return self._nested_loop(node, left_rows, right_rows, right, residual)
        left_positions = [left.props.position(l) for l, _ in node.on]
        right_positions = [right.props.position(r) for _, r in node.on]

        def left_key(row: Row):
            return tuple(row[p] for p in left_positions)

        def right_key(row: Row):
            return tuple(row[p] for p in right_positions)

        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            keys = {right_key(row) for row in right_rows}
            expect = node.kind is JoinKind.SEMI
            return [row for row in left_rows if (left_key(row) in keys) == expect]

        table: dict[tuple, list[Row]] = {}
        for row in right_rows:
            table.setdefault(right_key(row), []).append(row)
        out: list[Row] = []
        pad = _null_pad(right.props) if node.kind is JoinKind.LEFT_OUTER else None
        for row in left_rows:
            matches = table.get(left_key(row), ())
            emitted = False
            for match in matches:
                combined_row = row + match
                if residual is None or residual(combined_row):
                    out.append(combined_row)
                    emitted = True
            if pad is not None and not emitted:
                out.append(row + pad)
        return out

    def _nested_loop(
        self,
        node: Join,
        left_rows: list[Row],
        right_rows: list[Row],
        right: DistributedRelation,
        residual,
    ) -> list[Row]:
        out: list[Row] = []
        pad = _null_pad(right.props) if node.kind is JoinKind.LEFT_OUTER else None
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            expect = node.kind is JoinKind.SEMI
            result = []
            for row in left_rows:
                matched = any(
                    residual is None or residual(row + other)
                    for other in right_rows
                )
                if matched == expect:
                    result.append(row)
            return result
        for row in left_rows:
            emitted = False
            for other in right_rows:
                combined = row + other
                if residual is None or residual(combined):
                    out.append(combined)
                    emitted = True
            if pad is not None and not emitted:
                out.append(row + pad)
        return out

    # -- aggregation -----------------------------------------------------------------

    def _exec_aggregate(
        self, annotated: Annotated, stats: ExecutionStats
    ) -> DistributedRelation:
        node: Aggregate = annotated.node
        child = self._exec(annotated.inputs[0], stats)
        strategy = annotated.extra["strategy"]
        group_positions = child.props.positions(node.group_by)
        agg_fns = [
            (spec, spec.expr.bind(child.props.columns) if spec.expr else None)
            for spec in node.aggregates
        ]

        def aggregate_rows(rows: list[Row]) -> list[Row]:
            groups: dict[tuple, list] = {}
            for row in rows:
                key = tuple(row[p] for p in group_positions)
                accs = groups.get(key)
                if accs is None:
                    accs = [make_accumulator(spec.func) for spec, _ in agg_fns]
                    groups[key] = accs
                for acc, (spec, fn) in zip(accs, agg_fns):
                    acc.add(fn(row) if fn is not None else 1)
            if not groups and not node.group_by:
                groups[()] = [make_accumulator(spec.func) for spec, _ in agg_fns]
            return [
                key + tuple(acc.result() for acc in accs)
                for key, accs in groups.items()
            ]

        if strategy == "single":
            rows = child.partitions[0]
            stats.add_work(0, len(rows))
            return DistributedRelation(annotated.props, [aggregate_rows(rows)])

        if strategy == "local":
            partitions = []
            for index, rows in enumerate(child.partitions):
                out = aggregate_rows(rows)
                stats.add_work(index, len(rows) + len(out))
                partitions.append(out)
            return DistributedRelation(annotated.props, partitions)

        # Two-phase: local partials, ship compact states, merge at targets.
        stats.add_shuffle()
        scalar = not node.group_by
        merged: list[dict[tuple, list]] = [
            {} for _ in range(1 if scalar else self.count)
        ]
        key_bytes = 8 * max(len(node.group_by), 1)
        for index, rows in enumerate(child.partitions):
            partials: dict[tuple, list] = {}
            self._account(stats, child, index, len(rows))
            for row in rows:
                key = tuple(row[p] for p in group_positions)
                accs = partials.get(key)
                if accs is None:
                    accs = [make_accumulator(spec.func) for spec, _ in agg_fns]
                    partials[key] = accs
                for acc, (spec, fn) in zip(accs, agg_fns):
                    acc.add(fn(row) if fn is not None else 1)
            for key, accs in partials.items():
                target = 0 if scalar else stable_hash(key if len(key) > 1 else key[0]) % self.count
                if target != index:
                    stats.add_network(
                        key_bytes + sum(acc.state_bytes() for acc in accs), 1
                    )
                bucket = merged[0 if scalar else target]
                existing = bucket.get(key)
                if existing is None:
                    bucket[key] = accs
                else:
                    for acc, other in zip(existing, accs):
                        acc.merge_state(other.state())
        result_partitions: list[list[Row]] = []
        for bucket in merged:
            if scalar and not bucket:
                bucket[()] = [make_accumulator(spec.func) for spec, _ in agg_fns]
            rows = [
                key + tuple(acc.result() for acc in accs)
                for key, accs in bucket.items()
            ]
            result_partitions.append(rows)
        if scalar:
            stats.add_work(0, len(result_partitions[0]))
            return DistributedRelation(annotated.props, result_partitions)
        for index, rows in enumerate(result_partitions):
            stats.add_work(index, len(rows))
        return DistributedRelation(annotated.props, result_partitions)

    # -- order by ---------------------------------------------------------------------

    def _exec_order_by(
        self, annotated: Annotated, stats: ExecutionStats
    ) -> DistributedRelation:
        node: OrderBy = annotated.node
        child = self._exec(annotated.inputs[0], stats)
        rows = self._gather(child, stats)
        positions = [
            (child.props.position(column), ascending)
            for column, ascending in node.keys
        ]
        for position, ascending in reversed(positions):
            rows.sort(key=lambda row: _sort_key(row[position]), reverse=not ascending)
        if node.limit is not None:
            rows = rows[: node.limit]
        stats.add_work(0, len(rows))
        return DistributedRelation(annotated.props, [rows])

    # -- finalisation -------------------------------------------------------------------

    def _finalise(
        self, relation: DistributedRelation, stats: ExecutionStats
    ) -> list[Row]:
        """Dedup (if needed) and gather the final result on the coordinator."""
        if relation.props.governing:
            positions = relation.props.positions(relation.props.governing)
            filtered = []
            for index, rows in enumerate(relation.partitions):
                kept = [
                    row for row in rows if all(not row[p] for p in positions)
                ]
                self._account(stats, relation, index, len(rows))
                filtered.append(kept)
            relation = DistributedRelation(relation.props, filtered)
        return self._gather(relation, stats)

    def _gather(
        self, relation: DistributedRelation, stats: ExecutionStats
    ) -> list[Row]:
        if relation.is_single_copy:
            return list(relation.partitions[0])
        row_bytes = relation.props.row_bytes()
        rows: list[Row] = []
        for index, partition in enumerate(relation.partitions):
            rows.extend(partition)
            if index != 0 and partition:
                stats.add_network(row_bytes * len(partition), len(partition))
        return rows

    def _account(
        self,
        stats: ExecutionStats,
        relation: DistributedRelation,
        index: int,
        rows: int,
    ) -> None:
        """Account work for processing *rows* of partition *index*.

        Replicated relations are processed by every node (each filters or
        projects its own full copy before feeding partition-local work), so
        the cost lands on all nodes; gathered relations live on the
        coordinator only.
        """
        if relation.method is Method.REPLICATED:
            for node in range(self.count):
                stats.add_work(node, rows)
        elif relation.method is Method.GATHERED:
            stats.add_work(0, rows)
        else:
            stats.add_work(index, rows)


def _sort_key(value: object) -> tuple:
    """Total ordering across None and mixed values (NULLs sort first)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def _null_pad(props: RelProps) -> Row:
    """Null padding for outer joins; hidden dup bits pad to 0, not NULL,
    so padded rows survive PREF duplicate elimination exactly once."""
    return tuple(
        0 if is_hidden(column) else None for column in props.columns
    )
