"""Reference single-node executor over the unpartitioned database.

Runs the *logical* plan directly — no partitioning, no rewrites — and is
used by the test suite to cross-check every distributed result.  Any
disagreement between this executor and :class:`repro.query.executor.Executor`
is a correctness bug in partitioning or the rewrite rules.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.query.aggregates import make_accumulator
from repro.query.executor import _sort_key  # shared ordering semantics
from repro.query.plan import (
    Aggregate,
    Filter,
    Join,
    JoinKind,
    OrderBy,
    PlanNode,
    Project,
    Scan,
)
from repro.storage.table import Database

Row = tuple


class LocalResult:
    """Rows plus column names from the reference executor."""

    def __init__(self, columns: tuple[str, ...], rows: list[Row]) -> None:
        self.columns = columns
        self.rows = rows


class LocalExecutor:
    """Evaluates logical plans against an unpartitioned database."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def execute(self, plan: PlanNode) -> LocalResult:
        """Run *plan* and return its rows."""
        columns, rows = self._exec(plan)
        return LocalResult(columns, rows)

    def _exec(self, node: PlanNode) -> tuple[tuple[str, ...], list[Row]]:
        if isinstance(node, Scan):
            table = self.database.table(node.table)
            columns = tuple(
                f"{node.name}.{c.name}" for c in table.schema.columns
            )
            return columns, list(table.rows)
        if isinstance(node, Filter):
            columns, rows = self._exec(node.child)
            predicate = node.condition.bind(columns)
            return columns, [row for row in rows if predicate(row)]
        if isinstance(node, Project):
            columns, rows = self._exec(node.child)
            fns = [expr.bind(columns) for _name, expr in node.outputs]
            projected = [tuple(fn(row) for fn in fns) for row in rows]
            if node.distinct:
                projected = list(dict.fromkeys(projected))
            return tuple(name for name, _ in node.outputs), projected
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, Aggregate):
            return self._aggregate(node)
        if isinstance(node, OrderBy):
            columns, rows = self._exec(node.child)
            for column, ascending in reversed(node.keys):
                position = _position(columns, column)
                rows.sort(
                    key=lambda row: _sort_key(row[position]),
                    reverse=not ascending,
                )
            if node.limit is not None:
                rows = rows[: node.limit]
            return columns, rows
        raise ExecutionError(f"cannot execute node {node!r}")

    def _join(self, node: Join) -> tuple[tuple[str, ...], list[Row]]:
        left_columns, left_rows = self._exec(node.left)
        right_columns, right_rows = self._exec(node.right)
        combined_columns = left_columns + right_columns
        residual = (
            node.residual.bind(combined_columns)
            if node.residual is not None
            else None
        )
        if not node.on:
            out = []
            if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
                expect = node.kind is JoinKind.SEMI
                return left_columns, [
                    row
                    for row in left_rows
                    if any(
                        residual is None or residual(row + other)
                        for other in right_rows
                    )
                    == expect
                ]
            for row in left_rows:
                emitted = False
                for other in right_rows:
                    pair = row + other
                    if residual is None or residual(pair):
                        out.append(pair)
                        emitted = True
                if node.kind is JoinKind.LEFT_OUTER and not emitted:
                    out.append(row + (None,) * len(right_columns))
            return combined_columns, out
        left_positions = [_position(left_columns, l) for l, _ in node.on]
        right_positions = [_position(right_columns, r) for _, r in node.on]

        def lkey(row: Row) -> tuple:
            return tuple(row[p] for p in left_positions)

        def rkey(row: Row) -> tuple:
            return tuple(row[p] for p in right_positions)

        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            expect = node.kind is JoinKind.SEMI
            if residual is None:
                keys = {
                    key for row in right_rows if _null_free(key := rkey(row))
                }
                return left_columns, [
                    row
                    for row in left_rows
                    if (_null_free(key := lkey(row)) and key in keys) == expect
                ]
            # Key-equal right rows only count as partners if the residual
            # also holds on the combined row.
            partners: dict[tuple, list[Row]] = {}
            for row in right_rows:
                if _null_free(key := rkey(row)):
                    partners.setdefault(key, []).append(row)
            return left_columns, [
                row
                for row in left_rows
                if any(
                    residual(row + other)
                    for other in partners.get(lkey(row), ())
                )
                == expect
            ]
        table: dict[tuple, list[Row]] = {}
        for row in right_rows:
            if _null_free(key := rkey(row)):
                table.setdefault(key, []).append(row)
        out = []
        for row in left_rows:
            emitted = False
            for match in table.get(lkey(row), ()):
                pair = row + match
                if residual is None or residual(pair):
                    out.append(pair)
                    emitted = True
            if node.kind is JoinKind.LEFT_OUTER and not emitted:
                out.append(row + (None,) * len(right_columns))
        return combined_columns, out

    def _aggregate(self, node: Aggregate) -> tuple[tuple[str, ...], list[Row]]:
        columns, rows = self._exec(node.child)
        group_positions = [_position(columns, g) for g in node.group_by]
        agg_fns = [
            (spec, spec.expr.bind(columns) if spec.expr else None)
            for spec in node.aggregates
        ]
        groups: dict[tuple, list] = {}
        for row in rows:
            key = tuple(row[p] for p in group_positions)
            accs = groups.get(key)
            if accs is None:
                accs = [make_accumulator(spec.func) for spec, _ in agg_fns]
                groups[key] = accs
            for acc, (spec, fn) in zip(accs, agg_fns):
                acc.add(fn(row) if fn is not None else 1)
        if not groups and not node.group_by:
            groups[()] = [make_accumulator(spec.func) for spec, _ in agg_fns]
        out_columns = tuple(
            columns[p] for p in group_positions
        ) + tuple(spec.name for spec in node.aggregates)
        out_rows = [
            key + tuple(acc.result() for acc in accs)
            for key, accs in groups.items()
        ]
        return out_columns, out_rows


def _null_free(key: tuple) -> bool:
    """SQL equality: a join key containing NULL never matches anything."""
    return all(value is not None for value in key)


def _position(columns: tuple[str, ...], name: str) -> int:
    from repro.query.expressions import resolve_column

    return resolve_column(name, columns)
