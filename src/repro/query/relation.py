"""Runtime relations and the Part/Dup properties of paper Section 2.2.

The rewrite process annotates every (intermediate) result ``o`` with:

* ``Part(o)`` — here :class:`PartInfo`: how the result is distributed over
  the cluster, which base tables' physical placement its rows still follow
  (*anchors*), and — for PREF results — the PREF scheme and seed table.
* ``Dup(o)`` — whether the result may contain PREF duplicates.  We refine
  the paper's boolean into the explicit tuple of *governing dup columns*:
  the hidden bitmap-index columns whose conjunction (all bits == 0)
  identifies the canonical copy of each logical row.  ``Dup(o) == 1`` iff
  the governing tuple is non-empty.

Hidden columns carry the PREF bitmap indexes through the plan: a scan of a
PREF table ``R`` (aliased ``r``) exposes ``__dup@r`` and ``__has@r``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import ExecutionError
from repro.partitioning.scheme import PrefScheme
from repro.query.expressions import resolve_column

Row = tuple

HIDDEN_PREFIX = "__"


def dup_column(alias: str) -> str:
    """Name of the hidden dup-bitmap column for a scan aliased *alias*."""
    return f"__dup@{alias}"


def has_column(alias: str) -> str:
    """Name of the hidden hasS-bitmap column for a scan aliased *alias*."""
    return f"__has@{alias}"


def is_hidden(column: str) -> bool:
    """True for internal bitmap-index columns."""
    return column.startswith(HIDDEN_PREFIX)


class Method(enum.Enum):
    """How an (intermediate) result is distributed across the cluster."""

    #: Rows sit in the physical placement of one or more base tables whose
    #: seed scheme (hash/range/round-robin) put them there.
    SEED = "seed"
    #: Rows were shuffled by hash on :attr:`PartInfo.hash_columns`.
    HASHED = "hashed"
    #: Rows follow a PREF scheme (referencing table placement).
    PREF = "pref"
    #: A full copy of the result is available on every node.
    REPLICATED = "replicated"
    #: The result lives on the coordinator only.
    GATHERED = "gathered"
    #: Rows are spread over the nodes with no exploitable property.
    NONE = "none"


@dataclass(frozen=True)
class PartInfo:
    """The ``Part(o)`` annotation of an (intermediate) result.

    Attributes:
        method: Distribution method (see :class:`Method`).
        count: Number of partitions (cluster size), 1 for GATHERED.
        hash_columns: For SEED-of-a-hash-table or HASHED results, the
            current column names rows are hash-distributed by; empty
            otherwise.  Used for the paper's locality case (1).
        anchors: Base tables whose rows still sit in their original
            physical placement inside this result.  Cleared by shuffles.
            Used for locality cases (2) and (3).
        pref_scheme: For PREF results, the scheme of the referencing table.
        pref_table: The physical referencing table the scheme belongs to.
        seed_table: For PREF results, the seed table of the PREF chain.
    """

    method: Method
    count: int
    hash_columns: tuple[str, ...] = ()
    anchors: frozenset[str] = frozenset()
    pref_scheme: PrefScheme | None = None
    pref_table: str | None = None
    seed_table: str | None = None

    def without_anchors(self) -> "PartInfo":
        """The same info with placement provenance dropped."""
        return replace(self, anchors=frozenset())

    def rename_hash_columns(self, mapping: dict[str, str]) -> "PartInfo":
        """Track hash columns through a projection rename.

        If any hash column is projected away the hash property is lost and
        the method degrades to NONE (for HASHED) while SEED keeps its
        anchors but loses the case-(1) columns.
        """
        if not self.hash_columns:
            return self
        renamed = tuple(mapping.get(column, "") for column in self.hash_columns)
        if all(renamed):
            return replace(self, hash_columns=renamed)
        if self.method is Method.HASHED:
            return replace(self, method=Method.NONE, hash_columns=())
        return replace(self, hash_columns=())


@dataclass
class RelProps:
    """Static properties of an (intermediate) result, computed at rewrite.

    Attributes:
        columns: Output column names (visible and hidden), in row order.
        origins: Per column, the ``(base_table, base_column)`` it carries
            unchanged, or None for computed/hidden columns.
        widths: Nominal per-column byte widths for the network cost model.
        part: The ``Part(o)`` annotation.
        governing: Hidden dup columns governing PREF duplicate elimination;
            ``Dup(o) == 1`` iff non-empty.
    """

    columns: tuple[str, ...]
    origins: tuple[tuple[str, str] | None, ...]
    widths: tuple[int, ...]
    part: PartInfo
    governing: tuple[str, ...] = ()
    #: Groups of column names known to hold equal values (established by
    #: executed equi-joins); placement checks treat members of one group
    #: as interchangeable.
    equivalences: tuple[frozenset[str], ...] = ()

    @property
    def dup(self) -> bool:
        """The paper's ``Dup(o)`` flag."""
        return bool(self.governing)

    def same_value(self, a: str, b: str) -> bool:
        """True if columns *a* and *b* are known to carry equal values."""
        name_a = self.columns[self.position(a)]
        name_b = self.columns[self.position(b)]
        if name_a == name_b:
            return True
        for group in self.equivalences:
            if name_a in group and name_b in group:
                return True
        return False

    def position(self, name: str) -> int:
        """Resolve a (possibly abbreviated) column name to its position."""
        return resolve_column(name, self.columns)

    def positions(self, names: Sequence[str]) -> tuple[int, ...]:
        """Resolve several column names."""
        return tuple(self.position(name) for name in names)

    def origin_of(self, name: str) -> tuple[str, str] | None:
        """The base (table, column) behind column *name*, if any."""
        return self.origins[self.position(name)]

    @property
    def visible_columns(self) -> tuple[str, ...]:
        """Columns excluding the hidden bitmap-index columns."""
        return tuple(c for c in self.columns if not is_hidden(c))

    def row_bytes(self) -> int:
        """Nominal bytes per row (all columns)."""
        return sum(self.widths)


@dataclass
class DistributedRelation:
    """Materialised rows of an (intermediate) result on the cluster.

    ``partitions`` has one row-list per node for partitioned methods, and a
    single row-list for REPLICATED (the copy every node holds) and GATHERED
    (the coordinator's copy).
    """

    props: RelProps
    partitions: list[list[Row]]

    @property
    def method(self) -> Method:
        """Distribution method of this relation."""
        return self.props.part.method

    @property
    def is_single_copy(self) -> bool:
        """True if ``partitions`` holds one logical copy (repl/gathered)."""
        return self.method in (Method.REPLICATED, Method.GATHERED)

    def total_rows(self) -> int:
        """Row count over all partitions (one copy for replicated)."""
        return sum(len(partition) for partition in self.partitions)

    def node_rows(self, node: int) -> list[Row]:
        """The rows node *node* works on locally."""
        if self.is_single_copy:
            return self.partitions[0]
        return self.partitions[node]

    def gathered_rows(self) -> list[Row]:
        """All rows as one list (only for single-copy relations)."""
        if not self.is_single_copy:
            raise ExecutionError(
                "gathered_rows() called on a partitioned relation"
            )
        return self.partitions[0]
