"""The bottom-up rewrite process of paper Section 2.2.

Turns a logical SPJA plan into an annotated physical plan: every operator
gets ``Part(o)``/``Dup(o)`` properties, and re-partitioning (shuffle),
broadcast, and PREF-duplicate-elimination operators are inserted exactly
where the locality analysis requires them.

The three inner-equi-join locality cases of the paper:

1. both inputs hash-partitioned on the join keys with equal counts;
2. one input follows the placement of a base table S (seed side), the
   other is PREF-partitioned referencing S, and the join predicate is the
   partitioning predicate;
3. both inputs are PREF results sharing the same seed table, and the join
   predicate is the partitioning predicate of the referencing input.

With ``optimizations=True`` the rewriter additionally applies the paper's
``hasS``-index rewrites: semi joins become local ``hasS = 1`` filters and
anti joins become local ``hasS = 0`` filters, without joining at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.errors import PlanningError
from repro.partitioning.scheme import HashScheme, PrefScheme, SchemeKind
from repro.query.expressions import ColumnRef
from repro.query.plan import (
    Aggregate,
    DedupFilter,
    Filter,
    Join,
    JoinKind,
    OrderBy,
    PartnerFilter,
    PlanNode,
    Project,
    Repartition,
    Scan,
)
from repro.query.relation import (
    Method,
    PartInfo,
    RelProps,
    dup_column,
    has_column,
    is_hidden,
)
from repro.storage.partitioned import PartitionedDatabase


@dataclass
class Annotated:
    """A physical plan node with its static result properties.

    Attributes:
        node: The physical operator (logical node or inserted exchange).
        props: Result properties (columns, Part, governing dup columns).
        inputs: Annotated children.
        pristine: Base tables whose *content* below this operator is the
            complete, unfiltered table (placement may have changed).
        extra: Strategy hints for the executor (e.g. join/aggregate mode).
    """

    node: PlanNode
    props: RelProps
    inputs: tuple["Annotated", ...] = ()
    pristine: frozenset[str] = frozenset()
    extra: dict = field(default_factory=dict)

    def explain(self, indent: int = 0) -> str:
        """Readable physical plan with Part/Dup annotations."""
        part = self.props.part
        strategy = self.extra.get("strategy")
        suffix = f" [{part.method.value}"
        if part.hash_columns:
            suffix += f" on {','.join(part.hash_columns)}"
        suffix += f", dup={int(self.props.dup)}"
        if strategy:
            suffix += f", {strategy}"
        suffix += "]"
        lines = ["  " * indent + self.node._label() + suffix]
        for child in self.inputs:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def count_shuffles(self) -> int:
        """Number of exchange operators (Repartition) in this subtree."""
        count = 1 if isinstance(self.node, Repartition) else 0
        if self.extra.get("strategy") == "broadcast":
            count += 1
        if self.extra.get("strategy") == "two_phase":
            count += 1
        if self.extra.get("gather"):
            count += 1
        return count + sum(child.count_shuffles() for child in self.inputs)


class Rewriter:
    """Rewrites logical plans against one partitioned database."""

    def __init__(
        self,
        partitioned: PartitionedDatabase,
        optimizations: bool = True,
        locality: bool = True,
    ) -> None:
        self.partitioned = partitioned
        self.count = partitioned.partition_count
        self.optimizations = optimizations
        #: Ablation switch: with locality=False the rewriter ignores the
        #: co-partitioning cases (1)-(3) and shuffles every join, as an
        #: engine unaware of PREF placement would.
        self.locality = locality

    # -- entry point -------------------------------------------------------------

    def rewrite(self, plan: PlanNode) -> Annotated:
        """Annotate *plan* and insert the required physical operators."""
        if isinstance(plan, Scan):
            return self._scan(plan)
        if isinstance(plan, Filter):
            return self._filter(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, Join):
            return self._join(plan)
        if isinstance(plan, Aggregate):
            return self._aggregate(plan)
        if isinstance(plan, OrderBy):
            return self._order_by(plan)
        raise PlanningError(f"cannot rewrite logical node {plan!r}")

    # -- scans ---------------------------------------------------------------------

    def _scan(self, node: Scan) -> Annotated:
        table = self.partitioned.table(node.table)
        alias = node.name
        columns = [f"{alias}.{c.name}" for c in table.schema.columns]
        origins: list[tuple[str, str] | None] = [
            (node.table, c.name) for c in table.schema.columns
        ]
        widths = [c.byte_width for c in table.schema.columns]
        governing: tuple[str, ...] = ()
        scheme = table.scheme
        if scheme.kind is SchemeKind.PREF:
            columns += [dup_column(alias), has_column(alias)]
            origins += [None, None]
            widths += [1, 1]
            # A PREF table without any materialised duplicates needs no
            # duplicate elimination at all.  Patch-list deliveries arrive
            # with dup=1, so patched tables always need governing.
            if table.has_governing_duplicates:
                governing = (dup_column(alias),)
            # REF-like chains verified to follow the seed's hash placement
            # expose usable hash columns (transitive chain joins become
            # locality case 1).
            hash_columns = ()
            if table.effective_hash is not None:
                hash_columns = tuple(
                    f"{alias}.{c}" for c in table.effective_hash
                )
            part = PartInfo(
                Method.PREF,
                self.count,
                hash_columns=hash_columns,
                anchors=frozenset((node.table,)),
                pref_scheme=scheme,
                pref_table=node.table,
                seed_table=table.seed_table,
            )
        elif scheme.kind is SchemeKind.REPLICATED:
            part = PartInfo(Method.REPLICATED, self.count)
        else:
            hash_columns = ()
            if isinstance(scheme, HashScheme):
                hash_columns = tuple(f"{alias}.{c}" for c in scheme.columns)
            part = PartInfo(
                Method.SEED,
                self.count,
                hash_columns=hash_columns,
                anchors=frozenset((node.table,)),
                seed_table=node.table,
            )
        props = RelProps(
            columns=tuple(columns),
            origins=tuple(origins),
            widths=tuple(widths),
            part=part,
            governing=governing,
        )
        return Annotated(node, props, pristine=frozenset((node.table,)))

    # -- filter -----------------------------------------------------------------

    def _filter(self, node: Filter) -> Annotated:
        child = self.rewrite(node.child)
        if self.optimizations and isinstance(child.node, Scan):
            # Partition pruning: equality predicates on the scan's
            # placement key restrict which partitions need scanning.
            from repro.query.pruning import derive_prune_info

            table = self.partitioned.table(child.node.table)
            prune = derive_prune_info(table, child.node.name, node.condition)
            if prune is not None and "prune" not in child.extra:
                child.extra["prune"] = prune
        props = replace(child.props)
        return Annotated(
            Filter(node.child, node.condition),
            props,
            (child,),
            pristine=frozenset(),
        )

    # -- projection ---------------------------------------------------------------

    def _project(self, node: Project) -> Annotated:
        child = self.rewrite(node.child)
        if child.props.dup:
            # Paper: "if Dup(oin)=1 we add a distinct operation ... using
            # the dup indexes"; a purely local filter.
            child = self._dedup(child)
        rename: dict[str, str] = {}
        origins: list[tuple[str, str] | None] = []
        widths: list[int] = []
        for name, expr in node.outputs:
            if isinstance(expr, ColumnRef):
                position = child.props.position(expr.name)
                rename[child.props.columns[position]] = name
                origins.append(child.props.origins[position])
                widths.append(child.props.widths[position])
            else:
                origins.append(None)
                widths.append(8)
        part = child.props.part.rename_hash_columns(rename)
        # Anchors survive only if the projection is a pure column selection
        # (base rows are intact); computed outputs keep placement but the
        # origin bookkeeping above already limits what downstream can prove.
        props = RelProps(
            columns=tuple(name for name, _ in node.outputs),
            origins=tuple(origins),
            widths=tuple(widths),
            part=part,
            equivalences=_rename_equivalences(
                child.props.equivalences, rename
            ),
        )
        annotated = Annotated(node, props, (child,), pristine=child.pristine)
        if node.distinct:
            annotated = self._distinct_values(annotated)
        return annotated

    def _distinct_values(self, child: Annotated) -> Annotated:
        """Global value-based DISTINCT over the child's output columns."""
        if child.props.part.method in (Method.REPLICATED, Method.GATHERED):
            return Annotated(
                child.node,
                child.props,
                child.inputs,
                extra={**child.extra, "distinct": "local"},
            )
        keys = child.props.columns
        shuffled = self._repartition(child, keys)
        return Annotated(
            shuffled.node,
            shuffled.props,
            shuffled.inputs,
            extra={**shuffled.extra, "distinct": "local"},
        )

    # -- physical helpers ------------------------------------------------------------

    def _dedup(self, child: Annotated) -> Annotated:
        """Insert a local PREF-duplicate-elimination operator."""
        part = replace(
            child.props.part,
            method=Method.NONE,
            hash_columns=(),
            anchors=frozenset(),
            pref_scheme=None,
            pref_table=None,
            seed_table=None,
        )
        props = replace(child.props, part=part, governing=())
        return Annotated(
            DedupFilter(child.node), props, (child,), pristine=child.pristine
        )

    def _repartition(self, child: Annotated, keys: Sequence[str]) -> Annotated:
        """Insert a hash re-partition (dedups PREF duplicates on the way)."""
        positions = child.props.positions(keys)
        key_names = tuple(child.props.columns[p] for p in positions)
        part = PartInfo(Method.HASHED, self.count, hash_columns=key_names)
        props = replace(child.props, part=part, governing=())
        node = Repartition(
            child.node,
            keys=key_names,
            count=self.count,
            dedup=child.props.dup,
        )
        return Annotated(node, props, (child,), pristine=child.pristine)

    # -- joins -----------------------------------------------------------------------

    def _join(self, node: Join) -> Annotated:
        left = self.rewrite(node.left)
        right = self.rewrite(node.right)
        overlap = set(left.props.columns) & set(right.props.columns)
        if overlap:
            raise PlanningError(
                f"join inputs share column names {sorted(overlap)}; "
                "alias one side"
            )
        if node.kind is JoinKind.CROSS or not node.on:
            return self._broadcast_join(node, left, right)
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            if not self.optimizations:
                return self._naive_semi_anti(node)
            optimised = self._try_partner_filter(node, left, right)
            if optimised is not None:
                return optimised
        case, referenced_side = self._locality_case(node, left, right)
        if case is None:
            if (
                node.kind in (JoinKind.SEMI, JoinKind.ANTI)
                and node.residual is None
            ):
                # Only the distinct join-key values of the build side are
                # needed; shuffle those instead of full rows.  A residual
                # reads the build side's other columns, so it must see
                # full rows.
                right = self._distinct_keys(
                    right, tuple(r for _l, r in node.on)
                )
            left, right = self._align_by_shuffle(node, left, right)
            case, referenced_side = "shuffled", None
        return self._local_join(node, left, right, case, referenced_side)

    def _distinct_keys(
        self, side: Annotated, keys: tuple[str, ...]
    ) -> Annotated:
        """Project *side* to its join keys, locally deduplicated.

        NULL-bearing keys may survive the projection; that is sound
        because the keyed semi/anti probe never matches a key containing
        NULL (SQL equality), so shipping them merely costs bytes.
        """
        positions = side.props.positions(keys)
        names = tuple(side.props.columns[p] for p in positions)
        outputs = tuple(
            (name, ColumnRef(name)) for name in names
        )
        part = side.props.part.rename_hash_columns({n: n for n in names})
        props = RelProps(
            columns=names,
            origins=tuple(side.props.origins[p] for p in positions),
            widths=tuple(side.props.widths[p] for p in positions),
            part=part,
            equivalences=_rename_equivalences(
                side.props.equivalences, {n: n for n in names}
            ),
        )
        node = Project(side.node, outputs)
        return Annotated(
            node,
            props,
            (side,),
            # Downstream only tests membership of these keys (semi/anti
            # probe), so per-partition dedup and surviving NULL keys are
            # harmless; state that for the static certifier.
            extra={"distinct": "local", "assume": {"membership_only": True}},
        )

    def _locality_case(
        self, node: Join, left: Annotated, right: Annotated
    ) -> tuple[str | None, str | None]:
        """Which locality case (if any) makes this join partition-local.

        Returns ``(case, referenced_side)`` where case is one of
        ``both_replicated | replicated_left | replicated_right | case1 |
        case2 | case3`` and referenced_side is ``"left"``/``"right"`` for
        cases 2/3 (the input whose Part/Dup carries over to the result).
        For outer/semi/anti kinds, additional soundness conditions on the
        preserved side and pristineness are enforced here.
        """
        lm, rm = left.props.part.method, right.props.part.method
        if lm is Method.REPLICATED and rm is Method.REPLICATED:
            return "both_replicated", None
        if rm is Method.REPLICATED:
            return "replicated_right", None
        if lm is Method.REPLICATED:
            if node.kind in (JoinKind.LEFT_OUTER, JoinKind.SEMI, JoinKind.ANTI):
                # The preserved/output side is the replicated one; its
                # content is identical per node, so executing per-partition
                # would multiply results.  Fall back to shuffling.
                return None, None
            return "replicated_left", None
        if not self.locality:
            return None, None
        if self._case1_applies(node, left, right):
            return "case1", None
        for referencing, referenced, side in (
            (right, left, "left"),
            (left, right, "right"),
        ):
            if self._pref_case_applies(node, referencing, referenced):
                case = (
                    "case2"
                    if referenced.props.part.method is Method.SEED
                    else "case3"
                )
                if not self._kind_allows_pref_local(
                    node, referencing, referenced, referenced_side=side
                ):
                    continue
                return case, side
        return None, None

    def _case1_applies(self, node: Join, left: Annotated, right: Annotated) -> bool:
        lp, rp = left.props.part, right.props.part
        if not lp.hash_columns or not rp.hash_columns:
            return False
        if lp.count != rp.count:
            return False
        if len(lp.hash_columns) != len(rp.hash_columns):
            return False
        # For every hash column i on the left, some join pair must equate a
        # value-equivalent of it with a value-equivalent of the right hash
        # column i (equi-joins executed below established the equivalences).
        for i, left_hash in enumerate(lp.hash_columns):
            right_hash = rp.hash_columns[i]
            if not any(
                left.props.same_value(left_hash, l)
                and right.props.same_value(right_hash, r)
                for l, r in node.on
            ):
                return False
        return True

    def _pref_case_applies(
        self, node: Join, referencing: Annotated, referenced: Annotated
    ) -> bool:
        """Do the join keys realise *referencing*'s partitioning predicate?"""
        part = referencing.props.part
        if part.method is not Method.PREF or part.pref_scheme is None:
            return False
        if referenced.props.part.method not in (Method.SEED, Method.PREF):
            return False
        scheme: PrefScheme = part.pref_scheme
        table_r = part.pref_table
        table_s = scheme.referenced_table
        if table_s not in referenced.props.part.anchors:
            return False
        if referenced.props.part.method is Method.PREF:
            # Case 3: both PREF chains must share the seed table.
            if referenced.props.part.seed_table != part.seed_table:
                return False
        # Every predicate conjunct must be realised by some join pair
        # (origin-wise, in either orientation of the pair).
        pair_origins = set()
        for left_col, right_col in node.on:
            # Resolve each side of the pair on whichever input holds it.
            origin_a = _safe_origin(referencing, left_col) or _safe_origin(
                referencing, right_col
            )
            origin_b = _safe_origin(referenced, left_col) or _safe_origin(
                referenced, right_col
            )
            if origin_a and origin_b:
                pair_origins.add((origin_a, origin_b))
        needed = {
            ((table_r, ref_col), (table_s, s_col))
            for ref_col, s_col in zip(
                scheme.referencing_columns(table_r), scheme.referenced_columns
            )
        }
        return needed <= pair_origins

    def _kind_allows_pref_local(
        self,
        node: Join,
        referencing: Annotated,
        referenced: Annotated,
        referenced_side: str,
    ) -> bool:
        """Soundness of a PREF-local join for non-inner kinds.

        Inner joins are always sound.  For LEFT OUTER, SEMI and ANTI, the
        per-partition decision (pad / keep / drop) must be globally
        consistent for every copy of a preserved-side row.  That holds when
        the preserved/left side is the *referenced* input, or when the
        referencing side is preserved and the referenced side's content is
        the complete base table (filters drop all copies of a logical row
        uniformly, so a pristine referenced side keeps every referencing
        copy partnered).
        """
        if node.kind is JoinKind.INNER:
            return True
        if node.kind not in (JoinKind.LEFT_OUTER, JoinKind.SEMI, JoinKind.ANTI):
            return False
        if referenced_side == "left":
            # Preserved side is the referenced input: decisions replicate
            # consistently across its copies.
            return True
        # Preserved side is the referencing input; require the referenced
        # (right) content to be complete so every partnered copy matches.
        table_s = referencing.props.part.pref_scheme.referenced_table
        return table_s in referenced.pristine

    def _align_by_shuffle(
        self, node: Join, left: Annotated, right: Annotated
    ) -> tuple[Annotated, Annotated]:
        """Re-partition inputs so the join keys co-locate (paper fallback)."""
        left_keys = [l for l, _ in node.on]
        right_keys = [r for _, r in node.on]
        if not self._hashed_on(left, left_keys):
            left = self._repartition(left, left_keys)
        elif left.props.dup:
            left = self._dedup_in_place(left)
        if not self._hashed_on(right, right_keys):
            right = self._repartition(right, right_keys)
        elif right.props.dup:
            right = self._dedup_in_place(right)
        return left, right

    def _dedup_in_place(self, child: Annotated) -> Annotated:
        """Dedup without moving rows, keeping the child's hash placement."""
        part = child.props.part
        props = replace(child.props, part=part, governing=())
        return Annotated(
            DedupFilter(child.node), props, (child,), pristine=child.pristine
        )

    def _hashed_on(self, side: Annotated, keys: Sequence[str]) -> bool:
        """Is *side* already hash-distributed exactly by *keys*?"""
        part = side.props.part
        allowed = (Method.SEED, Method.HASHED)
        if self.locality:
            # Verified effective-hash placement of PREF chains is only
            # visible to a PREF-aware engine.
            allowed += (Method.PREF,)
        if part.method not in allowed:
            return False
        if not part.hash_columns or part.count != self.count:
            return False
        if len(part.hash_columns) != len(keys):
            return False
        try:
            return all(
                side.props.same_value(hash_column, key)
                for hash_column, key in zip(part.hash_columns, keys)
            )
        except PlanningError:
            return False

    def _local_join(
        self,
        node: Join,
        left: Annotated,
        right: Annotated,
        case: str,
        referenced_side: str | None,
    ) -> Annotated:
        columns = left.props.columns + right.props.columns
        origins = left.props.origins + right.props.origins
        widths = left.props.widths + right.props.widths
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            columns, origins, widths = (
                left.props.columns,
                left.props.origins,
                left.props.widths,
            )
        lp, rp = left.props.part, right.props.part

        if case == "both_replicated":
            part = PartInfo(Method.REPLICATED, self.count)
            governing: tuple[str, ...] = ()
        elif case == "replicated_right":
            part = lp
            governing = left.props.governing
        elif case == "replicated_left":
            part = rp
            governing = right.props.governing
        elif case == "case1":
            anchors = lp.anchors | rp.anchors
            method = Method.SEED if anchors else Method.HASHED
            part = PartInfo(
                method,
                self.count,
                hash_columns=lp.hash_columns,
                anchors=anchors,
            )
            governing = ()
        elif case in ("case2", "case3"):
            referenced = left if referenced_side == "left" else right
            referencing = right if referenced_side == "left" else left
            anchors = lp.anchors | rp.anchors
            if case == "case2":
                # Result keeps the referencing input's PREF scheme (usable
                # for further chain joins) and is duplicate-free.
                part = replace(referencing.props.part, anchors=anchors)
                governing = ()
            else:
                part = replace(referenced.props.part, anchors=anchors)
                governing = referenced.props.governing
            if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
                # Output is the left side only.
                part = replace(lp, anchors=lp.anchors)
                governing = left.props.governing
        elif case == "shuffled":
            anchors = lp.anchors | rp.anchors
            part = PartInfo(
                Method.HASHED,
                self.count,
                hash_columns=lp.hash_columns,
                anchors=anchors,
            )
            governing = ()
        else:  # pragma: no cover - exhaustive
            raise PlanningError(f"unknown join case {case!r}")

        if node.kind in (JoinKind.SEMI, JoinKind.ANTI) and case == "shuffled":
            part = replace(part, hash_columns=lp.hash_columns)

        if node.kind is JoinKind.LEFT_OUTER and part.hash_columns:
            # Padded rows carry NULLs in every right-side column yet sit in
            # whatever partition their left row occupies, so a placement
            # claim keyed on right-side columns does not hold for them
            # (a "local" GROUP BY on such a key would emit one NULL group
            # per partition).  Claims keyed on left columns stay sound.
            right_columns = set(right.props.columns)
            if any(column in right_columns for column in part.hash_columns):
                part = replace(part, hash_columns=())

        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            equivalences = left.props.equivalences
        elif node.kind is JoinKind.LEFT_OUTER:
            # The join keys are only equal on *matched* rows: a padded row
            # keeps its left key but NULLs the right one, so the pair must
            # not enter the equivalence groups (a GROUP BY on the right key
            # would otherwise be treated as partition-local and emit one
            # NULL group per partition).  Within-side groups still hold —
            # padding sets every right column to NULL uniformly.
            equivalences = left.props.equivalences + right.props.equivalences
        else:
            pairs = [
                (
                    left.props.columns[left.props.position(l)],
                    right.props.columns[right.props.position(r)],
                )
                for l, r in node.on
            ]
            equivalences = _merge_equivalences(
                left.props.equivalences + right.props.equivalences, pairs
            )
        props = RelProps(
            columns=columns,
            origins=origins,
            widths=widths,
            part=part,
            governing=governing,
            equivalences=equivalences,
        )
        physical = Join(
            left.node, right.node, node.on, node.kind, node.residual
        )
        extra: dict = {"strategy": "local", "case": case}
        if referenced_side is not None:
            extra["referenced_side"] = referenced_side
            if node.kind is not JoinKind.INNER and referenced_side == "right":
                # _kind_allows_pref_local admitted this plan because the
                # referenced side is the complete base table (pristine);
                # state the assumption explicitly so the static certifier
                # validates it instead of rediscovering it.
                referencing_part = (
                    left if referenced_side == "right" else right
                ).props.part
                extra["assume"] = {
                    "pristine": referencing_part.pref_scheme.referenced_table
                }
        return Annotated(
            physical,
            props,
            (left, right),
            extra=extra,
        )

    def _broadcast_join(
        self, node: Join, left: Annotated, right: Annotated
    ) -> Annotated:
        """Cross/theta joins: ship the smaller (deduplicated) input around."""
        if (
            left.props.part.method is Method.REPLICATED
            and right.props.part.method is Method.REPLICATED
        ):
            return self._local_join(node, left, right, "both_replicated", None)
        if left.props.dup:
            left = self._dedup_in_place(left)
        if right.props.dup:
            right = self._dedup_in_place(right)
        columns = left.props.columns + right.props.columns
        origins = left.props.origins + right.props.origins
        widths = left.props.widths + right.props.widths
        props = RelProps(
            columns=columns,
            origins=origins,
            widths=widths,
            part=PartInfo(Method.NONE, self.count),
        )
        physical = Join(left.node, right.node, node.on, node.kind, node.residual)
        return Annotated(
            physical, props, (left, right), extra={"strategy": "broadcast"}
        )

    def _naive_semi_anti(self, node: Join) -> Annotated:
        """Unoptimised semi/anti joins, as a naive engine executes them.

        Without the hasS index (paper Figure 9, "wo optimizations"):
        a semi join de-sugars to inner join + DISTINCT over the left
        columns, and an anti join to a NOT-EXISTS nested loop, i.e. a
        remote (broadcast) join with the key equality as residual
        predicate — the quadratic plan that made the paper's unoptimised
        anti-join query exceed its one-hour budget.
        """
        from repro.query.expressions import and_, col

        if node.kind is JoinKind.SEMI:
            inner = Join(node.left, node.right, node.on, JoinKind.INNER, node.residual)
            annotated_left = self.rewrite(node.left)
            outputs = tuple(
                (name, col(name))
                for name in annotated_left.props.columns
                if not is_hidden(name)
            )
            return self.rewrite(Project(inner, outputs, distinct=True))
        residual_terms = [col(l) == col(r) for l, r in node.on]
        if node.residual is not None:
            residual_terms.append(node.residual)
        naive = Join(
            node.left,
            node.right,
            (),
            JoinKind.ANTI,
            and_(*residual_terms),
        )
        left = self.rewrite(node.left)
        right = self.rewrite(node.right)
        if left.props.dup:
            left = self._dedup_in_place(left)
        if right.props.dup:
            right = self._dedup_in_place(right)
        props = RelProps(
            columns=left.props.columns,
            origins=left.props.origins,
            widths=left.props.widths,
            part=PartInfo(Method.NONE, self.count),
        )
        physical = Join(left.node, right.node, (), JoinKind.ANTI, naive.residual)
        return Annotated(
            physical, props, (left, right), extra={"strategy": "broadcast"}
        )

    def _try_partner_filter(
        self, node: Join, left: Annotated, right: Annotated
    ) -> Annotated | None:
        """Paper's hasS rewrite: semi/anti join -> local bitmap filter.

        NULL soundness: the partitioner and bulk loader set hasS = 0 for
        referencing tuples whose PREF key contains NULL (a NULL key never
        satisfies the equality predicate), which is exactly the SQL join
        semantics the rewritten semi/anti join would have produced.
        """
        if not self.optimizations:
            return None
        # The hasS bitmap is precomputed from the PREF key equality alone;
        # a residual predicate restricts which partners count, which the
        # bitmap cannot express — fall through to a real semi/anti join.
        if node.residual is not None:
            return None
        # Right side must be the complete content of a single base table S.
        right_tables = {
            origin[0] for origin in right.props.origins if origin is not None
        }
        if len(right_tables) != 1:
            return None
        table_s = next(iter(right_tables))
        if table_s not in right.pristine:
            return None
        # Find an alias on the left whose scan is PREF-referencing S with
        # exactly the join predicate.
        for column in left.props.columns:
            if not column.startswith("__has@"):
                continue
            alias = column.split("@", 1)[1]
            scheme = self._alias_pref_scheme(left, alias)
            if scheme is None or scheme.referenced_table != table_s:
                continue
            table_r = scheme.predicate.other_table(table_s)
            needed = {
                ((table_r, r_col), (table_s, s_col))
                for r_col, s_col in zip(
                    scheme.referencing_columns(table_r),
                    scheme.referenced_columns,
                )
            }
            pair_origins = set()
            alias_ok = True
            for left_col, right_col in node.on:
                origin_l = _safe_origin(left, left_col) or _safe_origin(
                    left, right_col
                )
                origin_r = _safe_origin(right, right_col) or _safe_origin(
                    right, left_col
                )
                if origin_l is None or origin_r is None:
                    alias_ok = False
                    break
                # The left key must come from this very alias.
                key_name = (
                    left_col if _safe_origin(left, left_col) else right_col
                )
                position = left.props.position(key_name)
                if not left.props.columns[position].startswith(f"{alias}."):
                    alias_ok = False
                    break
                pair_origins.add((origin_l, origin_r))
            if not alias_ok or pair_origins != needed:
                continue
            physical = PartnerFilter(
                left.node, table=alias, expect=node.kind is JoinKind.SEMI
            )
            props = replace(left.props)
            # The bitmap equals semi/anti membership only because the
            # build side is the complete content of S (checked above);
            # state that for the static certifier.
            return Annotated(
                physical,
                props,
                (left,),
                extra={
                    "strategy": "partner_filter",
                    "assume": {"pristine": table_s},
                },
            )
        return None

    def _alias_pref_scheme(
        self, side: Annotated, alias: str
    ) -> PrefScheme | None:
        """The PREF scheme behind alias *alias* inside *side*, if any."""
        for annotated in _walk(side):
            if isinstance(annotated.node, Scan) and annotated.node.name == alias:
                table = self.partitioned.table(annotated.node.table)
                if isinstance(table.scheme, PrefScheme):
                    return table.scheme
        return None

    # -- aggregation --------------------------------------------------------------

    def _aggregate(self, node: Aggregate) -> Annotated:
        child = self.rewrite(node.child)
        out_columns = tuple(
            _group_output_name(child, g) for g in node.group_by
        ) + tuple(spec.name for spec in node.aggregates)
        origins: tuple = tuple(
            child.props.origin_of(g) for g in node.group_by
        ) + tuple(None for _ in node.aggregates)
        widths = tuple(
            child.props.widths[child.props.position(g)] for g in node.group_by
        ) + tuple(8 for _ in node.aggregates)

        method = child.props.part.method
        if method in (Method.REPLICATED, Method.GATHERED):
            part = PartInfo(Method.GATHERED, self.count)
            props = RelProps(out_columns, origins, widths, part)
            return Annotated(
                node, props, (child,), extra={"strategy": "single"}
            )

        if node.group_by and self._group_prefix_local(child, node.group_by):
            # Paper: input hash-partitioned and GrpAtts starts with the
            # partitioning attributes -> aggregate fully locally.
            part = PartInfo(
                Method.HASHED,
                self.count,
                hash_columns=tuple(
                    _group_output_name(child, g)
                    for g in node.group_by[
                        : len(child.props.part.hash_columns)
                    ]
                ),
            )
            props = RelProps(out_columns, origins, widths, part)
            return Annotated(node, props, (child,), extra={"strategy": "local"})

        if child.props.dup:
            child = self._dedup_in_place_keep_part(child)
        if node.group_by:
            part = PartInfo(
                Method.HASHED,
                self.count,
                hash_columns=tuple(
                    _group_output_name(child, g) for g in node.group_by
                ),
            )
        else:
            part = PartInfo(Method.GATHERED, self.count)
        props = RelProps(out_columns, origins, widths, part)
        return Annotated(node, props, (child,), extra={"strategy": "two_phase"})

    def _dedup_in_place_keep_part(self, child: Annotated) -> Annotated:
        """Local dedup that keeps placement info (pre-aggregation)."""
        props = replace(child.props, governing=())
        return Annotated(
            DedupFilter(child.node), props, (child,), pristine=child.pristine
        )

    def _group_prefix_local(
        self, child: Annotated, group_by: tuple[str, ...]
    ) -> bool:
        part = child.props.part
        if part.method not in (Method.SEED, Method.HASHED, Method.PREF):
            return False
        if part.method is Method.PREF and child.props.dup:
            return False
        if not part.hash_columns or part.count != self.count:
            return False
        if len(group_by) < len(part.hash_columns):
            return False
        try:
            return all(
                child.props.same_value(group_column, hash_column)
                for group_column, hash_column in zip(
                    group_by, part.hash_columns
                )
            )
        except PlanningError:
            return False

    # -- order by --------------------------------------------------------------------

    def _order_by(self, node: OrderBy) -> Annotated:
        child = self.rewrite(node.child)
        if child.props.dup:
            child = self._dedup(child)
        part = PartInfo(Method.GATHERED, self.count)
        props = replace(child.props, part=part, governing=())
        return Annotated(
            OrderBy(child.node, node.keys, node.limit),
            props,
            (child,),
            extra={"gather": True},
        )


def _merge_equivalences(
    groups: tuple[frozenset[str], ...],
    pairs: list[tuple[str, str]],
) -> tuple[frozenset[str], ...]:
    """Union-find merge of equivalence groups with new equal pairs."""
    merged: list[set[str]] = [set(group) for group in groups]
    for a, b in pairs:
        touching = [group for group in merged if a in group or b in group]
        combined = {a, b}
        for group in touching:
            combined |= group
            merged.remove(group)
        merged.append(combined)
    return tuple(frozenset(group) for group in merged if len(group) > 1)


def _rename_equivalences(
    groups: tuple[frozenset[str], ...],
    rename: dict[str, str],
) -> tuple[frozenset[str], ...]:
    """Map equivalence groups through a projection rename, dropping lost
    columns.  Distinct outputs of the same source column stay equivalent
    only if both survive under different names (not tracked; rare)."""
    renamed = []
    for group in groups:
        survivors = frozenset(
            rename[name] for name in group if name in rename
        )
        if len(survivors) > 1:
            renamed.append(survivors)
    return tuple(renamed)


def _group_output_name(child: Annotated, group_ref: str) -> str:
    """Output column name for a group-by reference (full child name)."""
    return child.props.columns[child.props.position(group_ref)]


def _safe_origin(side: Annotated, column: str) -> tuple[str, str] | None:
    """Origin of *column* on *side*, or None if it doesn't resolve there."""
    try:
        return side.props.origin_of(column)
    except PlanningError:
        return None


def _walk(annotated: Annotated):
    yield annotated
    for child in annotated.inputs:
        yield from _walk(child)
