"""Aggregate accumulators with partial/merge support.

The distributed executor computes partial aggregates per node, ships the
compact partial states, and merges them — the standard two-phase strategy
(the paper's XDB pushes per-node sub-plans into MySQL and combines on the
coordinator, which is the same structure).

Each accumulator supports ``add`` (consume an input value), ``state``
(serialisable partial), ``merge_state`` and ``result``.  The columnar
engine feeds whole value columns through ``add_many``/``add_count``,
which accumulate a group's rows in one call instead of one virtual
dispatch per (row, aggregate); every override folds values in ascending
row order, so float accumulation stays bit-identical to the per-row
``add`` loop it replaces (the row-engine golden traces pin this).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import ExecutionError


class Accumulator:
    """Base class for aggregate accumulators."""

    def add(self, value: object) -> None:
        raise NotImplementedError

    def add_many(self, column: Sequence, indices: Iterable[int]) -> None:
        """Consume ``column[i]`` for each row index, in iteration order.

        The base implementation is the per-row loop; subclasses override
        it with a tight local fold over the same order.
        """
        add = self.add
        for index in indices:
            add(column[index])

    def add_count(self, count: int) -> None:
        """Consume *count* non-null sentinel inputs (the COUNT(*) path)."""
        add = self.add
        for _ in range(count):
            add(1)

    def state(self) -> object:
        """The partial state shipped between nodes."""
        raise NotImplementedError

    def merge_state(self, state: object) -> None:
        """Fold another node's partial state into this accumulator."""
        raise NotImplementedError

    def result(self) -> object:
        """The final aggregate value."""
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Nominal wire size of the partial state (network cost model)."""
        return 8


class SumAccumulator(Accumulator):
    """SUM over non-null inputs (None if no input)."""

    def __init__(self) -> None:
        self._total: float | int | None = None

    def add(self, value: object) -> None:
        if value is None:
            return
        self._total = value if self._total is None else self._total + value

    def add_many(self, column: Sequence, indices: Iterable[int]) -> None:
        total = self._total
        for index in indices:
            value = column[index]
            if value is None:
                continue
            total = value if total is None else total + value
        self._total = total

    def state(self) -> object:
        return self._total

    def merge_state(self, state: object) -> None:
        if state is None:
            return
        self._total = state if self._total is None else self._total + state

    def result(self) -> object:
        return self._total


class CountAccumulator(Accumulator):
    """COUNT(expr) — counts non-null inputs; COUNT(*) feeds a sentinel."""

    def __init__(self) -> None:
        self._count = 0

    def add(self, value: object) -> None:
        if value is not None:
            self._count += 1

    def add_many(self, column: Sequence, indices: Iterable[int]) -> None:
        self._count += sum(1 for index in indices if column[index] is not None)

    def add_count(self, count: int) -> None:
        self._count += count

    def state(self) -> object:
        return self._count

    def merge_state(self, state: object) -> None:
        self._count += state  # type: ignore[operator]

    def result(self) -> object:
        return self._count


class AvgAccumulator(Accumulator):
    """AVG as (sum, count) so partials merge exactly."""

    def __init__(self) -> None:
        self._total: float = 0.0
        self._count = 0

    def add(self, value: object) -> None:
        if value is None:
            return
        self._total += value  # type: ignore[operator]
        self._count += 1

    def add_many(self, column: Sequence, indices: Iterable[int]) -> None:
        total = self._total
        count = self._count
        for index in indices:
            value = column[index]
            if value is None:
                continue
            total += value
            count += 1
        self._total = total
        self._count = count

    def state(self) -> object:
        return (self._total, self._count)

    def merge_state(self, state: object) -> None:
        total, count = state  # type: ignore[misc]
        self._total += total
        self._count += count

    def result(self) -> object:
        if self._count == 0:
            return None
        return self._total / self._count

    def state_bytes(self) -> int:
        return 16


class MinAccumulator(Accumulator):
    """MIN over non-null inputs."""

    def __init__(self) -> None:
        self._best: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:  # type: ignore[operator]
            self._best = value

    def add_many(self, column: Sequence, indices: Iterable[int]) -> None:
        best = self._best
        for index in indices:
            value = column[index]
            if value is None:
                continue
            if best is None or value < best:  # type: ignore[operator]
                best = value
        self._best = best

    def state(self) -> object:
        return self._best

    def merge_state(self, state: object) -> None:
        self.add(state)

    def result(self) -> object:
        return self._best


class MaxAccumulator(Accumulator):
    """MAX over non-null inputs."""

    def __init__(self) -> None:
        self._best: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:  # type: ignore[operator]
            self._best = value

    def add_many(self, column: Sequence, indices: Iterable[int]) -> None:
        best = self._best
        for index in indices:
            value = column[index]
            if value is None:
                continue
            if best is None or value > best:  # type: ignore[operator]
                best = value
        self._best = best

    def state(self) -> object:
        return self._best

    def merge_state(self, state: object) -> None:
        self.add(state)

    def result(self) -> object:
        return self._best


class CountDistinctAccumulator(Accumulator):
    """COUNT(DISTINCT expr) — partials ship the distinct-value sets."""

    def __init__(self) -> None:
        self._values: set = set()

    def add(self, value: object) -> None:
        if value is not None:
            self._values.add(value)

    def add_many(self, column: Sequence, indices: Iterable[int]) -> None:
        self._values.update(
            value
            for value in (column[index] for index in indices)
            if value is not None
        )

    def state(self) -> object:
        return self._values

    def merge_state(self, state: object) -> None:
        self._values |= state  # type: ignore[operator]

    def result(self) -> object:
        return len(self._values)

    def state_bytes(self) -> int:
        return 8 * max(1, len(self._values))


_FACTORIES: dict[str, Callable[[], Accumulator]] = {
    "sum": SumAccumulator,
    "count": CountAccumulator,
    "avg": AvgAccumulator,
    "min": MinAccumulator,
    "max": MaxAccumulator,
    "count_distinct": CountDistinctAccumulator,
}


def make_accumulator(func: str) -> Accumulator:
    """Instantiate the accumulator for aggregate function *func*."""
    try:
        return _FACTORIES[func]()
    except KeyError:
        raise ExecutionError(f"unknown aggregate function {func!r}") from None
