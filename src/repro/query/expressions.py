"""A small expression language for filters, projections and aggregates.

Expressions are bound against a relation's column list once, yielding a
plain ``row -> value`` callable, so per-row evaluation involves no name
lookups.  Column references may be fully qualified (``orders.custkey``) or
abbreviated (``custkey``); abbreviations must resolve uniquely.

NULL semantics (the contract the differential fuzzer enforces):

* ``None`` is SQL NULL.  Bound predicates return ``True``, ``False`` or
  ``None`` — three-valued logic with ``None`` standing for *unknown*.
* :class:`Comparison` yields unknown when either operand is NULL, so
  ``NULL = NULL`` is not true and ``col < NULL`` is not an error.
* :class:`Arithmetic` propagates NULL, and division by zero yields NULL
  (matching SQLite, our differential oracle).
* :class:`BooleanOp` and :class:`Negation` follow Kleene logic:
  ``unknown AND false`` is false, ``unknown OR true`` is true, everything
  else involving unknown stays unknown; ``NOT unknown`` is unknown.
* :class:`InList` treats the list as a chain of ``OR``-ed equalities:
  ``x IN (...)`` is unknown when ``x`` is NULL (and the list is non-empty),
  and ``x NOT IN (list containing NULL)`` is never true — at best unknown.
* :class:`IsNull` is the only predicate that is always two-valued.

Filters and join residuals accept a row only when the predicate is *truly*
true; ``None`` is falsy in Python, so call sites that test truthiness
reject unknown rows for free.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.engine import vector
from repro.errors import PlanningError

if TYPE_CHECKING:
    from repro.engine.rows import ColumnBatch

Row = tuple
RowFn = Callable[[Row], object]
#: A compiled batch kernel: ColumnBatch -> list of per-row values.
BatchFn = Callable[["ColumnBatch"], list]

_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable[[object, object], object]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expression:
    """Base class for all expressions."""

    def bind(self, columns: Sequence[str]) -> RowFn:
        """Compile this expression against *columns*, returning row -> value."""
        raise NotImplementedError

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        """Compile a vectorized kernel: ColumnBatch -> list of values.

        Semantically equivalent to mapping the scalar :meth:`bind`
        callable over the batch's rows (that is also the default
        implementation); subclasses override with columnar kernels.
        """
        scalar = self.bind(columns)

        def evaluate(batch: "ColumnBatch") -> list:
            return [scalar(row) for row in batch.iter_rows()]

        return evaluate

    def referenced_columns(self) -> tuple[str, ...]:
        """Column names referenced by this expression (possibly abbreviated)."""
        return ()

    # Operator sugar so plans read naturally: col("a") == 3, col("x") + 1 ...
    def __eq__(self, other: object):  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return Comparison("!=", self, _wrap(other))

    def __lt__(self, other: object):
        return Comparison("<", self, _wrap(other))

    def __le__(self, other: object):
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other: object):
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other: object):
        return Comparison(">=", self, _wrap(other))

    def __add__(self, other: object):
        return Arithmetic("+", self, _wrap(other))

    def __radd__(self, other: object):
        return Arithmetic("+", _wrap(other), self)

    def __sub__(self, other: object):
        return Arithmetic("-", self, _wrap(other))

    def __rsub__(self, other: object):
        return Arithmetic("-", _wrap(other), self)

    def __mul__(self, other: object):
        return Arithmetic("*", self, _wrap(other))

    def __rmul__(self, other: object):
        return Arithmetic("*", _wrap(other), self)

    def __truediv__(self, other: object):
        return Arithmetic("/", self, _wrap(other))

    def __hash__(self):
        return id(self)


def _wrap(value: object) -> "Expression":
    if isinstance(value, Expression):
        return value
    return Literal(value)


@dataclass(eq=False)
class ColumnRef(Expression):
    """Reference to a column by (possibly qualified) name."""

    name: str

    def bind(self, columns: Sequence[str]) -> RowFn:
        position = resolve_column(self.name, columns)
        return lambda row: row[position]

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        position = resolve_column(self.name, columns)
        return lambda batch: batch.columns[position]

    def referenced_columns(self) -> tuple[str, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(eq=False)
class Literal(Expression):
    """A constant value."""

    value: object

    def bind(self, columns: Sequence[str]) -> RowFn:
        value = self.value
        return lambda row: value

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        value = self.value
        return lambda batch: [value] * batch.length

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(eq=False)
class Comparison(Expression):
    """Binary comparison producing a boolean."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PlanningError(f"unknown comparison operator {self.op!r}")

    def bind(self, columns: Sequence[str]) -> RowFn:
        compare = _COMPARATORS[self.op]
        left = self.left.bind(columns)
        right = self.right.bind(columns)

        def evaluate(row: Row) -> object:
            lhs = left(row)
            if lhs is None:
                return None
            rhs = right(row)
            if rhs is None:
                return None
            return compare(lhs, rhs)

        return evaluate

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        compare = _COMPARATORS[self.op]
        left = self.left.bind_batch(columns)
        right = self.right.bind_batch(columns)

        def evaluate(batch: "ColumnBatch") -> list:
            lhs = left(batch)
            rhs = right(batch)
            if vector.numpy_enabled():
                larr = vector.as_numeric_array(lhs)
                if larr is not None:
                    rarr = vector.as_numeric_array(rhs)
                    # Same kind category only: int64-vs-float comparison
                    # in numpy rounds through float64, Python compares
                    # exactly, so mixed kinds take the scalar path.
                    if rarr is not None and (
                        (larr.dtype.kind == "f") == (rarr.dtype.kind == "f")
                    ):
                        return compare(larr, rarr).tolist()
            if None in lhs or None in rhs:
                return [
                    None if (a is None or b is None) else compare(a, b)
                    for a, b in zip(lhs, rhs)
                ]
            return list(map(compare, lhs, rhs))

        return evaluate

    def referenced_columns(self) -> tuple[str, ...]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class Arithmetic(Expression):
    """Binary arithmetic over numeric values."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise PlanningError(f"unknown arithmetic operator {self.op!r}")

    def bind(self, columns: Sequence[str]) -> RowFn:
        apply = _ARITHMETIC[self.op]
        left = self.left.bind(columns)
        right = self.right.bind(columns)

        def evaluate(row: Row) -> object:
            lhs = left(row)
            if lhs is None:
                return None
            rhs = right(row)
            if rhs is None:
                return None
            try:
                return apply(lhs, rhs)
            except ZeroDivisionError:
                return None

        return evaluate

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        apply = _ARITHMETIC[self.op]
        left = self.left.bind_batch(columns)
        right = self.right.bind_batch(columns)
        # Division stays pure Python (ZeroDivisionError -> NULL); int
        # ops stay pure Python (numpy int64 wraps, Python ints do not).
        # Float +,-,* are IEEE-identical in both, so numpy is safe there.
        numpy_ok = self.op in ("+", "-", "*")

        def evaluate(batch: "ColumnBatch") -> list:
            lhs = left(batch)
            rhs = right(batch)
            if numpy_ok and vector.numpy_enabled():
                larr = vector.as_numeric_array(lhs)
                if larr is not None and larr.dtype.kind == "f":
                    rarr = vector.as_numeric_array(rhs)
                    if rarr is not None and rarr.dtype.kind == "f":
                        return apply(larr, rarr).tolist()
            if None in lhs or None in rhs or not numpy_ok:
                out = []
                for a, b in zip(lhs, rhs):
                    if a is None or b is None:
                        out.append(None)
                    else:
                        try:
                            out.append(apply(a, b))
                        except ZeroDivisionError:
                            out.append(None)
                return out
            return list(map(apply, lhs, rhs))

        return evaluate

    def referenced_columns(self) -> tuple[str, ...]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class BooleanOp(Expression):
    """AND / OR over boolean sub-expressions."""

    op: str  # "and" | "or"
    operands: tuple[Expression, ...]

    def bind(self, columns: Sequence[str]) -> RowFn:
        bound = [operand.bind(columns) for operand in self.operands]
        if self.op == "and":

            def conjunction(row: Row) -> object:
                unknown = False
                for fn in bound:
                    value = fn(row)
                    if value is None:
                        unknown = True
                    elif not value:
                        return False
                return None if unknown else True

            return conjunction
        if self.op == "or":

            def disjunction(row: Row) -> object:
                unknown = False
                for fn in bound:
                    value = fn(row)
                    if value is None:
                        unknown = True
                    elif value:
                        return True
                return None if unknown else False

            return disjunction
        raise PlanningError(f"unknown boolean operator {self.op!r}")

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        bound = [operand.bind_batch(columns) for operand in self.operands]
        if self.op == "and":

            def conjunction(batch: "ColumnBatch") -> list:
                operand_values = [fn(batch) for fn in bound]
                if not any(None in values for values in operand_values):
                    # Two-valued fast path: plain all() per row.
                    return [all(values) for values in zip(*operand_values)]
                out = []
                for values in zip(*operand_values):
                    unknown = False
                    result: object = True
                    for value in values:
                        if value is None:
                            unknown = True
                        elif not value:
                            result = False
                            break
                    if result:
                        result = None if unknown else True
                    out.append(result)
                return out

            return conjunction
        if self.op == "or":

            def disjunction(batch: "ColumnBatch") -> list:
                operand_values = [fn(batch) for fn in bound]
                if not any(None in values for values in operand_values):
                    # Two-valued fast path: plain any() per row.
                    return [any(values) for values in zip(*operand_values)]
                out = []
                for values in zip(*operand_values):
                    unknown = False
                    result: object = False
                    for value in values:
                        if value is None:
                            unknown = True
                        elif value:
                            result = True
                            break
                    if not result:
                        result = None if unknown else False
                    out.append(result)
                return out

            return disjunction
        raise PlanningError(f"unknown boolean operator {self.op!r}")

    def referenced_columns(self) -> tuple[str, ...]:
        names: tuple[str, ...] = ()
        for operand in self.operands:
            names += operand.referenced_columns()
        return names

    def __repr__(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(repr(op) for op in self.operands) + ")"


@dataclass(eq=False)
class Negation(Expression):
    """Logical NOT."""

    operand: Expression

    def bind(self, columns: Sequence[str]) -> RowFn:
        bound = self.operand.bind(columns)

        def evaluate(row: Row) -> object:
            value = bound(row)
            if value is None:
                return None
            return not value

        return evaluate

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        bound = self.operand.bind_batch(columns)

        def evaluate(batch: "ColumnBatch") -> list:
            return [
                None if value is None else not value for value in bound(batch)
            ]

        return evaluate

    def referenced_columns(self) -> tuple[str, ...]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


@dataclass(eq=False)
class IsNull(Expression):
    """NULL test (``IS NULL`` / ``IS NOT NULL``)."""

    operand: Expression
    negated: bool = False

    def bind(self, columns: Sequence[str]) -> RowFn:
        bound = self.operand.bind(columns)
        if self.negated:
            return lambda row: bound(row) is not None
        return lambda row: bound(row) is None

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        bound = self.operand.bind_batch(columns)
        if self.negated:
            return lambda batch: [v is not None for v in bound(batch)]
        return lambda batch: [v is None for v in bound(batch)]

    def referenced_columns(self) -> tuple[str, ...]:
        return self.operand.referenced_columns()


@dataclass(eq=False)
class InList(Expression):
    """Membership test against a literal list."""

    operand: Expression
    values: tuple
    negated: bool = False

    def bind(self, columns: Sequence[str]) -> RowFn:
        bound = self.operand.bind(columns)
        values = frozenset(v for v in self.values if v is not None)
        has_null = any(v is None for v in self.values)

        def membership(row: Row) -> object:
            value = bound(row)
            if value is None:
                # x IN () is vacuously false even for NULL x; otherwise a
                # NULL operand makes every equality unknown.
                return None if (values or has_null) else False
            if value in values:
                return True
            return None if has_null else False

        if self.negated:

            def negated_membership(row: Row) -> object:
                result = membership(row)
                if result is None:
                    return None
                return not result

            return negated_membership
        return membership

    def bind_batch(self, columns: Sequence[str]) -> BatchFn:
        bound = self.operand.bind_batch(columns)
        values = frozenset(v for v in self.values if v is not None)
        null_result = None if (values or any(v is None for v in self.values)) else False
        miss_result = None if any(v is None for v in self.values) else False
        negated = self.negated

        def membership(batch: "ColumnBatch") -> list:
            out = []
            for value in bound(batch):
                if value is None:
                    result = null_result
                elif value in values:
                    result = True
                else:
                    result = miss_result
                if negated and result is not None:
                    result = not result
                out.append(result)
            return out

        return membership

    def referenced_columns(self) -> tuple[str, ...]:
        return self.operand.referenced_columns()


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def and_(*operands: Expression) -> Expression:
    """Conjunction of one or more boolean expressions."""
    if len(operands) == 1:
        return operands[0]
    return BooleanOp("and", tuple(operands))


def or_(*operands: Expression) -> Expression:
    """Disjunction of one or more boolean expressions."""
    if len(operands) == 1:
        return operands[0]
    return BooleanOp("or", tuple(operands))


def not_(operand: Expression) -> Negation:
    """Logical negation."""
    return Negation(operand)


def resolve_column(name: str, columns: Sequence[str]) -> int:
    """Resolve a (possibly abbreviated) column name to a position.

    Exact matches win; otherwise ``name`` matches a single column whose
    qualified name ends with ``.name``.

    Raises:
        PlanningError: If the name is unknown or ambiguous.
    """
    try:
        if not isinstance(columns, list):
            columns = list(columns)
        return columns.index(name)
    except ValueError:
        pass
    suffix = "." + name
    matches = [
        position
        for position, column in enumerate(columns)
        if column.endswith(suffix)
    ]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise PlanningError(
            f"unknown column {name!r}; available: {list(columns)}"
        )
    raise PlanningError(
        f"ambiguous column {name!r} matches "
        f"{[columns[m] for m in matches]}"
    )
