"""A compact append-only bitmap used for the PREF ``dup``/``hasS`` indexes.

Paper Section 2.1 attaches two bitmap indexes to every PREF-partitioned
table: ``dup`` marks duplicate copies introduced by PREF partitioning and
``hasS`` marks tuples that have a partitioning partner in the referenced
table.  Bits are stored packed, eight per byte.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Bitmap:
    """A growable sequence of bits with list-like access."""

    __slots__ = ("_bytes", "_length")

    def __init__(self, bits: Iterable[bool] = ()) -> None:
        self._bytes = bytearray()
        self._length = 0
        for bit in bits:
            self.append(bit)

    @classmethod
    def zeros(cls, length: int) -> "Bitmap":
        """Return a bitmap of *length* cleared bits."""
        bitmap = cls()
        bitmap._bytes = bytearray((length + 7) // 8)
        bitmap._length = length
        return bitmap

    def append(self, bit: bool) -> None:
        """Append one bit."""
        length = self._length
        byte_index = length >> 3
        if byte_index == len(self._bytes):
            self._bytes.append(0)
        if bit:
            self._bytes[byte_index] |= 1 << (length & 7)
        self._length = length + 1

    def extend(self, bits: Iterable[bool]) -> None:
        """Append several bits."""
        for bit in bits:
            self.append(bit)

    def __getitem__(self, index: int) -> bool:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("bitmap index out of range")
        byte_index, bit_index = divmod(index, 8)
        return bool(self._bytes[byte_index] >> bit_index & 1)

    def __setitem__(self, index: int, bit: bool) -> None:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("bitmap index out of range")
        byte_index, bit_index = divmod(index, 8)
        if bit:
            self._bytes[byte_index] |= 1 << bit_index
        else:
            self._bytes[byte_index] &= ~(1 << bit_index)

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[bool]:
        for index in range(self._length):
            yield self[index]

    def count(self) -> int:
        """Number of set bits."""
        total = sum(_POPCOUNT[byte] for byte in self._bytes)
        return total

    def tolist(self) -> list[int]:
        """All bits as a list of 0/1 ints, decoded a byte at a time.

        Batch scans attach a whole bitmap as a column; decoding through
        the per-byte table is ~20x cheaper than ``__getitem__`` per bit.
        """
        out: list[int] = []
        for byte in self._bytes:
            out.extend(_UNPACK[byte])
        del out[self._length:]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._length == other._length and list(self) == list(other)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        shown = "".join("1" if bit else "0" for bit in list(self)[:32])
        suffix = "..." if self._length > 32 else ""
        return f"Bitmap({shown}{suffix}, len={self._length})"


_POPCOUNT = [bin(value).count("1") for value in range(256)]
_UNPACK = [
    tuple(value >> bit & 1 for bit in range(8)) for value in range(256)
]
