"""Partitioned tables and databases (the ``DP`` of the paper).

A :class:`PartitionedTable` is the result of applying a partitioning scheme
to a base table: ``partition_count`` :class:`~repro.storage.partition.Partition`
objects, plus cached partition indexes, plus — for PREF tables — a pointer to
the scheme's seed table (the first non-PREF table along the chain of
partitioning predicates, paper Definition 1).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from repro.catalog.schema import TableSchema
from repro.errors import StorageError, UnknownObjectError
from repro.partitioning.scheme import PartitioningScheme, SchemeKind
from repro.storage.partition import Partition
from repro.storage.partition_index import PartitionIndex

Row = tuple


class PartitionedTable:
    """A table split into partitions under one partitioning scheme."""

    def __init__(
        self,
        schema: TableSchema,
        scheme: PartitioningScheme,
        partition_count: int,
        seed_table: str | None = None,
    ) -> None:
        if partition_count < 1:
            raise StorageError("partition_count must be >= 1")
        self.schema = schema
        self.scheme = scheme
        self.partition_count = partition_count
        #: Name of the seed table of this table's PREF chain.  For seed
        #: schemes this is the table itself.
        self.seed_table = seed_table if seed_table is not None else schema.name
        self.partitions: list[Partition] = [
            Partition(partition_id) for partition_id in range(partition_count)
        ]
        self._indexes: dict[tuple[str, ...], PartitionIndex] = {}
        self._next_source_id = 0
        #: For PREF tables whose chain predicates compose into a functional
        #: mapping from own columns to the seed's hash key (classic REF
        #: chains), the verified columns this table is effectively
        #: hash-placed on.  Lets the rewriter treat chain joins as local.
        self.effective_hash: tuple[str, ...] | None = None
        #: Patched-PREF exception lists: destination partition id -> rows
        #: that *logically* belong there (a partner lives there) but whose
        #: stored duplication was capped at the scheme's ``max_copies``.
        #: They are delivered by a residual shuffle at scan time.
        self.patches: dict[int, list[tuple[Row, int]]] = {}
        #: Reverse map: source id -> overflow partition ids it was patched
        #: into (for invariant checks and incremental maintenance).
        self._patch_sources: dict[int, set[int]] = {}

    @property
    def name(self) -> str:
        """The table name."""
        return self.schema.name

    @property
    def is_pref(self) -> bool:
        """True if this table is PREF partitioned."""
        return self.scheme.kind is SchemeKind.PREF

    @property
    def is_replicated(self) -> bool:
        """True if this table is fully replicated."""
        return self.scheme.kind is SchemeKind.REPLICATED

    # -- source ids ---------------------------------------------------------

    def allocate_source_id(self) -> int:
        """Reserve a fresh global id for a new base tuple."""
        source_id = self._next_source_id
        self._next_source_id += 1
        return source_id

    # -- patched-PREF exception lists ----------------------------------------

    def add_patch(self, partition_id: int, row: Row, source_id: int) -> None:
        """Record an overflow copy: *row* has a partner in *partition_id*
        but its stored duplication is capped, so the copy is delivered by
        the residual shuffle instead of being stored."""
        self.patches.setdefault(partition_id, []).append((row, source_id))
        self._patch_sources.setdefault(source_id, set()).add(partition_id)

    def patches_for(self, partition_id: int) -> list[tuple[Row, int]]:
        """Patch-list entries destined for *partition_id* (may be empty)."""
        return self.patches.get(partition_id, [])

    def patch_partitions_of(self, source_id: int) -> frozenset[int]:
        """Overflow partition ids the base tuple *source_id* was patched to."""
        return frozenset(self._patch_sources.get(source_id, ()))

    def replace_patches(
        self, patches: dict[int, list[tuple[Row, int]]]
    ) -> None:
        """Replace the patch lists wholesale, rebuilding the reverse map."""
        self.patches = {
            partition_id: entries
            for partition_id, entries in patches.items()
            if entries
        }
        self._patch_sources = {}
        for partition_id, entries in self.patches.items():
            for _row, source_id in entries:
                self._patch_sources.setdefault(source_id, set()).add(
                    partition_id
                )

    @property
    def patch_count(self) -> int:
        """Total patch-list entries across all destination partitions."""
        return sum(len(entries) for entries in self.patches.values())

    def stored_copy_counts(self) -> dict[int, int]:
        """Stored (non-patch) copies per source id, for redundancy audits."""
        counts: dict[int, int] = {}
        for partition in self.partitions:
            for source_id in partition.source_ids:
                counts[source_id] = counts.get(source_id, 0) + 1
        return counts

    # -- size accounting -----------------------------------------------------

    @property
    def total_rows(self) -> int:
        """Stored rows across all partitions, counting duplicates (|T^P|)."""
        return sum(partition.row_count for partition in self.partitions)

    @property
    def canonical_row_count(self) -> int:
        """Number of distinct base tuples stored (dup bit == 0)."""
        return self.total_rows - self.duplicate_count

    @property
    def duplicate_count(self) -> int:
        """Number of rows that are PREF/replication duplicates."""
        return sum(partition.duplicate_count for partition in self.partitions)

    @property
    def has_governing_duplicates(self) -> bool:
        """True if scans of this table must carry a governing dup bit.

        Stored duplicate copies and patch-list deliveries both arrive at
        scan time with the hidden dup column set, so either makes the
        duplicate bit load-bearing for downstream dedup reasoning.
        """
        return bool(self.duplicate_count or self.patch_count)

    @property
    def byte_size(self) -> int:
        """Nominal stored size in bytes, counting duplicates."""
        return self.total_rows * self.schema.row_byte_width

    @property
    def max_partition_rows(self) -> int:
        """Rows in the fullest partition (per-node storage/scan proxy)."""
        return max(partition.row_count for partition in self.partitions)

    # -- partition indexes ----------------------------------------------------

    def partition_index(self, columns: Sequence[str]) -> PartitionIndex:
        """Return (building and caching on demand) a partition index.

        The index maps each distinct value of *columns* to every partition
        that stores a row (including duplicate copies) with that value —
        exactly the structure paper Section 2.3 uses for bulk loading.
        """
        key = tuple(columns)
        index = self._indexes.get(key)
        if index is None:
            index = PartitionIndex(key)
            positions = self.schema.positions(key)
            extract = _key_extractor(positions)
            for partition in self.partitions:
                index.add_all(
                    (extract(row) for row in partition.rows),
                    partition.partition_id,
                )
            self._indexes[key] = index
        return index

    def invalidate_indexes(self) -> None:
        """Drop cached partition indexes (after non-incremental mutation)."""
        self._indexes.clear()

    def key_partitions(self, columns: Sequence[str], key: Hashable) -> frozenset[int]:
        """Partitions containing *key* under *columns* (via the index)."""
        return self.partition_index(columns).partitions_of(key)

    # -- iteration -------------------------------------------------------------

    def all_rows(self) -> Iterator[Row]:
        """Iterate over every stored row copy, partition by partition."""
        for partition in self.partitions:
            yield from partition.rows

    def canonical_rows(self) -> Iterator[Row]:
        """Iterate over one copy of every base tuple (dup bit == 0)."""
        for partition in self.partitions:
            yield from partition.canonical_rows()

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"PartitionedTable({self.name!r}, {self.scheme.kind.value}, "
            f"{self.partition_count} partitions, {self.total_rows} rows)"
        )


class PartitionedDatabase:
    """The partitioned database ``DP``: partitioned tables plus cluster size."""

    def __init__(self, partition_count: int) -> None:
        if partition_count < 1:
            raise StorageError("partition_count must be >= 1")
        self.partition_count = partition_count
        self._tables: dict[str, PartitionedTable] = {}

    def add_table(self, table: PartitionedTable) -> PartitionedTable:
        """Register a partitioned table (partition counts must agree)."""
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} already partitioned")
        if table.partition_count != self.partition_count:
            raise StorageError(
                f"table {table.name!r} has {table.partition_count} partitions, "
                f"database has {self.partition_count}"
            )
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> PartitionedTable:
        """Return the partitioned table called *name*."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownObjectError(f"no partitioned table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Return ``True`` if *name* has been partitioned into this database."""
        return name in self._tables

    @property
    def tables(self) -> Mapping[str, PartitionedTable]:
        """Read-only view of the partitioned tables by name."""
        return dict(self._tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        """All partitioned table names."""
        return tuple(self._tables)

    @property
    def total_rows(self) -> int:
        """Stored rows over all tables, counting duplicates (|DP|)."""
        return sum(table.total_rows for table in self._tables.values())

    @property
    def canonical_rows(self) -> int:
        """Distinct base tuples over all tables (should equal |D|)."""
        return sum(table.canonical_row_count for table in self._tables.values())

    def data_redundancy(self) -> float:
        """DR = |DP| / |D| - 1 (paper Section 3.3), with |D| = canonical rows."""
        base = self.canonical_rows
        if base == 0:
            return 0.0
        return self.total_rows / base - 1.0

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"PartitionedDatabase({len(self._tables)} tables, "
            f"{self.partition_count} partitions, {self.total_rows} rows)"
        )


def _key_extractor(positions: tuple[int, ...]):
    """Row -> key function; scalars for single columns, tuples otherwise."""
    if len(positions) == 1:
        position = positions[0]
        return lambda row: row[position]
    return lambda row: tuple(row[position] for position in positions)
