"""Row-oriented in-memory tables and databases (the unpartitioned store).

Tables hold rows as plain Python tuples aligned with their
:class:`~repro.catalog.schema.TableSchema`.  This is the ``D`` of the paper:
the non-partitioned database that the design algorithms and the partitioner
take as input, and that the reference executor runs against when
cross-checking distributed results.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.catalog.schema import DatabaseSchema, TableSchema
from repro.catalog.statistics import FrequencyHistogram, build_histogram
from repro.errors import RowShapeError, UnknownObjectError

Row = tuple


class Table:
    """A named collection of rows conforming to a :class:`TableSchema`."""

    def __init__(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence] = (),
        validate: bool = False,
    ) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        self.extend(rows, validate=validate)

    @property
    def name(self) -> str:
        """The table name (from its schema)."""
        return self.schema.name

    @property
    def rows(self) -> list[Row]:
        """The rows, in insertion order.  Treat as read-only."""
        return self._rows

    def append(self, row: Sequence, validate: bool = False) -> None:
        """Append one row, optionally validating shape and types."""
        row = tuple(row)
        if validate:
            self._validate(row)
        self._rows.append(row)

    def extend(self, rows: Iterable[Sequence], validate: bool = False) -> None:
        """Append many rows."""
        if validate:
            for row in rows:
                self.append(row, validate=True)
        else:
            self._rows.extend(tuple(row) for row in rows)

    def _validate(self, row: Row) -> None:
        if len(row) != len(self.schema):
            raise RowShapeError(
                f"table {self.name!r}: row has {len(row)} values, "
                f"schema has {len(self.schema)} columns"
            )
        for value, column in zip(row, self.schema.columns):
            if not column.accepts(value):
                raise RowShapeError(
                    f"table {self.name!r}: value {value!r} is not legal for "
                    f"column {column}"
                )

    def column_values(self, column: str) -> list:
        """All values of *column*, in row order."""
        position = self.schema.position(column)
        return [row[position] for row in self._rows]

    def key_values(self, columns: Sequence[str]) -> list:
        """Values of a (possibly composite) key.

        Single-column keys come back as scalars, composite keys as tuples,
        matching how join keys are hashed throughout the library.
        """
        positions = self.schema.positions(columns)
        if len(positions) == 1:
            position = positions[0]
            return [row[position] for row in self._rows]
        return [tuple(row[position] for position in positions) for row in self._rows]

    def histogram(
        self,
        columns: Sequence[str],
        sampling_rate: float = 1.0,
        seed: int = 0,
    ) -> FrequencyHistogram:
        """Frequency histogram of a (composite) key, optionally sampled."""
        return build_histogram(
            self.key_values(columns), sampling_rate=sampling_rate, seed=seed
        )

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return len(self._rows)

    @property
    def byte_size(self) -> int:
        """Nominal size in bytes (rows x schema row width)."""
        return self.row_count * self.schema.row_byte_width

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"Table({self.name!r}, {self.row_count} rows)"


class Database:
    """The unpartitioned database ``D``: a schema plus one Table per name."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._tables: dict[str, Table] = {
            name: Table(table_schema)
            for name, table_schema in schema.tables.items()
        }

    def table(self, name: str) -> Table:
        """Return the table called *name*."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownObjectError(f"no table {name!r}") from None

    @property
    def tables(self) -> Mapping[str, Table]:
        """Read-only view of the tables by name."""
        return dict(self._tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        """All table names."""
        return tuple(self._tables)

    def load(self, name: str, rows: Iterable[Sequence], validate: bool = False) -> None:
        """Bulk-append rows into table *name*."""
        self.table(name).extend(rows, validate=validate)

    @property
    def total_rows(self) -> int:
        """Total row count across all tables (|D| in the paper)."""
        return sum(table.row_count for table in self._tables.values())

    def table_sizes(self) -> dict[str, int]:
        """Row counts by table name (edge weights of the schema graph)."""
        return {name: table.row_count for name, table in self._tables.items()}

    def map_tables(self, fn: Callable[[Table], int]) -> dict[str, int]:
        """Apply *fn* to every table, returning results by name."""
        return {name: fn(table) for name, table in self._tables.items()}

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"Database({len(self._tables)} tables, {self.total_rows} rows)"
