"""A single horizontal partition of a table, with PREF bookkeeping.

Each partition stores its rows plus three parallel structures:

* ``source_ids`` — the global id of the base tuple each stored row is a copy
  of.  PREF partitioning may place copies of the same base tuple in several
  partitions; all copies share a source id.  This is what lets tests prove
  that duplicate elimination keeps exactly one copy of every logical row.
* ``dup`` — the paper's first bitmap index: 0 for the canonical (first)
  occurrence of a base tuple across all partitions, 1 for every other copy.
* ``has_partner`` — the paper's ``hasS`` bitmap index: 1 if the tuple has at
  least one partitioning partner in the referenced table (drives the
  semi-/anti-join rewrites of Section 2.2).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.storage.bitmap import Bitmap

Row = tuple


class Partition:
    """Rows of one partition plus the PREF bitmap indexes."""

    __slots__ = (
        "partition_id",
        "rows",
        "source_ids",
        "dup",
        "has_partner",
        "_columnar",
        "_bitmap_lists",
    )

    def __init__(self, partition_id: int) -> None:
        self.partition_id = partition_id
        self.rows: list[Row] = []
        self.source_ids: list[int] = []
        self.dup = Bitmap()
        self.has_partner = Bitmap()
        self._columnar: list[list] | None = None
        self._bitmap_lists: tuple[list[int], list[int]] | None = None

    def append(
        self,
        row: Sequence,
        source_id: int,
        duplicate: bool = False,
        has_partner: bool = True,
    ) -> None:
        """Store one (copy of a) tuple in this partition."""
        self.rows.append(tuple(row))
        self.source_ids.append(source_id)
        self.dup.append(duplicate)
        self.has_partner.append(has_partner)
        self._columnar = None
        self._bitmap_lists = None

    def invalidate_caches(self) -> None:
        """Drop the derived columnar/bitmap caches.

        Must be called after any in-place mutation of ``rows``,
        ``source_ids``, ``dup`` or ``has_partner`` performed outside
        :meth:`append` (bulk-load updates, deletes, hasS maintenance) —
        otherwise scans keep serving the stale transpose.
        """
        self._columnar = None
        self._bitmap_lists = None

    def columnar(self) -> list[list]:
        """The rows transposed into per-column value lists, cached.

        Scans re-read the same immutable partitions on every query, so
        the transpose is paid once per load, not once per scan.  Callers
        must treat the returned columns as read-only (the engine's
        batches alias, never mutate).  Only non-empty partitions are
        served from here: an empty row list carries no width.
        """
        cached = self._columnar
        if cached is None:
            cached = self._columnar = [
                list(column) for column in zip(*self.rows)
            ]
        return cached

    def bitmap_lists(self) -> tuple[list[int], list[int]]:
        """The ``dup`` / ``has_partner`` bitmaps as 0/1 lists, cached."""
        cached = self._bitmap_lists
        if cached is None:
            cached = self._bitmap_lists = (
                self.dup.tolist(),
                self.has_partner.tolist(),
            )
        return cached

    def __getstate__(self) -> tuple:
        # The caches are derived data: drop them from pickles so shipping
        # a partition to a pool worker does not double its payload.
        return (
            self.partition_id,
            self.rows,
            self.source_ids,
            self.dup,
            self.has_partner,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.partition_id,
            self.rows,
            self.source_ids,
            self.dup,
            self.has_partner,
        ) = state
        self._columnar = None
        self._bitmap_lists = None

    @property
    def row_count(self) -> int:
        """Number of stored rows (counting duplicates)."""
        return len(self.rows)

    @property
    def duplicate_count(self) -> int:
        """Number of rows flagged as PREF duplicates."""
        return self.dup.count()

    def canonical_rows(self) -> Iterator[Row]:
        """Yield only rows whose ``dup`` bit is 0."""
        for index, row in enumerate(self.rows):
            if not self.dup[index]:
                yield row

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"Partition(id={self.partition_id}, rows={self.row_count}, "
            f"dups={self.duplicate_count})"
        )
