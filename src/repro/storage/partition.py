"""A single horizontal partition of a table, with PREF bookkeeping.

Each partition stores its rows plus three parallel structures:

* ``source_ids`` — the global id of the base tuple each stored row is a copy
  of.  PREF partitioning may place copies of the same base tuple in several
  partitions; all copies share a source id.  This is what lets tests prove
  that duplicate elimination keeps exactly one copy of every logical row.
* ``dup`` — the paper's first bitmap index: 0 for the canonical (first)
  occurrence of a base tuple across all partitions, 1 for every other copy.
* ``has_partner`` — the paper's ``hasS`` bitmap index: 1 if the tuple has at
  least one partitioning partner in the referenced table (drives the
  semi-/anti-join rewrites of Section 2.2).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.storage.bitmap import Bitmap

Row = tuple


class Partition:
    """Rows of one partition plus the PREF bitmap indexes."""

    __slots__ = ("partition_id", "rows", "source_ids", "dup", "has_partner")

    def __init__(self, partition_id: int) -> None:
        self.partition_id = partition_id
        self.rows: list[Row] = []
        self.source_ids: list[int] = []
        self.dup = Bitmap()
        self.has_partner = Bitmap()

    def append(
        self,
        row: Sequence,
        source_id: int,
        duplicate: bool = False,
        has_partner: bool = True,
    ) -> None:
        """Store one (copy of a) tuple in this partition."""
        self.rows.append(tuple(row))
        self.source_ids.append(source_id)
        self.dup.append(duplicate)
        self.has_partner.append(has_partner)

    @property
    def row_count(self) -> int:
        """Number of stored rows (counting duplicates)."""
        return len(self.rows)

    @property
    def duplicate_count(self) -> int:
        """Number of rows flagged as PREF duplicates."""
        return self.dup.count()

    def canonical_rows(self) -> Iterator[Row]:
        """Yield only rows whose ``dup`` bit is 0."""
        for index, row in enumerate(self.rows):
            if not self.dup[index]:
                yield row

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"Partition(id={self.partition_id}, rows={self.row_count}, "
            f"dups={self.duplicate_count})"
        )
