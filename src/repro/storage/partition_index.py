"""Partition indexes: hash maps from key values to partition ids.

Paper Section 2.3 introduces a *partition index* on the referenced attribute
of a PREF scheme so that bulk loading a referencing table can look up the
target partitions of each new tuple without executing a join against the
referenced table.  The same structure is what the partitioner itself uses to
apply a PREF scheme in the first place.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

Row = tuple


class PartitionIndex:
    """Maps each distinct key value to the set of partitions containing it."""

    __slots__ = ("columns", "_entries")

    def __init__(self, columns: tuple[str, ...]) -> None:
        self.columns = columns
        self._entries: dict[Hashable, set[int]] = {}

    def add(self, key: Hashable, partition_id: int) -> None:
        """Record that *key* occurs in *partition_id*."""
        self._entries.setdefault(key, set()).add(partition_id)

    def add_all(self, keys: Iterable[Hashable], partition_id: int) -> None:
        """Record many keys for one partition (bulk-load fast path)."""
        entries = self._entries
        for key in keys:
            entries.setdefault(key, set()).add(partition_id)

    def partitions_of(self, key: Hashable) -> frozenset[int]:
        """Partitions containing *key* (empty if the key is unknown)."""
        found = self._entries.get(key)
        return frozenset(found) if found else frozenset()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[tuple[Hashable, frozenset[int]]]:
        """Iterate over (key, partition set) pairs."""
        for key, partitions in self._entries.items():
            yield key, frozenset(partitions)

    def as_mapping(self) -> Mapping[Hashable, frozenset[int]]:
        """A snapshot copy of the index contents."""
        return {key: frozenset(parts) for key, parts in self._entries.items()}

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"PartitionIndex(columns={self.columns}, keys={len(self)})"
