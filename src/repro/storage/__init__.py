"""Storage: unpartitioned tables, partitions, bitmaps, partition indexes."""

from repro.storage.bitmap import Bitmap
from repro.storage.partition import Partition
from repro.storage.partition_index import PartitionIndex
from repro.storage.partitioned import PartitionedDatabase, PartitionedTable
from repro.storage.table import Database, Table

__all__ = [
    "Bitmap",
    "Database",
    "Partition",
    "PartitionIndex",
    "PartitionedDatabase",
    "PartitionedTable",
    "Table",
]
