"""Dependency-free blocked Bloom filters for predicate transfer.

A filter is a list of 64-bit blocks; every key maps to exactly one block
and sets ``k`` bits inside it (register-blocked layout, one cache line of
one in this simulation).  Hashing is anchored on
:func:`repro.partitioning.scheme.stable_hash`, the engine's
process-stable hash, so a filter built from the same key set is
bit-identical on every backend and in every worker process.

Blocked filters trade a slightly worse false-positive rate for probe
locality; sizing inflates the classic Bloom bit budget to compensate, so
the measured FPR stays at or below the requested target.  NULL keys are
never inserted and never probed: under SQL three-valued logic a NULL
join key matches nothing, so ``might_contain`` reports False for them
and pruning the carrying row is sound.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.partitioning.scheme import key_has_null, stable_hash

_MASK64 = (1 << 64) - 1
_BLOCK_BITS = 64
_LN2 = math.log(2.0)
#: Bit-budget inflation compensating the blocked layout's FPR penalty.
_BLOCKED_INFLATION = 1.5


def validate_bloom_params(fpr: float, capacity: int | None = None) -> None:
    """Reject unusable Bloom parameters with a clear :class:`ValueError`.

    Mirrors the executor's ``batch_size < 1`` boundary check: a target
    false-positive rate must be a finite probability strictly between 0
    and 1, and a capacity (when given) a positive integer.
    """
    if isinstance(fpr, bool) or not isinstance(fpr, (int, float)):
        raise ValueError(f"bloom_fpr must be a real number, got {fpr!r}")
    if not math.isfinite(fpr) or not 0.0 < float(fpr) < 1.0:
        raise ValueError(
            f"bloom_fpr must be a finite value in (0, 1), got {fpr!r}"
        )
    if capacity is not None:
        if isinstance(capacity, bool) or not isinstance(capacity, int):
            raise ValueError(
                f"bloom capacity must be an integer, got {capacity!r}"
            )
        if capacity < 1:
            raise ValueError(
                f"bloom capacity must be >= 1, got {capacity}"
            )


def _remix(value: int) -> int:
    """A splitmix64 round decorrelating block choice from in-block bits."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class BloomFilter:
    """A blocked Bloom filter over join-key values.

    Insertion order never changes the bit pattern (set-bits OR
    commutatively), so two filters built from the same key *set* are
    equal — the property the cross-process determinism tests pin.
    """

    __slots__ = ("blocks", "block_count", "k", "capacity", "fpr")

    def __init__(self, block_count: int, k: int, capacity: int, fpr: float) -> None:
        self.blocks: list[int] = [0] * block_count
        self.block_count = block_count
        self.k = k
        self.capacity = capacity
        self.fpr = fpr

    @classmethod
    def sized(cls, capacity: int, fpr: float) -> "BloomFilter":
        """Size a filter for *capacity* distinct keys at target *fpr*."""
        validate_bloom_params(fpr, capacity)
        # Classic budget m = -n ln p / (ln 2)^2, inflated for blocking,
        # rounded up to whole 64-bit blocks.
        base_bits = -capacity * math.log(fpr) / (_LN2 * _LN2)
        bits = base_bits * _BLOCKED_INFLATION
        block_count = max(1, math.ceil(bits / _BLOCK_BITS))
        k = round(-math.log(fpr) / _LN2)
        k = min(8, max(1, k))
        return cls(block_count, k, capacity, float(fpr))

    def _slot(self, key) -> tuple[int, int]:
        """(block index, bit mask) for a non-NULL key."""
        mixed = _remix(stable_hash(key))
        bit = mixed & 63
        step = ((mixed >> 6) & 63) | 1  # odd => visits distinct bits
        mask = 0
        for _ in range(self.k):
            mask |= 1 << bit
            bit = (bit + step) & 63
        return (mixed >> 32) % self.block_count, mask

    def add(self, key) -> None:
        """Insert one key; NULL (or NULL-bearing composite) keys are skipped."""
        if key is None or key_has_null(key):
            return
        index, mask = self._slot(key)
        self.blocks[index] |= mask

    def add_many(self, keys: Iterable) -> int:
        """Insert many keys, returning how many non-NULL keys were added."""
        added = 0
        for key in keys:
            if key is None or key_has_null(key):
                continue
            index, mask = self._slot(key)
            self.blocks[index] |= mask
            added += 1
        return added

    def might_contain(self, key) -> bool:
        """Probe one key.  NULL keys always answer False (3VL)."""
        if key is None or key_has_null(key):
            return False
        index, mask = self._slot(key)
        return self.blocks[index] & mask == mask

    def probe_many(self, keys: Sequence) -> list[bool]:
        """Vectorized probe over a key column: one boolean per key."""
        blocks = self.blocks
        out = []
        append = out.append
        for key in keys:
            if key is None or key_has_null(key):
                append(False)
                continue
            index, mask = self._slot(key)
            append(blocks[index] & mask == mask)
        return out

    @property
    def bit_count(self) -> int:
        """Total bits in the filter."""
        return self.block_count * _BLOCK_BITS

    @property
    def byte_size(self) -> int:
        """Wire size of the filter payload (what a broadcast ships)."""
        return self.block_count * 8

    def words(self) -> tuple[int, ...]:
        """The raw block words — the bit-identity surface for tests."""
        return tuple(self.blocks)

    def __eq__(self, other) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.block_count == other.block_count
            and self.k == other.k
            and self.blocks == other.blocks
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.block_count, self.k, tuple(self.blocks)))

    def __getstate__(self) -> tuple:
        return (self.blocks, self.block_count, self.k, self.capacity, self.fpr)

    def __setstate__(self, state: tuple) -> None:
        self.blocks, self.block_count, self.k, self.capacity, self.fpr = state

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"BloomFilter(blocks={self.block_count}, k={self.k}, "
            f"capacity={self.capacity}, fpr={self.fpr})"
        )
