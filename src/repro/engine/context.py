"""Thread-safe execution accounting shared by every task of one query.

The monolithic executor used to thread an :class:`ExecutionStats` through
its recursive interpreter and sprinkle ``add_work``/``add_network`` calls
across if-branches.  The engine instead hands every physical-operator task
one :class:`ExecutionContext`: each record lands both in the global
``ExecutionStats`` (so the cost model is unchanged) and in a per-operator
breakdown (so benchmarks can report where the time went), under a single
lock so backends may run tasks from any number of threads.

Join events need one extra rule: the spill model stores them in a list,
and concurrent backends would append them in a nondeterministic order.
The context therefore collects ``(op_id, node, build, probe)`` tuples and
flushes them into ``stats.join_events`` sorted by ``(op_id, node)`` at
:meth:`ExecutionContext.finish`.  Operator ids are assigned in post-order
by the compiler, so the flushed order is exactly the order the serial
interpreter used to produce — backends cannot be told apart by stats.

Backends that run tasks outside the coordinator process cannot share the
context object.  They hand each worker a :class:`ContextDelta` — a
picklable recorder with the same method surface — and merge the deltas
back with :meth:`ExecutionContext.merge_delta`.  Every quantity is an
integer count (work values are row counts stored as floats), so merging
deltas in any order reproduces the serial totals exactly; join events go
through the same deferred-sort path as direct recording.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import ROW_BUCKETS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.operators import PhysicalOperator
    from repro.query.cost import ExecutionStats
    from repro.query.relation import Method


@dataclass
class OperatorStats:
    """Per-operator slice of the global :class:`ExecutionStats`."""

    op_id: int
    label: str
    node_work: list[float]
    network_bytes: int = 0
    rows_shipped: int = 0
    shuffles: int = 0
    partitions_scanned: int = 0
    rows_out: int = 0
    #: Rows dropped by PREF duplicate elimination (dedup operators and
    #: the governing-bitmap skips inside repartition routing).
    dup_eliminated: int = 0
    #: Rows probed against predicate-transfer Bloom filters.
    bloom_probed: int = 0
    #: Rows pruned by predicate-transfer Bloom filters.
    bloom_pruned: int = 0
    #: Patched-PREF patch-list rows delivered by the residual shuffle.
    patch_rows: int = 0
    #: Output partition index -> rows emitted into it, for skew reporting.
    rows_out_by_partition: dict[int, int] = field(default_factory=dict)

    @property
    def total_work(self) -> float:
        """Weighted row operations summed over all nodes."""
        return sum(self.node_work)

    @property
    def max_node_work(self) -> float:
        """Weighted row operations on the operator's busiest node."""
        return max(self.node_work) if self.node_work else 0.0


@dataclass(frozen=True)
class TraceEvent:
    """One completed engine task, reported to the trace hook."""

    op_id: int
    label: str
    phase: str  #: "prepare" | "exchange" | "partition"
    node_id: int | None
    seconds: float
    #: Where the task ran ("pid:<n>" for process-pool workers, a thread
    #: name otherwise).  Excluded from canonical trace comparisons.
    worker: str | None = None


class ContextDelta:
    """A picklable, commutatively mergeable slice of context accounting.

    Worker processes (and any future remote transport) cannot record into
    the coordinator's :class:`ExecutionContext`; they record into one of
    these instead and ship it back with the task results.  The method
    surface mirrors the context exactly, so operators run unchanged
    against either.  All quantities are integer counts (work values are
    row counts held in floats, exact far below 2**53), which is what
    makes :meth:`ExecutionContext.merge_delta` order-independent.

    Not thread-safe: one delta belongs to one worker.
    """

    def __init__(self, node_count: int, collect_trace: bool = False) -> None:
        self.node_count = node_count
        self.node_work = [0.0] * node_count
        self.rows_processed = 0
        self.network_bytes = 0
        self.rows_shipped = 0
        self.shuffle_count = 0
        self.partitions_scanned = 0
        self.rows_dup_eliminated = 0
        self.join_events: list[tuple[int, int, int, int]] = []
        #: op_id -> [per-node work, network bytes, rows shipped, shuffles,
        #: partitions scanned, rows out, rows-out-by-partition,
        #: dup-eliminated, bloom-probed, bloom-pruned, patch-rows]
        self.op_slots: dict[int, list] = {}
        self.metrics = MetricsRegistry(locked=False)
        self.trace_events: list[TraceEvent] = []
        #: Non-None makes ``_timed`` measure tasks (mirrors ``ctx.trace``).
        self.trace = self.trace_events.append if collect_trace else None

    def _slot(self, op_id: int) -> list:
        slot = self.op_slots.get(op_id)
        if slot is None:
            slot = [[0.0] * self.node_count, 0, 0, 0, 0, 0, {}, 0, 0, 0, 0]
            self.op_slots[op_id] = slot
        return slot

    # -- recording (mirrors ExecutionContext) ------------------------------

    def add_work(self, op: "PhysicalOperator", node: int, rows: float) -> None:
        self.node_work[node] += rows
        self.rows_processed += int(rows)
        self._slot(op.op_id)[0][node] += rows
        self.metrics.inc("engine.rows.processed", int(rows))

    def account(
        self, op: "PhysicalOperator", method: "Method", index: int, rows: float
    ) -> None:
        from repro.query.relation import Method

        if method is Method.REPLICATED:
            for node in range(self.node_count):
                self.add_work(op, node, rows)
        elif method is Method.GATHERED:
            self.add_work(op, 0, rows)
        else:
            self.add_work(op, index, rows)

    def add_network(
        self, op: "PhysicalOperator", byte_count: int, rows: int
    ) -> None:
        self.network_bytes += byte_count
        self.rows_shipped += rows
        slot = self._slot(op.op_id)
        slot[1] += byte_count
        slot[2] += rows
        self.metrics.inc("engine.bytes.shuffled", byte_count)
        self.metrics.inc("engine.rows.shipped", rows)

    def add_shuffle(self, op: "PhysicalOperator") -> None:
        self.shuffle_count += 1
        self._slot(op.op_id)[3] += 1
        self.metrics.inc("engine.shuffles")

    def add_partition_scanned(self, op: "PhysicalOperator") -> None:
        self.partitions_scanned += 1
        self._slot(op.op_id)[4] += 1
        self.metrics.inc("engine.partitions.scanned")

    def add_join_event(
        self, op: "PhysicalOperator", node: int, build_rows: int, probe_rows: int
    ) -> None:
        self.join_events.append((op.op_id, node, build_rows, probe_rows))

    def add_output(
        self, op: "PhysicalOperator", rows: int, partition: int = 0
    ) -> None:
        slot = self._slot(op.op_id)
        slot[5] += rows
        slot[6][partition] = slot[6].get(partition, 0) + rows
        self.metrics.inc("engine.rows.out", rows)
        self.metrics.observe("engine.partition_rows", rows, ROW_BUCKETS)

    def add_dup_eliminated(self, op: "PhysicalOperator", rows: int) -> None:
        if rows <= 0:
            return
        self.rows_dup_eliminated += rows
        self._slot(op.op_id)[7] += rows
        self.metrics.inc("engine.rows.dup_eliminated", rows)

    def add_bloom(self, op: "PhysicalOperator", probed: int, pruned: int) -> None:
        slot = self._slot(op.op_id)
        slot[8] += probed
        slot[9] += pruned
        self.metrics.inc("engine.rows.bloom_probed", probed)
        self.metrics.inc("engine.rows.bloom_pruned", pruned)

    def add_patch(self, op: "PhysicalOperator", rows: int) -> None:
        if rows <= 0:
            return
        self._slot(op.op_id)[10] += rows
        self.metrics.inc("engine.rows.patch_shipped", rows)

    def record_trace(self, event: TraceEvent) -> None:
        if self.trace is not None:
            self.trace(event)


class ExecutionContext:
    """Accounting hub for one query execution.

    Wraps an :class:`ExecutionStats` with thread-safe recording; every
    call also updates the per-operator breakdown.  Backends may invoke
    the recording methods from any thread.

    Attributes:
        stats: The global (cost-model) statistics.
        trace: Optional hook called with a :class:`TraceEvent` after each
            completed engine task (from the thread that ran the task).
    """

    def __init__(
        self,
        node_count: int,
        stats: ExecutionStats | None = None,
        trace: Callable[[TraceEvent], None] | None = None,
    ) -> None:
        # Deferred import: repro.query's package init imports the engine,
        # so a module-level import here would re-enter it mid-exec when
        # the engine is imported first (e.g. via repro.cluster).
        from repro.query.cost import ExecutionStats

        self.node_count = node_count
        self.stats = stats or ExecutionStats(node_count)
        self.trace = trace
        self.metrics = MetricsRegistry(locked=True)
        self._lock = threading.Lock()
        self._operators: dict[int, OperatorStats] = {}
        self._join_events: list[tuple[int, int, int, int]] = []

    # -- operator registry -------------------------------------------------

    def register(self, op: "PhysicalOperator") -> None:
        """Create the per-operator slot for *op* (id order == post-order)."""
        with self._lock:
            self._operators[op.op_id] = OperatorStats(
                op.op_id, op.label, [0.0] * self.node_count
            )

    def operator_stats(self) -> list[OperatorStats]:
        """The per-operator breakdown, in plan post-order."""
        with self._lock:
            return [self._operators[key] for key in sorted(self._operators)]

    # -- recording ---------------------------------------------------------

    def add_work(self, op: "PhysicalOperator", node: int, rows: float) -> None:
        """Account *rows* weighted row operations on *node* for *op*."""
        with self._lock:
            self.stats.add_work(node, rows)
            self._operators[op.op_id].node_work[node] += rows
        self.metrics.inc("engine.rows.processed", int(rows))

    def account(
        self, op: "PhysicalOperator", method: Method, index: int, rows: float
    ) -> None:
        """Account input-processing work, honouring the input's placement.

        Replicated inputs are processed by every node, gathered inputs by
        the coordinator only; partitioned inputs cost on node *index*.
        """
        from repro.query.relation import Method

        if method is Method.REPLICATED:
            with self._lock:
                slot = self._operators[op.op_id]
                for node in range(self.node_count):
                    self.stats.add_work(node, rows)
                    slot.node_work[node] += rows
            self.metrics.inc("engine.rows.processed", int(rows) * self.node_count)
        elif method is Method.GATHERED:
            self.add_work(op, 0, rows)
        else:
            self.add_work(op, index, rows)

    def add_network(
        self, op: "PhysicalOperator", byte_count: int, rows: int
    ) -> None:
        """Account a data transfer performed by *op*."""
        with self._lock:
            self.stats.add_network(byte_count, rows)
            slot = self._operators[op.op_id]
            slot.network_bytes += byte_count
            slot.rows_shipped += rows
        self.metrics.inc("engine.bytes.shuffled", byte_count)
        self.metrics.inc("engine.rows.shipped", rows)

    def add_shuffle(self, op: "PhysicalOperator") -> None:
        """Account one exchange round-trip performed by *op*."""
        with self._lock:
            self.stats.add_shuffle()
            self._operators[op.op_id].shuffles += 1
        self.metrics.inc("engine.shuffles")

    def add_partition_scanned(self, op: "PhysicalOperator") -> None:
        """Account one materialised base-table partition."""
        with self._lock:
            self.stats.partitions_scanned += 1
            self._operators[op.op_id].partitions_scanned += 1
        self.metrics.inc("engine.partitions.scanned")

    def add_join_event(
        self, op: "PhysicalOperator", node: int, build_rows: int, probe_rows: int
    ) -> None:
        """Record a hash-join build/probe for the spill model (deferred)."""
        with self._lock:
            self._join_events.append((op.op_id, node, build_rows, probe_rows))

    def add_output(
        self, op: "PhysicalOperator", rows: int, partition: int = 0
    ) -> None:
        """Record rows emitted by *op* into output *partition*
        (breakdown only, not cost-bearing)."""
        with self._lock:
            slot = self._operators[op.op_id]
            slot.rows_out += rows
            by_partition = slot.rows_out_by_partition
            by_partition[partition] = by_partition.get(partition, 0) + rows
        self.metrics.inc("engine.rows.out", rows)
        self.metrics.observe("engine.partition_rows", rows, ROW_BUCKETS)

    def add_dup_eliminated(self, op: "PhysicalOperator", rows: int) -> None:
        """Record rows dropped by PREF duplicate elimination in *op*."""
        if rows <= 0:
            return
        with self._lock:
            self.stats.rows_dup_eliminated += rows
            self._operators[op.op_id].dup_eliminated += rows
        self.metrics.inc("engine.rows.dup_eliminated", rows)

    def add_bloom(self, op: "PhysicalOperator", probed: int, pruned: int) -> None:
        """Record a predicate-transfer Bloom probe pass in *op*."""
        with self._lock:
            slot = self._operators[op.op_id]
            slot.bloom_probed += probed
            slot.bloom_pruned += pruned
        self.metrics.inc("engine.rows.bloom_probed", probed)
        self.metrics.inc("engine.rows.bloom_pruned", pruned)

    def add_patch(self, op: "PhysicalOperator", rows: int) -> None:
        """Record patch-list rows delivered by *op*'s residual shuffle."""
        if rows <= 0:
            return
        with self._lock:
            self._operators[op.op_id].patch_rows += rows
        self.metrics.inc("engine.rows.patch_shipped", rows)

    def record_trace(self, event: TraceEvent) -> None:
        """Forward *event* to the trace hook, if one is installed."""
        if self.trace is not None:
            self.trace(event)

    # -- delta merging -----------------------------------------------------

    def delta(self) -> ContextDelta:
        """A fresh worker-side recorder compatible with this context."""
        return ContextDelta(self.node_count, collect_trace=self.trace is not None)

    def merge_delta(self, delta: ContextDelta) -> None:
        """Fold a worker's :class:`ContextDelta` into this context.

        Commutative: every merged quantity is an integer count, and join
        events flow through the same deferred sort as direct recording,
        so any merge order reproduces serial execution's stats exactly.
        """
        with self._lock:
            for node, work in enumerate(delta.node_work):
                self.stats.node_work[node] += work
            self.stats.rows_processed += delta.rows_processed
            self.stats.network_bytes += delta.network_bytes
            self.stats.rows_shipped += delta.rows_shipped
            self.stats.shuffle_count += delta.shuffle_count
            self.stats.partitions_scanned += delta.partitions_scanned
            self.stats.rows_dup_eliminated += delta.rows_dup_eliminated
            self._join_events.extend(delta.join_events)
            for op_id, slot in delta.op_slots.items():
                target = self._operators[op_id]
                for node, work in enumerate(slot[0]):
                    target.node_work[node] += work
                target.network_bytes += slot[1]
                target.rows_shipped += slot[2]
                target.shuffles += slot[3]
                target.partitions_scanned += slot[4]
                target.rows_out += slot[5]
                by_partition = target.rows_out_by_partition
                for partition, rows in slot[6].items():
                    by_partition[partition] = by_partition.get(partition, 0) + rows
                target.dup_eliminated += slot[7]
                target.bloom_probed += slot[8]
                target.bloom_pruned += slot[9]
                target.patch_rows += slot[10]
        self.metrics.merge(delta.metrics)
        for event in delta.trace_events:
            self.record_trace(event)

    # -- finalisation ------------------------------------------------------

    def finish(self) -> ExecutionStats:
        """Flush deferred join events into ``stats`` and return it.

        Idempotent: the deferred list is drained, so calling twice does
        not double-count.
        """
        with self._lock:
            events = sorted(self._join_events)
            self._join_events.clear()
        for _op_id, node, build_rows, probe_rows in events:
            self.stats.add_join_event(node, build_rows, probe_rows)
        return self.stats


def format_operator_stats(operators: list[OperatorStats]) -> str:
    """Render a per-operator breakdown as an aligned text table."""
    headers = (
        "op", "operator", "max node work", "total work",
        "net bytes", "rows out", "shuffles", "dup elim",
    )
    rows = [
        (
            str(op.op_id),
            op.label,
            f"{op.max_node_work:.0f}",
            f"{op.total_work:.0f}",
            str(op.network_bytes),
            str(op.rows_out),
            str(op.shuffles),
            str(op.dup_eliminated),
        )
        for op in operators
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    )
    return "\n".join(lines)
