"""Self-contained physical operators with a per-partition task protocol.

Every operator is an isolated, schedulable unit.  A backend drives each
operator through up to three phases:

1. ``prepare_partition(ctx, p)`` — per-*input*-partition work that needs
   no cross-partition state (e.g. routing one source partition of a
   repartition, computing one node's aggregation partials).  Only barrier
   operators define these; ``prepare_count`` says how many.
2. ``exchange(ctx)`` — the barrier itself, run exactly once after every
   prepare task of this operator *and* every partition task of its
   inputs has completed.  This is where rows cross node boundaries
   (shuffle routing merge, broadcast shipping, partial-state merge,
   gather) and where exchange round-trips are accounted.
3. ``run_partition(ctx, p)`` — produces output partition *p*.  For
   pipeline operators (``barrier == False``) this is the whole operator
   and partitions are mutually independent, which is what lets a backend
   run them concurrently; for barrier operators it finishes per-partition
   post-exchange work (e.g. local DISTINCT after a shuffle).

The row-level logic and every accounting call is a faithful port of the
old monolithic interpreter, so any backend that respects the phase order
reproduces its results and :class:`~repro.query.cost.ExecutionStats`
exactly.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.engine.context import ExecutionContext
from repro.engine.rows import Row, _null_free_key, _null_pad, _sort_key
from repro.partitioning.scheme import stable_hash
from repro.query.aggregates import make_accumulator
from repro.query.plan import Aggregate, Join, JoinKind, OrderBy, Repartition
from repro.query.relation import (
    DistributedRelation,
    Method,
    RelProps,
)
from repro.query.rewrite import Annotated
from repro.storage.partitioned import PartitionedTable


class PhysicalOperator:
    """Base class: output storage, placement helpers, task protocol."""

    #: True if the operator needs all input partitions before it can
    #: produce any output partition (it performs an exchange).
    barrier: bool = False
    #: Number of pre-exchange per-partition tasks (barrier operators).
    prepare_count: int = 0
    #: Human-readable name for per-operator stats (set by subclasses).
    name: str = "op"

    def __init__(
        self,
        annotated: Annotated,
        inputs: Sequence["PhysicalOperator"],
        output_count: int,
    ) -> None:
        self.annotated = annotated
        self.props: RelProps = annotated.props
        self.inputs = list(inputs)
        self.output_count = output_count
        self.op_id = -1  # assigned in post-order by the compiler
        self._partitions: list[list[Row] | None] = [None] * output_count

    # -- identity ----------------------------------------------------------

    @property
    def label(self) -> str:
        """Stable display label, e.g. ``HashJoin(...)``."""
        return self.name

    def walk(self):
        """Yield the subtree in post-order (inputs before the operator)."""
        for child in self.inputs:
            yield from child.walk()
        yield self

    # -- output storage ----------------------------------------------------

    @property
    def is_single_copy(self) -> bool:
        """True if the output holds one logical copy (repl/gathered)."""
        return self.props.part.method in (Method.REPLICATED, Method.GATHERED)

    def partition_rows(self, p: int) -> list[Row]:
        """Output partition *p* (must have been produced already)."""
        rows = self._partitions[p]
        assert rows is not None, f"partition {p} of {self.label} not ready"
        return rows

    def node_rows(self, node: int) -> list[Row]:
        """The rows node *node* works on (single copies live in slot 0)."""
        return self.partition_rows(0 if self.output_count == 1 else node)

    def store(self, p: int, rows: list[Row]) -> None:
        """Publish output partition *p*."""
        self._partitions[p] = rows

    def total_rows(self) -> int:
        """Row count over all produced partitions."""
        return sum(len(rows) for rows in self._partitions if rows is not None)

    def relation(self) -> DistributedRelation:
        """The completed output as a :class:`DistributedRelation`."""
        return DistributedRelation(
            self.props, [self.partition_rows(p) for p in range(self.output_count)]
        )

    # -- task protocol -----------------------------------------------------

    def prepare_partition(self, ctx: ExecutionContext, p: int) -> None:
        """Pre-exchange work for input partition *p* (barrier ops only)."""
        raise NotImplementedError

    def exchange(self, ctx: ExecutionContext) -> None:
        """The exchange barrier (barrier ops only)."""
        raise NotImplementedError

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        """Produce output partition *p*."""
        raise NotImplementedError

    # -- distributed task protocol -----------------------------------------
    #
    # Backends that run tasks outside the coordinator process (process
    # pools today, remote transports tomorrow) move task state through
    # explicit picklable payloads: output partitions via
    # ``partition_rows``/``store``, and the two operator-internal slots
    # below.  Operators that never leave the coordinator keep the
    # defaults.

    #: True if ``run_partition`` reads the inputs' output partitions
    #: (pipeline semantics).  Barrier operators whose post-exchange tasks
    #: consume only their own exchange state set this to False, so remote
    #: schedulers do not ship child rows the task never reads.
    partition_reads_inputs: bool = True

    def remote_eligible(self, phase: str) -> bool:
        """Whether *phase* tasks may run outside the coordinator.

        Exchanges are coordinator work by design — they are where row
        buckets cross task boundaries.  Prepare tasks and pipeline
        partition tasks are independent per-partition row loops and
        ship well.
        """
        if phase == "exchange":
            return False
        return phase == "prepare" or not self.barrier

    def remote_ready(self, phase: str, p: int) -> bool:
        """Dispatch-time refinement of :meth:`remote_eligible` for
        operators whose eligibility depends on runtime state."""
        return True

    def prepare_state(self, p: int) -> object:
        """The picklable state produced by ``prepare_partition(p)``."""
        raise NotImplementedError(f"{self.label} has no prepare state")

    def set_prepare_state(self, p: int, state: object) -> None:
        """Install a shipped prepare state (inverse of
        :meth:`prepare_state`)."""
        raise NotImplementedError(f"{self.label} has no prepare state")

    def exchange_state(self) -> object:
        """The picklable state produced by ``exchange()``."""
        raise NotImplementedError(f"{self.label} has no exchange state")

    def set_exchange_state(self, state: object) -> None:
        """Install a shipped exchange state (inverse of
        :meth:`exchange_state`)."""
        raise NotImplementedError(f"{self.label} has no exchange state")

    # -- shared helpers ----------------------------------------------------

    def _input_method(self, index: int = 0) -> Method:
        return self.inputs[index].props.part.method


# --------------------------------------------------------------------------
# Leaf and pipeline operators
# --------------------------------------------------------------------------


class PhysicalScan(PhysicalOperator):
    """Materialise one base-table partition per task.

    Scans are not charged: consumers charge their inputs (and filters
    directly over a scan charge only their output, modelling index access
    on the nodes).
    """

    name = "scan"

    def __init__(
        self,
        annotated: Annotated,
        table: PartitionedTable,
        output_count: int,
        allowed: frozenset[int] | None,
    ) -> None:
        super().__init__(annotated, [], output_count)
        self.table = table
        self.allowed = allowed
        self.attach_bitmaps = self.props.part.method is Method.PREF
        self.replicated = self.props.part.method is Method.REPLICATED

    @property
    def label(self) -> str:
        return f"scan({self.table.schema.name})"

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        if self.replicated:
            rows = list(self.table.partitions[0].rows)
            ctx.add_output(self, len(rows), 0)
            self.store(0, rows)
            return
        partition = self.table.partitions[p]
        if self.allowed is not None and partition.partition_id not in self.allowed:
            self.store(p, [])
            return
        ctx.add_partition_scanned(self)
        if self.attach_bitmaps:
            rows = [
                row + (int(partition.dup[i]), int(partition.has_partner[i]))
                for i, row in enumerate(partition.rows)
            ]
        else:
            rows = list(partition.rows)
        ctx.add_output(self, len(rows), p)
        self.store(p, rows)


class PhysicalFilter(PhysicalOperator):
    """Row filter.  Directly over a base-table scan it is served by an
    index: only the qualifying rows are charged."""

    name = "filter"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        predicate: Callable[[Row], object],
        indexed: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.predicate = predicate
        self.indexed = indexed

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        rows = child.partition_rows(p)
        predicate = self.predicate
        kept = [row for row in rows if predicate(row)]
        ctx.account(
            self, child.props.part.method, p,
            len(kept) if self.indexed else len(rows),
        )
        ctx.add_output(self, len(kept), p)
        self.store(p, kept)


class PhysicalProject(PhysicalOperator):
    """Column projection / computation, optionally locally distinct."""

    name = "project"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        fns: Sequence[Callable[[Row], object]],
        local_distinct: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.fns = list(fns)
        self.local_distinct = local_distinct

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        rows = child.partition_rows(p)
        projected = [tuple(fn(row) for fn in self.fns) for row in rows]
        if self.local_distinct:
            projected = list(dict.fromkeys(projected))
        ctx.account(self, child.props.part.method, p, len(rows))
        ctx.add_output(self, len(projected), p)
        self.store(p, projected)


class PhysicalDedup(PhysicalOperator):
    """PREF duplicate elimination via the governing dup-bitmap columns.

    Used both for explicit DedupFilter plan nodes and for the implicit
    final dedup before gathering the result.  Elimination via the dup
    bitmap index costs only the kept rows when applied directly over a
    scan.
    """

    name = "dedup"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        positions: Sequence[int],
        indexed: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.positions = tuple(positions)
        self.indexed = indexed

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        rows = child.partition_rows(p)
        positions = self.positions
        kept = [row for row in rows if all(not row[q] for q in positions)]
        ctx.account(
            self, child.props.part.method, p,
            len(kept) if self.indexed else len(rows),
        )
        ctx.add_dup_eliminated(self, len(rows) - len(kept))
        ctx.add_output(self, len(kept), p)
        self.store(p, kept)


class PhysicalPartnerFilter(PhysicalOperator):
    """The paper's hasS-index rewrite: semi/anti join as a bitmap filter."""

    name = "partner_filter"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        position: int,
        expect: bool,
        indexed: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.position = position
        self.expect = 1 if expect else 0
        self.indexed = indexed

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        rows = child.partition_rows(p)
        position, expect = self.position, self.expect
        kept = [row for row in rows if row[position] == expect]
        ctx.account(
            self, child.props.part.method, p,
            len(kept) if self.indexed else len(rows),
        )
        ctx.add_output(self, len(kept), p)
        self.store(p, kept)


# --------------------------------------------------------------------------
# Exchange operators
# --------------------------------------------------------------------------


class PhysicalRepartition(PhysicalOperator):
    """Hash shuffle.  ``prepare_partition`` routes one source partition
    into per-target buckets (independent per source, so backends run the
    routing concurrently); ``exchange`` concatenates the buckets in
    source order, preserving the serial interpreter's row order."""

    barrier = True
    name = "repartition"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        key_positions: Sequence[int],
        governing_positions: Sequence[int],
    ) -> None:
        node: Repartition = annotated.node
        super().__init__(annotated, [child], node.count)
        self.key_positions = tuple(key_positions)
        self.governing = tuple(governing_positions)
        self.row_bytes = child.props.row_bytes()
        self.local_distinct = annotated.extra.get("distinct") == "local"
        self.child_method = child.props.part.method
        self.prepare_count = child.output_count
        self._buckets: list[list[list[Row]] | None] = [None] * self.prepare_count
        self._staged: list[list[Row]] = []

    def _key_of(self, row: Row):
        positions = self.key_positions
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    def prepare_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        rows = child.partition_rows(p)
        governing = self.governing
        count = self.output_count
        targets: list[list[Row]] = [[] for _ in range(count)]
        skipped = 0
        if self.child_method is Method.REPLICATED:
            # Every node already holds the full content; each just keeps
            # its own hash range — no network traffic.
            for row in rows:
                if governing and any(row[q] for q in governing):
                    skipped += 1
                    continue
                targets[stable_hash(self._key_of(row)) % count].append(row)
            for index in range(count):
                ctx.add_work(self, index, len(rows))
        else:
            # Gathered inputs live on the coordinator: source index 0.
            source = p
            ctx.account(self, self.child_method, source, len(rows))
            row_bytes = self.row_bytes
            for row in rows:
                if governing and any(row[q] for q in governing):
                    skipped += 1
                    continue
                target = stable_hash(self._key_of(row)) % count
                targets[target].append(row)
                if target != source:
                    ctx.add_network(self, row_bytes, 1)
        ctx.add_dup_eliminated(self, skipped)
        self._buckets[p] = targets

    def exchange(self, ctx: ExecutionContext) -> None:
        ctx.add_shuffle(self)
        self._staged = []
        for target in range(self.output_count):
            merged: list[Row] = []
            for buckets in self._buckets:
                assert buckets is not None
                merged.extend(buckets[target])
            self._staged.append(merged)

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        rows = self._staged[p]
        if self.local_distinct:
            deduped = list(dict.fromkeys(rows))
            ctx.add_dup_eliminated(self, len(rows) - len(deduped))
            rows = deduped
        ctx.add_output(self, len(rows), p)
        self.store(p, rows)

    partition_reads_inputs = False

    def prepare_state(self, p: int) -> object:
        return self._buckets[p]

    def set_prepare_state(self, p: int, state: object) -> None:
        self._buckets[p] = state

    def exchange_state(self) -> object:
        return self._staged

    def set_exchange_state(self, state: object) -> None:
        self._staged = state


class PhysicalHashJoin(PhysicalOperator):
    """Hash join (or nested loop without keys) in one of three modes:

    * ``local`` — inputs are co-partitioned; every node joins its own
      rows independently (one task per node, no exchange);
    * ``both_replicated`` — both inputs are full copies; join once;
    * ``broadcast`` — ship the smaller input to every node in the
      exchange, then probe per node concurrently.
    """

    name = "join"

    def __init__(
        self,
        annotated: Annotated,
        left: PhysicalOperator,
        right: PhysicalOperator,
        cluster_count: int,
    ) -> None:
        node: Join = annotated.node
        self.strategy = annotated.extra.get("strategy", "local")
        self.case = annotated.extra.get("case")
        self.single = self.case == "both_replicated"
        output_count = 1 if self.single else cluster_count
        super().__init__(annotated, [left, right], output_count)
        self.node = node
        self.count = cluster_count
        if self.strategy == "broadcast":
            self.barrier = True
        combined = left.props.columns + right.props.columns
        self.residual = (
            node.residual.bind(combined) if node.residual is not None else None
        )
        if node.on:
            self.left_positions = [left.props.position(l) for l, _ in node.on]
            self.right_positions = [right.props.position(r) for _, r in node.on]
        else:
            self.left_positions = self.right_positions = []
        self.pad = (
            _null_pad(right.props) if node.kind is JoinKind.LEFT_OUTER else None
        )
        # Broadcast state, filled by exchange().
        self._shipped_rows: list[Row] = []
        self._ship_left = False
        self._single_done = False

    @property
    def label(self) -> str:
        return f"join[{self.strategy}]"

    # -- row-level join (port of the interpreter's _join_rows) -------------

    def _join_rows(self, left_rows: list[Row], right_rows: list[Row]) -> list[Row]:
        node = self.node
        residual = self.residual
        if not node.on:
            return self._nested_loop(left_rows, right_rows)
        left_positions = self.left_positions
        right_positions = self.right_positions

        def left_key(row: Row):
            return tuple(row[p] for p in left_positions)

        def right_key(row: Row):
            return tuple(row[p] for p in right_positions)

        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            expect = node.kind is JoinKind.SEMI
            if residual is None:
                keys = {
                    key
                    for row in right_rows
                    if _null_free_key(key := right_key(row))
                }
                return [
                    row
                    for row in left_rows
                    if (_null_free_key(key := left_key(row)) and key in keys)
                    == expect
                ]
            # A residual restricts which key matches count as partners:
            # a left row matches only if some key-equal right row also
            # satisfies the residual on the combined row.
            partners: dict[tuple, list[Row]] = {}
            for row in right_rows:
                if _null_free_key(key := right_key(row)):
                    partners.setdefault(key, []).append(row)
            return [
                row
                for row in left_rows
                if any(
                    residual(row + other)
                    for other in partners.get(left_key(row), ())
                )
                == expect
            ]

        table: dict[tuple, list[Row]] = {}
        for row in right_rows:
            if _null_free_key(key := right_key(row)):
                table.setdefault(key, []).append(row)
        out: list[Row] = []
        pad = self.pad
        for row in left_rows:
            matches = table.get(left_key(row), ())
            emitted = False
            for match in matches:
                combined_row = row + match
                if residual is None or residual(combined_row):
                    out.append(combined_row)
                    emitted = True
            if pad is not None and not emitted:
                out.append(row + pad)
        return out

    def _nested_loop(self, left_rows: list[Row], right_rows: list[Row]) -> list[Row]:
        node = self.node
        residual = self.residual
        pad = self.pad
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            expect = node.kind is JoinKind.SEMI
            result = []
            for row in left_rows:
                matched = any(
                    residual is None or residual(row + other)
                    for other in right_rows
                )
                if matched == expect:
                    result.append(row)
            return result
        out: list[Row] = []
        for row in left_rows:
            emitted = False
            for other in right_rows:
                combined = row + other
                if residual is None or residual(combined):
                    out.append(combined)
                    emitted = True
            if pad is not None and not emitted:
                out.append(row + pad)
        return out

    # -- broadcast exchange ------------------------------------------------

    def exchange(self, ctx: ExecutionContext) -> None:
        """Ship the smaller input to every node (paper's remote join)."""
        node = self.node
        left, right = self.inputs
        ctx.add_shuffle(self)
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI, JoinKind.LEFT_OUTER):
            # The preserved side must stay partitioned; ship the other one.
            ship_left = False
        else:
            ship_left = left.total_rows() <= right.total_rows()
        shipped, kept = (left, right) if ship_left else (right, left)
        shipped_rows = [
            row
            for p in range(shipped.output_count)
            for row in shipped.partition_rows(p)
        ]
        if shipped.props.part.method is not Method.REPLICATED:
            bytes_each = shipped.props.row_bytes()
            ctx.add_network(
                self,
                bytes_each * len(shipped_rows) * max(self.count - 1, 1),
                len(shipped_rows) * max(self.count - 1, 1),
            )
        self._ship_left = ship_left
        self._shipped_rows = shipped_rows
        if kept.is_single_copy:
            # Both inputs are now fully available on every node; computing
            # per partition would emit the result once per node.  Compute
            # once instead.
            kept_rows = kept.partition_rows(0)
            if ship_left:
                out = self._join_rows(shipped_rows, kept_rows)
            else:
                out = self._join_rows(kept_rows, shipped_rows)
            ctx.add_work(self, 0, len(kept_rows) + len(shipped_rows) + len(out))
            ctx.add_join_event(
                self,
                0,
                len(kept_rows) if ship_left else len(shipped_rows),
                len(shipped_rows) if ship_left else len(kept_rows),
            )
            ctx.add_output(self, len(out), 0)
            self.store(0, out)
            for index in range(1, self.output_count):
                self.store(index, [])
            self._single_done = True

    # -- distributed task protocol -----------------------------------------
    # Broadcast probes are heavy row loops, so partition tasks stay
    # remote-eligible even though the operator is a barrier; when the
    # exchange already computed the whole result (both inputs single
    # copies), the leftover partition tasks are no-ops that must stay on
    # the coordinator, where the staged result lives.

    def remote_eligible(self, phase: str) -> bool:
        return phase != "exchange"

    def remote_ready(self, phase: str, p: int) -> bool:
        return not (phase == "partition" and self._single_done)

    def exchange_state(self) -> object:
        return (self._ship_left, self._shipped_rows, self._single_done)

    def set_exchange_state(self, state: object) -> None:
        self._ship_left, self._shipped_rows, self._single_done = state

    # -- per-partition execution -------------------------------------------

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        if self.strategy == "broadcast":
            self._run_broadcast_partition(ctx, p)
            return
        left, right = self.inputs
        if self.single:
            left_rows = left.partition_rows(0)
            right_rows = right.partition_rows(0)
            out = self._join_rows(left_rows, right_rows)
            ctx.add_work(self, 0, len(left_rows) + len(right_rows))
            ctx.add_join_event(self, 0, len(right_rows), len(left_rows))
            ctx.add_output(self, len(out), 0)
            self.store(0, out)
            return
        left_rows = left.node_rows(p)
        right_rows = right.node_rows(p)
        out = self._join_rows(left_rows, right_rows)
        ctx.add_work(self, p, len(left_rows) + len(right_rows) + len(out))
        ctx.add_join_event(self, p, len(right_rows), len(left_rows))
        ctx.add_output(self, len(out), p)
        self.store(p, out)

    def _run_broadcast_partition(self, ctx: ExecutionContext, p: int) -> None:
        if self._single_done:
            return  # staged by exchange()
        left, right = self.inputs
        kept = right if self._ship_left else left
        shipped_rows = self._shipped_rows
        kept_rows = kept.node_rows(p)
        if self._ship_left:
            out = self._join_rows(shipped_rows, kept_rows)
        else:
            out = self._join_rows(kept_rows, shipped_rows)
        ctx.add_work(self, p, len(kept_rows) + len(shipped_rows) + len(out))
        build_rows = len(kept_rows) if self._ship_left else len(shipped_rows)
        probe_rows = len(shipped_rows) if self._ship_left else len(kept_rows)
        ctx.add_join_event(self, p, build_rows, probe_rows)
        ctx.add_output(self, len(out), p)
        self.store(p, out)


class PhysicalAggregate(PhysicalOperator):
    """Aggregation in one of three modes:

    * ``single`` — the input is one copy (gathered/replicated); one task;
    * ``local`` — groups are partition-local; one task per partition;
    * ``two_phase`` — per-partition partials (``prepare_partition``, run
      concurrently), then compact accumulator states ship to their hash
      targets and merge in the exchange.  Partials merge in source order,
      so float accumulation order matches the serial interpreter.
    """

    name = "aggregate"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        cluster_count: int,
    ) -> None:
        node: Aggregate = annotated.node
        self.strategy = annotated.extra["strategy"]
        self.scalar = not node.group_by
        if self.strategy == "single":
            output_count = 1
        elif self.strategy == "local":
            output_count = child.output_count
        else:
            output_count = 1 if self.scalar else cluster_count
        super().__init__(annotated, [child], output_count)
        self.node = node
        self.count = cluster_count
        self.group_positions = child.props.positions(node.group_by)
        self.agg_fns = [
            (spec, spec.expr.bind(child.props.columns) if spec.expr else None)
            for spec in node.aggregates
        ]
        self.key_bytes = 8 * max(len(node.group_by), 1)
        if self.strategy == "two_phase":
            self.barrier = True
            self.prepare_count = child.output_count
        self._partials: list[dict[tuple, list] | None] = [None] * self.prepare_count
        self._staged: list[list[Row]] = []

    @property
    def label(self) -> str:
        return f"aggregate[{self.strategy}]"

    def _aggregate_rows(self, rows: list[Row]) -> list[Row]:
        groups = self._partial_states(rows)
        if not groups and not self.node.group_by:
            groups[()] = [make_accumulator(spec.func) for spec, _ in self.agg_fns]
        return [
            key + tuple(acc.result() for acc in accs)
            for key, accs in groups.items()
        ]

    def _partial_states(self, rows: list[Row]) -> dict[tuple, list]:
        group_positions = self.group_positions
        agg_fns = self.agg_fns
        groups: dict[tuple, list] = {}
        for row in rows:
            key = tuple(row[p] for p in group_positions)
            accs = groups.get(key)
            if accs is None:
                accs = [make_accumulator(spec.func) for spec, _ in agg_fns]
                groups[key] = accs
            for acc, (spec, fn) in zip(accs, agg_fns):
                acc.add(fn(row) if fn is not None else 1)
        return groups

    # -- two-phase ---------------------------------------------------------

    def prepare_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        rows = child.partition_rows(p)
        ctx.account(self, child.props.part.method, p, len(rows))
        self._partials[p] = self._partial_states(rows)

    def exchange(self, ctx: ExecutionContext) -> None:
        """Ship compact states to their hash targets and merge."""
        ctx.add_shuffle(self)
        scalar = self.scalar
        count = self.count
        merged: list[dict[tuple, list]] = [
            {} for _ in range(1 if scalar else count)
        ]
        key_bytes = self.key_bytes
        for index in range(self.prepare_count):
            partials = self._partials[index]
            assert partials is not None
            for key, accs in partials.items():
                target = (
                    0
                    if scalar
                    else stable_hash(key if len(key) > 1 else key[0]) % count
                )
                if target != index:
                    ctx.add_network(
                        self,
                        key_bytes + sum(acc.state_bytes() for acc in accs),
                        1,
                    )
                bucket = merged[0 if scalar else target]
                existing = bucket.get(key)
                if existing is None:
                    bucket[key] = accs
                else:
                    for acc, other in zip(existing, accs):
                        acc.merge_state(other.state())
        self._staged = []
        for bucket in merged:
            if scalar and not bucket:
                bucket[()] = [
                    make_accumulator(spec.func) for spec, _ in self.agg_fns
                ]
            self._staged.append(
                [
                    key + tuple(acc.result() for acc in accs)
                    for key, accs in bucket.items()
                ]
            )

    # -- execution ---------------------------------------------------------

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        if self.strategy == "single":
            rows = child.partition_rows(0)
            ctx.add_work(self, 0, len(rows))
            out = self._aggregate_rows(rows)
            ctx.add_output(self, len(out), 0)
            self.store(0, out)
            return
        if self.strategy == "local":
            rows = child.partition_rows(p)
            out = self._aggregate_rows(rows)
            ctx.add_work(self, p, len(rows) + len(out))
            ctx.add_output(self, len(out), p)
            self.store(p, out)
            return
        rows = self._staged[p]
        ctx.add_work(self, 0 if self.scalar else p, len(rows))
        ctx.add_output(self, len(rows), p)
        self.store(p, rows)

    # -- distributed task protocol -----------------------------------------
    # Only consulted for the two_phase (barrier) strategy, whose
    # run_partition reads the staged merge, never the child; accumulator
    # objects are plain picklable Python state.

    partition_reads_inputs = False

    def prepare_state(self, p: int) -> object:
        return self._partials[p]

    def set_prepare_state(self, p: int, state: object) -> None:
        self._partials[p] = state

    def exchange_state(self) -> object:
        return self._staged

    def set_exchange_state(self, state: object) -> None:
        self._staged = state


class PhysicalOrderBy(PhysicalOperator):
    """Gather every partition on the coordinator, sort, apply the limit."""

    barrier = True
    name = "order_by"

    def __init__(self, annotated: Annotated, child: PhysicalOperator) -> None:
        node: OrderBy = annotated.node
        super().__init__(annotated, [child], 1)
        self.sort_positions = [
            (child.props.position(column), ascending)
            for column, ascending in node.keys
        ]
        self.limit = node.limit
        self._staged: list[Row] = []

    def exchange(self, ctx: ExecutionContext) -> None:
        rows = _gather(self.inputs[0], self, ctx)
        for position, ascending in reversed(self.sort_positions):
            rows.sort(
                key=lambda row: _sort_key(row[position]), reverse=not ascending
            )
        if self.limit is not None:
            rows = rows[: self.limit]
        ctx.add_work(self, 0, len(rows))
        self._staged = rows

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        ctx.add_output(self, len(self._staged), 0)
        self.store(0, self._staged)

    partition_reads_inputs = False

    def exchange_state(self) -> object:
        return self._staged

    def set_exchange_state(self, state: object) -> None:
        self._staged = state


class PhysicalGather(PhysicalOperator):
    """Implicit root: collect the final result on the coordinator."""

    barrier = True
    name = "gather"

    def __init__(self, annotated: Annotated, child: PhysicalOperator) -> None:
        super().__init__(annotated, [child], 1)
        self._staged: list[Row] = []

    def exchange(self, ctx: ExecutionContext) -> None:
        self._staged = _gather(self.inputs[0], self, ctx)

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        ctx.add_output(self, len(self._staged), 0)
        self.store(0, self._staged)

    partition_reads_inputs = False

    def exchange_state(self) -> object:
        return self._staged

    def set_exchange_state(self, state: object) -> None:
        self._staged = state


def _gather(
    child: PhysicalOperator, op: PhysicalOperator, ctx: ExecutionContext
) -> list[Row]:
    """Move every partition of *child* to the coordinator, metering it."""
    if child.is_single_copy:
        return list(child.partition_rows(0))
    row_bytes = child.props.row_bytes()
    rows: list[Row] = []
    for index in range(child.output_count):
        partition = child.partition_rows(index)
        rows.extend(partition)
        if index != 0 and partition:
            ctx.add_network(op, row_bytes * len(partition), len(partition))
    return rows
