"""Self-contained physical operators with a per-partition task protocol.

Every operator is an isolated, schedulable unit.  A backend drives each
operator through up to three phases:

1. ``prepare_partition(ctx, p)`` — per-*input*-partition work that needs
   no cross-partition state (e.g. routing one source partition of a
   repartition, computing one node's aggregation partials).  Only barrier
   operators define these; ``prepare_count`` says how many.
2. ``exchange(ctx)`` — the barrier itself, run exactly once after every
   prepare task of this operator *and* every partition task of its
   inputs has completed.  This is where rows cross node boundaries
   (shuffle routing merge, broadcast shipping, partial-state merge,
   gather) and where exchange round-trips are accounted.
3. ``run_partition(ctx, p)`` — produces output partition *p*.  For
   pipeline operators (``barrier == False``) this is the whole operator
   and partitions are mutually independent, which is what lets a backend
   run them concurrently; for barrier operators it finishes per-partition
   post-exchange work (e.g. local DISTINCT after a shuffle).

Data moves between operators as :class:`~repro.engine.rows.ColumnBatch`
payloads — one batch per output partition — and the hot loops run as
columnar kernels (masks, gathers, zipped key building) instead of
per-row tuple code.  Pipeline operators evaluate their expression
kernels in chunks of ``batch_size`` rows.  The accounting is
aggregate-identical to the row-at-a-time engine this replaced: the same
counters reach the same totals (per-row counter bumps are summed into
one call), histogram-backed calls like ``add_output`` keep exactly one
call per task, and float aggregation still accumulates in source row
order — so canonical traces and :class:`~repro.query.cost.ExecutionStats`
are unchanged.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import compress
from typing import Callable, Sequence

from repro.engine.context import ExecutionContext
from repro.engine.rows import (
    DEFAULT_BATCH_SIZE,
    ColumnBatch,
    Row,
    _null_free_key,
    _null_pad,
    _sort_key,
    all_false_mask,
    distinct_batch,
    pad_take,
)
from repro.partitioning.scheme import stable_hash
from repro.query.aggregates import make_accumulator
from repro.query.plan import Aggregate, Join, JoinKind, OrderBy, Repartition
from repro.query.relation import (
    DistributedRelation,
    Method,
    RelProps,
)
from repro.query.rewrite import Annotated
from repro.storage.partitioned import PartitionedTable

#: A compiled batch kernel (see ``Expression.bind_batch``).
BatchFn = Callable[[ColumnBatch], list]


class PhysicalOperator:
    """Base class: output storage, placement helpers, task protocol."""

    #: True if the operator needs all input partitions before it can
    #: produce any output partition (it performs an exchange).
    barrier: bool = False
    #: Number of pre-exchange per-partition tasks (barrier operators).
    prepare_count: int = 0
    #: Human-readable name for per-operator stats (set by subclasses).
    name: str = "op"

    def __init__(
        self,
        annotated: Annotated,
        inputs: Sequence["PhysicalOperator"],
        output_count: int,
    ) -> None:
        self.annotated = annotated
        self.props: RelProps = annotated.props
        self.inputs = list(inputs)
        self.output_count = output_count
        self.op_id = -1  # assigned in post-order by the compiler
        self.width = len(self.props.columns)
        self.batch_size = DEFAULT_BATCH_SIZE  # overridden by the compiler
        self._partitions: list[ColumnBatch | None] = [None] * output_count

    # -- identity ----------------------------------------------------------

    @property
    def label(self) -> str:
        """Stable display label, e.g. ``HashJoin(...)``."""
        return self.name

    def walk(self):
        """Yield the subtree in post-order (inputs before the operator)."""
        for child in self.inputs:
            yield from child.walk()
        yield self

    # -- output storage ----------------------------------------------------

    @property
    def is_single_copy(self) -> bool:
        """True if the output holds one logical copy (repl/gathered)."""
        return self.props.part.method in (Method.REPLICATED, Method.GATHERED)

    def partition_batch(self, p: int) -> ColumnBatch:
        """Output partition *p* (must have been produced already)."""
        batch = self._partitions[p]
        assert batch is not None, f"partition {p} of {self.label} not ready"
        return batch

    def partition_rows(self, p: int) -> list[Row]:
        """Output partition *p* as row tuples (compat view)."""
        return self.partition_batch(p).to_rows()

    def node_batch(self, node: int) -> ColumnBatch:
        """The batch node *node* works on (single copies live in slot 0)."""
        return self.partition_batch(0 if self.output_count == 1 else node)

    def node_rows(self, node: int) -> list[Row]:
        """The rows node *node* works on (compat view)."""
        return self.node_batch(node).to_rows()

    def store_batch(self, p: int, batch: ColumnBatch) -> None:
        """Publish output partition *p*."""
        self._partitions[p] = batch

    def store(self, p: int, rows: list[Row]) -> None:
        """Publish output partition *p* from row tuples (compat)."""
        self._partitions[p] = ColumnBatch.from_rows(rows, self.width)

    def total_rows(self) -> int:
        """Row count over all produced partitions."""
        return sum(
            batch.length for batch in self._partitions if batch is not None
        )

    def relation(self) -> DistributedRelation:
        """The completed output as a :class:`DistributedRelation`."""
        return DistributedRelation(
            self.props, [self.partition_rows(p) for p in range(self.output_count)]
        )

    # -- task protocol -----------------------------------------------------

    def prepare_partition(self, ctx: ExecutionContext, p: int) -> None:
        """Pre-exchange work for input partition *p* (barrier ops only)."""
        raise NotImplementedError

    def exchange(self, ctx: ExecutionContext) -> None:
        """The exchange barrier (barrier ops only)."""
        raise NotImplementedError

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        """Produce output partition *p*."""
        raise NotImplementedError

    # -- distributed task protocol -----------------------------------------
    #
    # Backends that run tasks outside the coordinator process (process
    # pools today, remote transports tomorrow) move task state through
    # explicit picklable payloads: output partitions via
    # ``partition_batch``/``store_batch``, and the two operator-internal
    # slots below.  Operators that never leave the coordinator keep the
    # defaults.

    #: True if ``run_partition`` reads the inputs' output partitions
    #: (pipeline semantics).  Barrier operators whose post-exchange tasks
    #: consume only their own exchange state set this to False, so remote
    #: schedulers do not ship child rows the task never reads.
    partition_reads_inputs: bool = True

    def remote_eligible(self, phase: str) -> bool:
        """Whether *phase* tasks may run outside the coordinator.

        Exchanges are coordinator work by design — they are where row
        buckets cross task boundaries.  Prepare tasks and pipeline
        partition tasks are independent per-partition batch kernels and
        ship well.
        """
        if phase == "exchange":
            return False
        return phase == "prepare" or not self.barrier

    def remote_ready(self, phase: str, p: int) -> bool:
        """Dispatch-time refinement of :meth:`remote_eligible` for
        operators whose eligibility depends on runtime state."""
        return True

    def prepare_state(self, p: int) -> object:
        """The picklable state produced by ``prepare_partition(p)``."""
        raise NotImplementedError(f"{self.label} has no prepare state")

    def set_prepare_state(self, p: int, state: object) -> None:
        """Install a shipped prepare state (inverse of
        :meth:`prepare_state`)."""
        raise NotImplementedError(f"{self.label} has no prepare state")

    def exchange_state(self) -> object:
        """The picklable state produced by ``exchange()``."""
        raise NotImplementedError(f"{self.label} has no exchange state")

    def set_exchange_state(self, state: object) -> None:
        """Install a shipped exchange state (inverse of
        :meth:`exchange_state`)."""
        raise NotImplementedError(f"{self.label} has no exchange state")

    # -- shared helpers ----------------------------------------------------

    def _input_method(self, index: int = 0) -> Method:
        return self.inputs[index].props.part.method


# --------------------------------------------------------------------------
# Leaf and pipeline operators
# --------------------------------------------------------------------------


class PhysicalScan(PhysicalOperator):
    """Materialise one base-table partition per task.

    Scans are not charged: consumers charge their inputs (and filters
    directly over a scan charge only their output, modelling index access
    on the nodes).
    """

    name = "scan"

    def __init__(
        self,
        annotated: Annotated,
        table: PartitionedTable,
        output_count: int,
        allowed: frozenset[int] | None,
    ) -> None:
        super().__init__(annotated, [], output_count)
        self.table = table
        self.allowed = allowed
        self.attach_bitmaps = self.props.part.method is Method.PREF
        self.replicated = self.props.part.method is Method.REPLICATED

    @property
    def label(self) -> str:
        return f"scan({self.table.schema.name})"

    def _materialize(self, partition, width: int) -> ColumnBatch:
        """The partition's cached columnar form as a batch (aliased)."""
        if not partition.rows:
            return ColumnBatch.empty(width)
        # Copy the outer list only: the column lists themselves alias the
        # partition's cache (read-only by the engine's convention).
        return ColumnBatch(list(partition.columnar()), len(partition.rows))

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        if self.replicated:
            batch = self._materialize(self.table.partitions[0], self.width)
            ctx.add_output(self, batch.length, 0)
            self.store_batch(0, batch)
            return
        partition = self.table.partitions[p]
        if self.allowed is not None and partition.partition_id not in self.allowed:
            self.store_batch(p, ColumnBatch.empty(self.width))
            return
        ctx.add_partition_scanned(self)
        if self.attach_bitmaps:
            base = self._materialize(partition, self.width - 2)
            dup_list, partner_list = partition.bitmap_lists()
            deliveries = self.table.patches_for(partition.partition_id)
            if deliveries:
                # Residual shuffle for patched PREF: overflow copies whose
                # storage was capped at max_copies are delivered to their
                # partner partitions at scan time.  They behave exactly
                # like stored dup=1 copies, so every downstream rewrite
                # that is correct for plain PREF stays correct.  The
                # partition caches are aliased read-only — copy before
                # extending.
                columns = [list(column) for column in base.columns]
                for row, _source_id in deliveries:
                    for column, value in zip(columns, row):
                        column.append(value)
                extra = len(deliveries)
                dup_list = dup_list + [1] * extra
                partner_list = partner_list + [1] * extra
                base = ColumnBatch(columns, base.length + extra)
                ctx.add_network(
                    self, extra * self.table.schema.row_byte_width, extra
                )
                ctx.add_patch(self, extra)
            batch = ColumnBatch(
                base.columns + [dup_list, partner_list], base.length
            )
        else:
            batch = self._materialize(partition, self.width)
        ctx.add_output(self, batch.length, p)
        self.store_batch(p, batch)


class PhysicalFilter(PhysicalOperator):
    """Batch filter.  Directly over a base-table scan it is served by an
    index: only the qualifying rows are charged."""

    name = "filter"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        predicate: BatchFn,
        indexed: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.predicate = predicate
        self.indexed = indexed

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        batch = child.partition_batch(p)
        predicate = self.predicate
        # Unknown (None) is falsy, so compress rejects it for free.
        out = ColumnBatch.concat(
            [
                chunk.compress(predicate(chunk))
                for chunk in batch.chunks(self.batch_size)
            ],
            self.width,
        )
        ctx.account(
            self, child.props.part.method, p,
            out.length if self.indexed else batch.length,
        )
        ctx.add_output(self, out.length, p)
        self.store_batch(p, out)


class PhysicalBloomProbe(PhysicalOperator):
    """Predicate-transfer probe: drop rows whose join keys miss a Bloom
    filter built from the other side of a join edge.

    Filters are built once on the coordinator at plan time and travel
    with the operator; the coordinator ships them to every other node
    before scanning starts, which the accounting charges as one filter
    payload per non-coordinator partition.  Probing is per-key and
    NULL-rejecting, so results are invariant in the knob (a pruned row
    could never have survived the downstream join).
    """

    name = "bloom_probe"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        filters: Sequence,
        indexed: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.filters = [(tuple(f.positions), f.bloom) for f in filters]
        self.indexed = indexed
        self.filter_bytes = sum(f.bloom.byte_size for f in filters)

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        batch = child.partition_batch(p)
        pieces = []
        for chunk in batch.chunks(self.batch_size):
            mask: list | None = None
            for positions, bloom in self.filters:
                hits = bloom.probe_many(chunk.key_values(positions))
                if mask is None:
                    mask = hits
                else:
                    mask = [a and b for a, b in zip(mask, hits)]
            pieces.append(chunk if mask is None else chunk.compress(mask))
        out = ColumnBatch.concat(pieces, self.width)
        if p != 0 and self.filter_bytes:
            # Shipping the coordinator-built filters to this node.
            ctx.add_network(self, self.filter_bytes, 0)
        ctx.account(
            self, child.props.part.method, p,
            out.length if self.indexed else batch.length,
        )
        ctx.add_bloom(self, batch.length, batch.length - out.length)
        ctx.add_output(self, out.length, p)
        self.store_batch(p, out)


class PhysicalProject(PhysicalOperator):
    """Column projection / computation, optionally locally distinct."""

    name = "project"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        fns: Sequence[BatchFn],
        local_distinct: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.fns = list(fns)
        self.local_distinct = local_distinct

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        batch = child.partition_batch(p)
        fns = self.fns
        out = ColumnBatch.concat(
            [
                ColumnBatch([fn(chunk) for fn in fns], chunk.length)
                for chunk in batch.chunks(self.batch_size)
            ],
            self.width,
        )
        if self.local_distinct:
            out = distinct_batch(out)
        ctx.account(self, child.props.part.method, p, batch.length)
        ctx.add_output(self, out.length, p)
        self.store_batch(p, out)


class PhysicalDedup(PhysicalOperator):
    """PREF duplicate elimination via the governing dup-bitmap columns.

    Used both for explicit DedupFilter plan nodes and for the implicit
    final dedup before gathering the result.  Elimination via the dup
    bitmap index costs only the kept rows when applied directly over a
    scan.
    """

    name = "dedup"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        positions: Sequence[int],
        indexed: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.positions = tuple(positions)
        self.indexed = indexed

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        batch = child.partition_batch(p)
        keep = all_false_mask(
            [batch.columns[q] for q in self.positions], batch.length
        )
        out = batch.compress(keep)
        ctx.account(
            self, child.props.part.method, p,
            out.length if self.indexed else batch.length,
        )
        ctx.add_dup_eliminated(self, batch.length - out.length)
        ctx.add_output(self, out.length, p)
        self.store_batch(p, out)


class PhysicalPartnerFilter(PhysicalOperator):
    """The paper's hasS-index rewrite: semi/anti join as a bitmap filter."""

    name = "partner_filter"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        position: int,
        expect: bool,
        indexed: bool,
    ) -> None:
        super().__init__(annotated, [child], child.output_count)
        self.position = position
        self.expect = 1 if expect else 0
        self.indexed = indexed

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        batch = child.partition_batch(p)
        expect = self.expect
        keep = [value == expect for value in batch.columns[self.position]]
        out = batch.compress(keep)
        ctx.account(
            self, child.props.part.method, p,
            out.length if self.indexed else batch.length,
        )
        ctx.add_output(self, out.length, p)
        self.store_batch(p, out)


# --------------------------------------------------------------------------
# Exchange operators
# --------------------------------------------------------------------------


class PhysicalRepartition(PhysicalOperator):
    """Hash shuffle.  ``prepare_partition`` routes one source partition
    into per-target bucket batches (independent per source, so backends
    run the routing concurrently); ``exchange`` concatenates the buckets
    in source order, preserving the serial interpreter's row order."""

    barrier = True
    name = "repartition"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        key_positions: Sequence[int],
        governing_positions: Sequence[int],
    ) -> None:
        node: Repartition = annotated.node
        super().__init__(annotated, [child], node.count)
        self.key_positions = tuple(key_positions)
        self.governing = tuple(governing_positions)
        self.row_bytes = child.props.row_bytes()
        self.local_distinct = annotated.extra.get("distinct") == "local"
        self.child_method = child.props.part.method
        self.prepare_count = child.output_count
        self._buckets: list[list[ColumnBatch] | None] = [None] * self.prepare_count
        self._staged: list[ColumnBatch] = []

    def prepare_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        batch = child.partition_batch(p)
        count = self.output_count
        if self.governing:
            keep = all_false_mask(
                [batch.columns[q] for q in self.governing], batch.length
            )
            routed = batch.compress(keep)
        else:
            routed = batch
        skipped = batch.length - routed.length
        targets = [
            stable_hash(key) % count
            for key in routed.key_values(self.key_positions)
        ]
        bucket_indices: list[list[int]] = [[] for _ in range(count)]
        for index, target in enumerate(targets):
            bucket_indices[target].append(index)
        if self.child_method is Method.REPLICATED:
            # Every node already holds the full content; each just keeps
            # its own hash range — no network traffic.
            for index in range(count):
                ctx.add_work(self, index, batch.length)
        else:
            # Gathered inputs live on the coordinator: source index 0.
            ctx.account(self, self.child_method, p, batch.length)
            local = len(bucket_indices[p]) if p < count else 0
            moved = routed.length - local
            if moved:
                ctx.add_network(self, self.row_bytes * moved, moved)
        ctx.add_dup_eliminated(self, skipped)
        self._buckets[p] = [routed.take(indices) for indices in bucket_indices]

    def exchange(self, ctx: ExecutionContext) -> None:
        ctx.add_shuffle(self)
        self._staged = []
        for target in range(self.output_count):
            pieces = []
            for buckets in self._buckets:
                assert buckets is not None
                pieces.append(buckets[target])
            self._staged.append(ColumnBatch.concat(pieces, self.width))

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        batch = self._staged[p]
        if self.local_distinct:
            deduped = distinct_batch(batch)
            ctx.add_dup_eliminated(self, batch.length - deduped.length)
            batch = deduped
        ctx.add_output(self, batch.length, p)
        self.store_batch(p, batch)

    partition_reads_inputs = False

    def prepare_state(self, p: int) -> object:
        return self._buckets[p]

    def set_prepare_state(self, p: int, state: object) -> None:
        self._buckets[p] = state

    def exchange_state(self) -> object:
        return self._staged

    def set_exchange_state(self, state: object) -> None:
        self._staged = state


class PhysicalHashJoin(PhysicalOperator):
    """Hash join (or nested loop without keys) in one of three modes:

    * ``local`` — inputs are co-partitioned; every node joins its own
      rows independently (one task per node, no exchange);
    * ``both_replicated`` — both inputs are full copies; join once;
    * ``broadcast`` — ship the smaller input to every node in the
      exchange, then probe per node concurrently.

    The keyed join is fully columnar: build and probe keys come from one
    ``zip`` over the key columns, match pairs accumulate as index lists,
    and the output is a gather over both inputs — with ``-1`` marking
    LEFT OUTER pad rows.  Output order is the row engine's contract:
    left-row order, matches in right-insertion order, the pad emitted
    when no match survives the residual.
    """

    name = "join"

    def __init__(
        self,
        annotated: Annotated,
        left: PhysicalOperator,
        right: PhysicalOperator,
        cluster_count: int,
    ) -> None:
        node: Join = annotated.node
        self.strategy = annotated.extra.get("strategy", "local")
        self.case = annotated.extra.get("case")
        self.single = self.case == "both_replicated"
        output_count = 1 if self.single else cluster_count
        super().__init__(annotated, [left, right], output_count)
        self.node = node
        self.count = cluster_count
        if self.strategy == "broadcast":
            self.barrier = True
        combined = left.props.columns + right.props.columns
        self.residual = (
            node.residual.bind(combined) if node.residual is not None else None
        )
        self.residual_batch = (
            node.residual.bind_batch(combined)
            if node.residual is not None
            else None
        )
        if node.on:
            self.left_positions = [left.props.position(l) for l, _ in node.on]
            self.right_positions = [right.props.position(r) for _, r in node.on]
        else:
            self.left_positions = self.right_positions = []
        self.pad = (
            _null_pad(right.props) if node.kind is JoinKind.LEFT_OUTER else None
        )
        # Broadcast state, filled by exchange().
        self._shipped = ColumnBatch.empty(0)
        self._ship_left = False
        self._single_done = False
        # Build-side caches, keyed by batch identity: broadcast probes
        # join every node's rows against the *same* shipped build batch,
        # so the hash table (or partner key set) is built once per query
        # instead of once per node.  Racing tasks may rebuild it
        # redundantly but always identically.
        self._table_cache: tuple[ColumnBatch, dict, bool] | None = None
        self._keyset_cache: tuple[ColumnBatch, set] | None = None
        # Set once a build side turns out to have duplicate keys; later
        # partitions of the same join then skip the optimistic
        # unique-build attempt (pure work avoidance, no semantic change).
        self._dup_build = False

    @property
    def label(self) -> str:
        return f"join[{self.strategy}]"

    # -- batch-level join --------------------------------------------------

    def _join_batches(
        self, left_batch: ColumnBatch, right_batch: ColumnBatch
    ) -> ColumnBatch:
        node = self.node
        if not node.on:
            rows = self._nested_loop(
                left_batch.to_rows(), right_batch.to_rows()
            )
            return ColumnBatch.from_rows(rows, self.width)
        left_keys = left_batch.key_values(self.left_positions)
        right_keys = right_batch.key_values(self.right_positions)
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            return self._semi_anti(
                left_batch, left_keys, right_batch, right_keys
            )
        return self._equi_join(left_batch, left_keys, right_batch, right_keys)

    def _build_table(
        self, right_batch: ColumnBatch, right_keys: list
    ) -> tuple[dict, bool]:
        """(key -> right row index/indices, build-side-unique).

        Single-column joins key on the bare value (no tuple building);
        multi-column joins key on tuples.  NULL-bearing keys never match
        (SQL equality), so they never enter the table.

        The build is optimistic: ``dict(zip(keys, range(n)))`` runs at C
        speed and, when no key repeats (the common FK -> PK case), is the
        finished table — values are bare int indices and the second
        element is True.  Only a build side with duplicate keys falls
        back to the Python loop that accumulates index lists in
        insertion order (values are lists, second element False).
        """
        n = len(right_keys)
        if len(self.right_positions) == 1:
            nulls = right_keys.count(None)
            if not self._dup_build:
                table = dict(zip(right_keys, range(n)))
                if nulls:
                    del table[None]
                if len(table) == n - nulls:
                    return table, True
                self._dup_build = True
            table = defaultdict(list)
            if nulls:
                for index, key in enumerate(right_keys):
                    if key is not None:
                        table[key].append(index)
            else:
                for index, key in enumerate(right_keys):
                    table[key].append(index)
            return table, False
        has_nulls = any(
            right_batch.has_nulls(p) for p in self.right_positions
        )
        if not has_nulls and not self._dup_build:
            table = dict(zip(right_keys, range(n)))
            if len(table) == n:
                return table, True
            self._dup_build = True
        table = defaultdict(list)
        for index, key in enumerate(right_keys):
            if has_nulls and not _null_free_key(key):
                continue
            table[key].append(index)
        return table, False

    def _cached_table(
        self, right_batch: ColumnBatch, right_keys: list
    ) -> tuple[dict, bool]:
        cached = self._table_cache
        if cached is not None and cached[0] is right_batch:
            return cached[1], cached[2]
        table, unique = self._build_table(right_batch, right_keys)
        self._table_cache = (right_batch, table, unique)
        return table, unique

    def _combined(
        self,
        left_batch: ColumnBatch,
        left_idx: list[int],
        right_batch: ColumnBatch,
        right_idx: list[int],
    ) -> ColumnBatch:
        """Candidate pairs as one wide batch for residual evaluation."""
        return ColumnBatch(
            left_batch.take(left_idx).columns
            + right_batch.take(right_idx).columns,
            len(left_idx),
        )

    def _emit(
        self,
        left_batch: ColumnBatch,
        left_idx: list[int],
        right_batch: ColumnBatch,
        right_idx: list[int],
    ) -> ColumnBatch:
        """Gather the output batch; ``-1`` in *right_idx* is the pad."""
        columns = left_batch.take(left_idx).columns
        pad = self.pad
        if pad is None:
            columns += right_batch.take(right_idx).columns
        else:
            columns += [
                pad_take(column, right_idx, pad[index])
                for index, column in enumerate(right_batch.columns)
            ]
        return ColumnBatch(columns, len(left_idx))

    def _emit_aligned(
        self,
        left_out: ColumnBatch,
        right_batch: ColumnBatch,
        right_idx: list[int],
    ) -> ColumnBatch:
        """Output when the left side is already aligned row-for-row with
        *right_idx* (unique-build joins): left columns pass through with
        no gather at all."""
        pad = self.pad
        if pad is None:
            columns = left_out.columns + right_batch.take(right_idx).columns
        else:
            columns = left_out.columns + [
                pad_take(column, right_idx, pad[index])
                for index, column in enumerate(right_batch.columns)
            ]
        return ColumnBatch(columns, len(right_idx))

    def _equi_join(
        self,
        left_batch: ColumnBatch,
        left_keys: list,
        right_batch: ColumnBatch,
        right_keys: list,
    ) -> ColumnBatch:
        table, unique = self._cached_table(right_batch, right_keys)
        residual = self.residual_batch
        pad = self.pad
        if residual is None and unique:
            # Unique build side (the usual FK -> PK case): every probe
            # hit pairs with exactly one build row, so the output's left
            # half is the probe batch itself (or a compress of it) in
            # order, and the whole probe runs as C-level map/compress.
            # NULL probe keys miss for free: the table holds no NULLs.
            raw = list(map(table.get, left_keys))
            if pad is not None:
                right_idx = [-1 if m is None else m for m in raw]
                return self._emit_aligned(left_batch, right_batch, right_idx)
            mask = [m is not None for m in raw]
            if all(mask):
                return self._emit_aligned(left_batch, right_batch, raw)
            return self._emit_aligned(
                left_batch.compress(mask),
                right_batch,
                list(compress(raw, mask)),
            )
        if unique:
            # The slow paths below fan matches out per probe row; give
            # them the list-valued view of the unique table.
            table = {key: (index,) for key, index in table.items()}
        left_idx: list[int] = []
        right_idx: list[int] = []
        if residual is None:
            # NULL-bearing probe keys miss for free: the table only
            # holds NULL-free keys, and no tuple equals one of those.
            if pad is None:
                for i, key in enumerate(left_keys):
                    matches = table.get(key)
                    if matches:
                        left_idx.extend([i] * len(matches))
                        right_idx.extend(matches)
            else:
                for i, key in enumerate(left_keys):
                    matches = table.get(key)
                    if matches:
                        left_idx.extend([i] * len(matches))
                        right_idx.extend(matches)
                    else:
                        left_idx.append(i)
                        right_idx.append(-1)
            return self._emit(left_batch, left_idx, right_batch, right_idx)
        # A residual restricts which key matches survive: evaluate it
        # once over every candidate pair, then keep survivors in
        # left-row order, padding rows whose matches all failed.
        spans: list[tuple[int, int, int]] = []
        for i, key in enumerate(left_keys):
            matches = table.get(key)
            if matches:
                start = len(right_idx)
                left_idx.extend([i] * len(matches))
                right_idx.extend(matches)
                spans.append((i, start, len(right_idx)))
            elif pad is not None:
                spans.append((i, 0, 0))
        mask = residual(
            self._combined(left_batch, left_idx, right_batch, right_idx)
        )
        final_left: list[int] = []
        final_right: list[int] = []
        for i, start, stop in spans:
            emitted = False
            for pos in range(start, stop):
                if mask[pos]:
                    final_left.append(i)
                    final_right.append(right_idx[pos])
                    emitted = True
            if pad is not None and not emitted:
                final_left.append(i)
                final_right.append(-1)
        return self._emit(left_batch, final_left, right_batch, final_right)

    def _semi_anti(
        self,
        left_batch: ColumnBatch,
        left_keys: list,
        right_batch: ColumnBatch,
        right_keys: list,
    ) -> ColumnBatch:
        expect = self.node.kind is JoinKind.SEMI
        residual = self.residual_batch
        if residual is None:
            cached = self._keyset_cache
            if cached is not None and cached[0] is right_batch:
                keys = cached[1]
            else:
                if len(self.right_positions) == 1:
                    keys = set(right_keys)
                    keys.discard(None)
                elif any(
                    right_batch.has_nulls(p) for p in self.right_positions
                ):
                    keys = {key for key in right_keys if _null_free_key(key)}
                else:
                    keys = set(right_keys)
                self._keyset_cache = (right_batch, keys)
            # A NULL-bearing left key is never a partner — which keeps
            # the row under ANTI and drops it under SEMI.  Bare (single
            # column) keys need no NULL branch at all: None is never in
            # *keys*, so membership alone is already the SQL test.
            if len(self.left_positions) == 1:
                if expect:
                    keep = list(map(keys.__contains__, left_keys))
                else:
                    keep = [key not in keys for key in left_keys]
            elif any(left_batch.has_nulls(p) for p in self.left_positions):
                keep = [
                    (_null_free_key(key) and key in keys) == expect
                    for key in left_keys
                ]
            elif expect:
                keep = [key in keys for key in left_keys]
            else:
                keep = [key not in keys for key in left_keys]
            return left_batch.compress(keep)
        # A residual restricts which key matches count as partners: a
        # left row matches only if some key-equal right row also
        # satisfies the residual on the combined row.
        partners, unique = self._cached_table(right_batch, right_keys)
        if unique:
            partners = {key: (index,) for key, index in partners.items()}
        left_idx: list[int] = []
        right_idx: list[int] = []
        spans: list[tuple[int, int]] = []
        for i, key in enumerate(left_keys):
            matches = partners.get(key)
            if matches:
                start = len(right_idx)
                left_idx.extend([i] * len(matches))
                right_idx.extend(matches)
                spans.append((start, len(right_idx)))
            else:
                spans.append((0, 0))
        mask = residual(
            self._combined(left_batch, left_idx, right_batch, right_idx)
        )
        keep = [
            any(mask[pos] for pos in range(start, stop)) == expect
            for start, stop in spans
        ]
        return left_batch.compress(keep)

    def _nested_loop(self, left_rows: list[Row], right_rows: list[Row]) -> list[Row]:
        node = self.node
        residual = self.residual
        pad = self.pad
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            expect = node.kind is JoinKind.SEMI
            result = []
            for row in left_rows:
                matched = any(
                    residual is None or residual(row + other)
                    for other in right_rows
                )
                if matched == expect:
                    result.append(row)
            return result
        out: list[Row] = []
        for row in left_rows:
            emitted = False
            for other in right_rows:
                combined = row + other
                if residual is None or residual(combined):
                    out.append(combined)
                    emitted = True
            if pad is not None and not emitted:
                out.append(row + pad)
        return out

    # -- broadcast exchange ------------------------------------------------

    def exchange(self, ctx: ExecutionContext) -> None:
        """Ship the smaller input to every node (paper's remote join)."""
        node = self.node
        left, right = self.inputs
        ctx.add_shuffle(self)
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI, JoinKind.LEFT_OUTER):
            # The preserved side must stay partitioned; ship the other one.
            ship_left = False
        else:
            ship_left = left.total_rows() <= right.total_rows()
        shipped_op, kept_op = (left, right) if ship_left else (right, left)
        shipped = ColumnBatch.concat(
            [
                shipped_op.partition_batch(p)
                for p in range(shipped_op.output_count)
            ],
            shipped_op.width,
        )
        if shipped_op.props.part.method is not Method.REPLICATED:
            bytes_each = shipped_op.props.row_bytes()
            ctx.add_network(
                self,
                bytes_each * shipped.length * max(self.count - 1, 1),
                shipped.length * max(self.count - 1, 1),
            )
        self._ship_left = ship_left
        self._shipped = shipped
        if kept_op.is_single_copy:
            # Both inputs are now fully available on every node; computing
            # per partition would emit the result once per node.  Compute
            # once instead.
            kept = kept_op.partition_batch(0)
            if ship_left:
                out = self._join_batches(shipped, kept)
            else:
                out = self._join_batches(kept, shipped)
            ctx.add_work(self, 0, kept.length + shipped.length + out.length)
            ctx.add_join_event(
                self,
                0,
                kept.length if ship_left else shipped.length,
                shipped.length if ship_left else kept.length,
            )
            ctx.add_output(self, out.length, 0)
            self.store_batch(0, out)
            for index in range(1, self.output_count):
                self.store_batch(index, ColumnBatch.empty(self.width))
            self._single_done = True

    # -- distributed task protocol -----------------------------------------
    # Broadcast probes are heavy batch kernels, so partition tasks stay
    # remote-eligible even though the operator is a barrier; when the
    # exchange already computed the whole result (both inputs single
    # copies), the leftover partition tasks are no-ops that must stay on
    # the coordinator, where the staged result lives.

    def remote_eligible(self, phase: str) -> bool:
        return phase != "exchange"

    def remote_ready(self, phase: str, p: int) -> bool:
        return not (phase == "partition" and self._single_done)

    def exchange_state(self) -> object:
        return (self._ship_left, self._shipped, self._single_done)

    def set_exchange_state(self, state: object) -> None:
        self._ship_left, self._shipped, self._single_done = state

    # -- per-partition execution -------------------------------------------

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        if self.strategy == "broadcast":
            self._run_broadcast_partition(ctx, p)
            return
        left, right = self.inputs
        if self.single:
            left_batch = left.partition_batch(0)
            right_batch = right.partition_batch(0)
            out = self._join_batches(left_batch, right_batch)
            ctx.add_work(self, 0, left_batch.length + right_batch.length)
            ctx.add_join_event(self, 0, right_batch.length, left_batch.length)
            ctx.add_output(self, out.length, 0)
            self.store_batch(0, out)
            return
        left_batch = left.node_batch(p)
        right_batch = right.node_batch(p)
        out = self._join_batches(left_batch, right_batch)
        ctx.add_work(
            self, p, left_batch.length + right_batch.length + out.length
        )
        ctx.add_join_event(self, p, right_batch.length, left_batch.length)
        ctx.add_output(self, out.length, p)
        self.store_batch(p, out)

    def _run_broadcast_partition(self, ctx: ExecutionContext, p: int) -> None:
        if self._single_done:
            return  # staged by exchange()
        left, right = self.inputs
        kept_op = right if self._ship_left else left
        shipped = self._shipped
        kept = kept_op.node_batch(p)
        if self._ship_left:
            out = self._join_batches(shipped, kept)
        else:
            out = self._join_batches(kept, shipped)
        ctx.add_work(self, p, kept.length + shipped.length + out.length)
        build_rows = kept.length if self._ship_left else shipped.length
        probe_rows = shipped.length if self._ship_left else kept.length
        ctx.add_join_event(self, p, build_rows, probe_rows)
        ctx.add_output(self, out.length, p)
        self.store_batch(p, out)


class PhysicalAggregate(PhysicalOperator):
    """Aggregation in one of three modes:

    * ``single`` — the input is one copy (gathered/replicated); one task;
    * ``local`` — groups are partition-local; one task per partition;
    * ``two_phase`` — per-partition partials (``prepare_partition``, run
      concurrently), then compact accumulator states ship to their hash
      targets and merge in the exchange.  Aggregate argument expressions
      evaluate as batch kernels, but partials accumulate in source row
      order (and merge in source order), so float accumulation matches
      the serial row engine bit for bit.
    """

    name = "aggregate"

    def __init__(
        self,
        annotated: Annotated,
        child: PhysicalOperator,
        cluster_count: int,
    ) -> None:
        node: Aggregate = annotated.node
        self.strategy = annotated.extra["strategy"]
        self.scalar = not node.group_by
        if self.strategy == "single":
            output_count = 1
        elif self.strategy == "local":
            output_count = child.output_count
        else:
            output_count = 1 if self.scalar else cluster_count
        super().__init__(annotated, [child], output_count)
        self.node = node
        self.count = cluster_count
        self.group_positions = child.props.positions(node.group_by)
        # Single-column groups key their partial-state dicts on the bare
        # value (no per-row 1-tuples); the output rows and the shuffle
        # hash re-wrap/unwrap at the edges, so grouping and placement are
        # identical to the tuple form.
        self.single_key = len(self.group_positions) == 1
        self.agg_fns = [
            (
                spec,
                spec.expr.bind_batch(child.props.columns)
                if spec.expr
                else None,
            )
            for spec in node.aggregates
        ]
        self.key_bytes = 8 * max(len(node.group_by), 1)
        if self.strategy == "two_phase":
            self.barrier = True
            self.prepare_count = child.output_count
        self._partials: list[dict[tuple, list] | None] = [None] * self.prepare_count
        self._staged: list[ColumnBatch] = []

    @property
    def label(self) -> str:
        return f"aggregate[{self.strategy}]"

    def _aggregate_batch(self, batch: ColumnBatch) -> ColumnBatch:
        groups = self._partial_states(batch)
        if not groups and not self.node.group_by:
            groups[()] = [make_accumulator(spec.func) for spec, _ in self.agg_fns]
        if self.single_key:
            rows = [
                (key,) + tuple(acc.result() for acc in accs)
                for key, accs in groups.items()
            ]
        else:
            rows = [
                key + tuple(acc.result() for acc in accs)
                for key, accs in groups.items()
            ]
        return ColumnBatch.from_rows(rows, self.width)

    def _partial_states(self, batch: ColumnBatch) -> dict[tuple, list]:
        """Columnar partial aggregation: group, then accumulate per column.

        One pass collects each group's row indices in ascending order;
        each (group, aggregate) pair then folds its whole value column
        through one ``add_many`` call.  The per-accumulator fold order is
        identical to the historical per-row loop — ascending row index
        within each group — so float partials (and therefore the
        row-engine golden traces) are bit-identical; only the per-row
        virtual dispatch across every aggregate disappears.
        """
        agg_fns = self.agg_fns
        # Kernels produce whole value columns; None marks the COUNT(*)
        # sentinel (no argument expression).
        value_columns = [
            fn(batch) if fn is not None else None for _spec, fn in agg_fns
        ]
        length = batch.length
        if not self.group_positions:
            # Scalar aggregate: one group over every row, no key pass.
            group_rows: dict[tuple, object] = (
                {(): range(length)} if length else {}
            )
        else:
            if self.single_key:
                keys = batch.columns[self.group_positions[0]]
            else:
                keys = batch.key_tuples(self.group_positions)
            group_rows = {}
            for index, key in enumerate(keys):
                rows = group_rows.get(key)
                if rows is None:
                    group_rows[key] = [index]
                else:
                    rows.append(index)
        groups: dict[tuple, list] = {}
        for key, rows in group_rows.items():
            accs = [make_accumulator(spec.func) for spec, _ in agg_fns]
            groups[key] = accs
            for acc, column in zip(accs, value_columns):
                if column is None:
                    acc.add_count(len(rows))
                else:
                    acc.add_many(column, rows)
        return groups

    # -- two-phase ---------------------------------------------------------

    def prepare_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        batch = child.partition_batch(p)
        ctx.account(self, child.props.part.method, p, batch.length)
        self._partials[p] = self._partial_states(batch)

    def exchange(self, ctx: ExecutionContext) -> None:
        """Ship compact states to their hash targets and merge."""
        ctx.add_shuffle(self)
        scalar = self.scalar
        count = self.count
        merged: list[dict[tuple, list]] = [
            {} for _ in range(1 if scalar else count)
        ]
        key_bytes = self.key_bytes
        shipped_bytes = 0
        shipped_count = 0
        for index in range(self.prepare_count):
            partials = self._partials[index]
            assert partials is not None
            for key, accs in partials.items():
                target = (
                    0
                    if scalar
                    else stable_hash(
                        key
                        if self.single_key or len(key) > 1
                        else key[0]
                    )
                    % count
                )
                if target != index:
                    # Plain counters: per-state transfers sum into one
                    # accounting call without changing any total.
                    shipped_bytes += key_bytes + sum(
                        acc.state_bytes() for acc in accs
                    )
                    shipped_count += 1
                bucket = merged[0 if scalar else target]
                existing = bucket.get(key)
                if existing is None:
                    bucket[key] = accs
                else:
                    for acc, other in zip(existing, accs):
                        acc.merge_state(other.state())
        if shipped_count:
            ctx.add_network(self, shipped_bytes, shipped_count)
        self._staged = []
        for bucket in merged:
            if scalar and not bucket:
                bucket[()] = [
                    make_accumulator(spec.func) for spec, _ in self.agg_fns
                ]
            if self.single_key:
                rows = [
                    (key,) + tuple(acc.result() for acc in accs)
                    for key, accs in bucket.items()
                ]
            else:
                rows = [
                    key + tuple(acc.result() for acc in accs)
                    for key, accs in bucket.items()
                ]
            self._staged.append(ColumnBatch.from_rows(rows, self.width))

    # -- execution ---------------------------------------------------------

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        child = self.inputs[0]
        if self.strategy == "single":
            batch = child.partition_batch(0)
            ctx.add_work(self, 0, batch.length)
            out = self._aggregate_batch(batch)
            ctx.add_output(self, out.length, 0)
            self.store_batch(0, out)
            return
        if self.strategy == "local":
            batch = child.partition_batch(p)
            out = self._aggregate_batch(batch)
            ctx.add_work(self, p, batch.length + out.length)
            ctx.add_output(self, out.length, p)
            self.store_batch(p, out)
            return
        staged = self._staged[p]
        ctx.add_work(self, 0 if self.scalar else p, staged.length)
        ctx.add_output(self, staged.length, p)
        self.store_batch(p, staged)

    # -- distributed task protocol -----------------------------------------
    # Only consulted for the two_phase (barrier) strategy, whose
    # run_partition reads the staged merge, never the child; accumulator
    # objects are plain picklable Python state.

    partition_reads_inputs = False

    def prepare_state(self, p: int) -> object:
        return self._partials[p]

    def set_prepare_state(self, p: int, state: object) -> None:
        self._partials[p] = state

    def exchange_state(self) -> object:
        return self._staged

    def set_exchange_state(self, state: object) -> None:
        self._staged = state


class PhysicalOrderBy(PhysicalOperator):
    """Gather every partition on the coordinator, sort, apply the limit.

    Sorting happens on row tuples: a coordinator-side, once-per-query
    path where Python's stable ``sort`` over materialised rows beats
    columnar reordering.
    """

    barrier = True
    name = "order_by"

    def __init__(self, annotated: Annotated, child: PhysicalOperator) -> None:
        node: OrderBy = annotated.node
        super().__init__(annotated, [child], 1)
        self.sort_positions = [
            (child.props.position(column), ascending)
            for column, ascending in node.keys
        ]
        self.limit = node.limit
        self._staged = ColumnBatch.empty(self.width)

    def exchange(self, ctx: ExecutionContext) -> None:
        rows = _gather(self.inputs[0], self, ctx).to_rows()
        for position, ascending in reversed(self.sort_positions):
            rows.sort(
                key=lambda row: _sort_key(row[position]), reverse=not ascending
            )
        if self.limit is not None:
            rows = rows[: self.limit]
        ctx.add_work(self, 0, len(rows))
        self._staged = ColumnBatch.from_rows(rows, self.width)

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        ctx.add_output(self, self._staged.length, 0)
        self.store_batch(0, self._staged)

    partition_reads_inputs = False

    def exchange_state(self) -> object:
        return self._staged

    def set_exchange_state(self, state: object) -> None:
        self._staged = state


class PhysicalGather(PhysicalOperator):
    """Implicit root: collect the final result on the coordinator."""

    barrier = True
    name = "gather"

    def __init__(self, annotated: Annotated, child: PhysicalOperator) -> None:
        super().__init__(annotated, [child], 1)
        self._staged = ColumnBatch.empty(self.width)

    def exchange(self, ctx: ExecutionContext) -> None:
        self._staged = _gather(self.inputs[0], self, ctx)

    def run_partition(self, ctx: ExecutionContext, p: int) -> None:
        ctx.add_output(self, self._staged.length, 0)
        self.store_batch(0, self._staged)

    partition_reads_inputs = False

    def exchange_state(self) -> object:
        return self._staged

    def set_exchange_state(self, state: object) -> None:
        self._staged = state


def _gather(
    child: PhysicalOperator, op: PhysicalOperator, ctx: ExecutionContext
) -> ColumnBatch:
    """Move every partition of *child* to the coordinator, metering it."""
    if child.is_single_copy:
        return child.partition_batch(0)
    row_bytes = child.props.row_bytes()
    batches = []
    for index in range(child.output_count):
        partition = child.partition_batch(index)
        batches.append(partition)
        if index != 0 and partition.length:
            ctx.add_network(
                op, row_bytes * partition.length, partition.length
            )
    return ColumnBatch.concat(batches, child.width)
