"""Optional numpy acceleration for the columnar kernels (feature flag).

The batch engine is pure Python by default: ``ColumnBatch`` columns are
plain lists and the vectorized expression kernels run as C-speed
``map``/``zip``/comprehension loops.  When numpy is installed, setting the
``REPRO_VECTOR_NUMPY`` environment variable (or calling
:func:`set_numpy_enabled`) lets a few numeric kernels (comparisons,
float arithmetic) drop into numpy ufuncs instead.

The contract is *identical semantics*: the numpy paths only engage on
columns they can prove safe (no NULLs, numeric machine dtypes, no
division) and fall back to the pure-Python kernel otherwise, so results
are bit-for-bit equal with the flag on or off — the vector-smoke CI leg
runs the equivalence and fuzz suites both ways to keep it that way.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via numpy_available()
    import numpy as _np
except Exception:  # pragma: no cover - numpy genuinely absent
    _np = None

_TRUTHY = ("1", "true", "yes", "on")

_enabled = os.environ.get("REPRO_VECTOR_NUMPY", "").strip().lower() in _TRUTHY


def numpy_available() -> bool:
    """True if numpy can be imported at all."""
    return _np is not None


def numpy_enabled() -> bool:
    """True if the numpy kernel paths are switched on (and importable)."""
    return _enabled and _np is not None


def set_numpy_enabled(flag: bool) -> bool:
    """Toggle the numpy kernel paths; returns the previous setting.

    Enabling without numpy installed is a silent no-op —
    :func:`numpy_enabled` stays False and the pure-Python kernels run.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def as_numeric_array(values: list):
    """*values* as a numeric numpy array, or None if unsafe.

    Safe means: the list converts to a bool/int/float dtype (``biuf``)
    without object fallback — which also proves it holds no ``None``.
    Anything else (strings, NULLs, arbitrary-precision ints) returns
    None so the caller uses the pure-Python kernel.
    """
    if _np is None:
        return None
    try:
        array = _np.asarray(values)
    except Exception:  # ragged / unconvertible input
        return None
    if array.ndim != 1 or array.dtype.kind not in "biuf":
        return None
    return array
