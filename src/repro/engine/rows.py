"""Row-level helpers shared by the physical operators and both executors.

Kept free of module-level ``repro.query`` imports so it can be imported
from any point of the engine/query import graph without re-entering a
package initialiser mid-import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.query.relation import RelProps

Row = tuple


def _sort_key(value: object) -> tuple:
    """Total ordering across None and mixed values (NULLs sort first)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def _null_free_key(key: tuple) -> bool:
    """SQL equality: a join key containing NULL never matches anything.

    Keyed join paths must skip NULL-bearing keys on both sides instead of
    letting Python's ``None == None`` pair them up.
    """
    return all(value is not None for value in key)


def _null_pad(props: RelProps) -> Row:
    """Null padding for outer joins; hidden dup bits pad to 0, not NULL,
    so padded rows survive PREF duplicate elimination exactly once."""
    from repro.query.relation import is_hidden

    return tuple(0 if is_hidden(column) else None for column in props.columns)
