"""Row- and batch-level containers shared by the operators and executors.

Kept free of module-level ``repro.query`` imports so it can be imported
from any point of the engine/query import graph without re-entering a
package initialiser mid-import.

The execution engine moves data between physical operators as
:class:`ColumnBatch` payloads — a column-oriented container whose columns
are plain Python lists with a (lazily materialised) validity bitmap per
column.  SQL NULL is ``None`` in the value list *and* a cleared validity
bit; the two views are kept consistent by construction, which is what
lets kernels pick a no-NULL fast path from the bitmap without scanning.
The row-oriented helpers (``_sort_key`` and friends) remain for the
coordinator-side paths (sorting, the single-node oracle) that genuinely
work tuple by tuple.
"""

from __future__ import annotations

from itertools import compress
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from repro.query.relation import RelProps

Row = tuple

#: Default number of rows processed per kernel invocation by the pipeline
#: operators.  Overridable per executor/cluster and via the CLI/bench
#: ``--batch-size`` knob; results are invariant in it by contract.
DEFAULT_BATCH_SIZE = 1024


def _sort_key(value: object) -> tuple:
    """Total ordering across None and arbitrary mixed values.

    NULLs sort first, then booleans/numbers (NaN deterministically after
    every ordered number), then strings, then everything else grouped by
    type name.  Ranking by type keeps the comparison total even when one
    column mixes ints and strings (or stranger values) across batches —
    Python would raise TypeError on ``3 < "a"``, and a merely per-type
    key would make ``sorted`` order-dependent.
    """
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        if value != value:  # NaN: no order among numbers; pin it after them
            return (1, 1, 0)
        return (1, 0, value)
    if isinstance(value, str):
        return (2, 0, value)
    return (3, 0, (type(value).__name__, str(value)))


def _null_free_key(key: tuple) -> bool:
    """SQL equality: a join key containing NULL never matches anything.

    Keyed join paths must skip NULL-bearing keys on both sides instead of
    letting Python's ``None == None`` pair them up.
    """
    return all(value is not None for value in key)


def _null_pad(props: RelProps) -> Row:
    """Null padding for outer joins; hidden dup bits pad to 0, not NULL,
    so padded rows survive PREF duplicate elimination exactly once."""
    from repro.query.relation import is_hidden

    return tuple(0 if is_hidden(column) else None for column in props.columns)


class ColumnBatch:
    """A batch of rows stored column-wise: the engine's data payload.

    Attributes:
        columns: One plain Python list per column, all of equal length.
            SQL NULL is stored as ``None``.
        length: Number of rows (kept explicitly so zero-column batches —
            e.g. a scalar aggregate's input projection — still know their
            cardinality).

    Batches are immutable by convention: operators build new batches from
    old columns (which may be aliased, never mutated in place).  The
    per-column validity bitmap is derived lazily from the value lists and
    cached — ``validity(i)[r]`` is 1 iff ``columns[i][r] is not None`` —
    so hot kernels can branch to a no-NULL fast path without paying for
    bitmap maintenance on every transform.

    Batches pickle as (columns, length), which is what ships between the
    coordinator and process-pool workers.
    """

    __slots__ = ("columns", "length", "_validity")

    def __init__(self, columns: list[list], length: int | None = None) -> None:
        if length is None:
            length = len(columns[0]) if columns else 0
        self.columns = columns
        self.length = length
        self._validity: list[bytearray | None] | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Row], width: int) -> "ColumnBatch":
        """Transpose *rows* (each of *width* fields) into a batch."""
        if not rows:
            return cls([[] for _ in range(width)], 0)
        return cls([list(column) for column in zip(*rows)], len(rows))

    @classmethod
    def empty(cls, width: int) -> "ColumnBatch":
        """A zero-row batch of *width* columns."""
        return cls([[] for _ in range(width)], 0)

    @staticmethod
    def concat(batches: Sequence["ColumnBatch"], width: int) -> "ColumnBatch":
        """Concatenate *batches* (all of *width* columns) in order."""
        batches = [batch for batch in batches if batch.length]
        if not batches:
            return ColumnBatch.empty(width)
        if len(batches) == 1:
            return batches[0]
        columns = []
        for index in range(width):
            merged = list(batches[0].columns[index])
            for batch in batches[1:]:
                merged.extend(batch.columns[index])
            columns.append(merged)
        return ColumnBatch(columns, sum(batch.length for batch in batches))

    # -- shape -------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnBatch):
            return NotImplemented
        return self.length == other.length and self.columns == other.columns

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"ColumnBatch({self.width} cols x {self.length} rows)"

    # -- validity bitmaps --------------------------------------------------

    def validity(self, index: int) -> bytearray:
        """The validity bitmap of column *index* (1 = valid, 0 = NULL)."""
        if self._validity is None:
            self._validity = [None] * len(self.columns)
        cached = self._validity[index]
        if cached is None:
            cached = bytearray(
                0 if value is None else 1 for value in self.columns[index]
            )
            self._validity[index] = cached
        return cached

    def has_nulls(self, index: int) -> bool:
        """True if column *index* contains any NULL."""
        return None in self.columns[index]

    # -- row views ---------------------------------------------------------

    def to_rows(self) -> list[Row]:
        """The batch as a list of row tuples."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def iter_rows(self) -> Iterator[Row]:
        """Iterate over the rows as tuples."""
        if not self.columns:
            return iter([()] * self.length)
        return zip(*self.columns)

    # -- transforms (always produce new batches) ---------------------------

    def select(self, positions: Sequence[int]) -> "ColumnBatch":
        """A batch holding only the columns at *positions* (aliased)."""
        return ColumnBatch([self.columns[p] for p in positions], self.length)

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """Rows ``start:stop`` as a new batch."""
        stop = min(stop, self.length)
        return ColumnBatch(
            [column[start:stop] for column in self.columns],
            max(stop - start, 0),
        )

    def chunks(self, size: int) -> Iterator["ColumnBatch"]:
        """Split into consecutive batches of at most *size* rows.

        A batch already within *size* yields itself (no copying); an
        empty batch yields nothing.
        """
        if self.length <= size:
            if self.length:
                yield self
            return
        for start in range(0, self.length, size):
            yield self.slice(start, start + size)

    def compress(self, mask: Sequence[object]) -> "ColumnBatch":
        """Rows whose *mask* entry is truthy (None counts as false)."""
        columns = [list(compress(column, mask)) for column in self.columns]
        if columns:
            kept = len(columns[0])
        else:
            kept = sum(1 for value in mask if value)
        return ColumnBatch(columns, kept)

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """The rows at *indices*, in that order (indices may repeat)."""
        # map(column.__getitem__, ...) keeps the gather loop in C.
        return ColumnBatch(
            [list(map(column.__getitem__, indices)) for column in self.columns],
            len(indices),
        )

    def key_tuples(self, positions: Sequence[int]) -> list[tuple]:
        """Per-row key tuples over the columns at *positions*.

        Matches the row engine's ``tuple(row[p] for p in positions)``;
        with no positions every row keys to ``()``.
        """
        if not positions:
            return [()] * self.length
        return list(zip(*(self.columns[p] for p in positions)))

    def key_values(self, positions: Sequence[int]) -> list:
        """Shuffle keys: the bare column for one position, tuples else."""
        if len(positions) == 1:
            return self.columns[positions[0]]
        return self.key_tuples(positions)

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> tuple:
        return (self.columns, self.length)

    def __setstate__(self, state: tuple) -> None:
        self.columns, self.length = state
        self._validity = None


def distinct_batch(batch: ColumnBatch) -> ColumnBatch:
    """Row-level DISTINCT preserving first-occurrence order.

    The batch equivalent of ``list(dict.fromkeys(rows))``.
    """
    rows = dict.fromkeys(batch.iter_rows())
    if len(rows) == batch.length:
        return batch
    return ColumnBatch.from_rows(list(rows), batch.width)


def pad_take(
    column: list, indices: Sequence[int], pad_value: object
) -> list:
    """``[column[i] for i in indices]`` with ``-1`` mapping to *pad_value*.

    The outer-join gather: ``-1`` marks a probe row with no match, whose
    build-side columns fill with the null pad.
    """
    return [pad_value if i < 0 else column[i] for i in indices]


def all_false_mask(masks: Iterable[Sequence[object]], length: int) -> list[bool]:
    """Per-row ``True`` where every mask entry is falsy.

    Used by PREF dedup: a row is canonical when all governing dup bits
    are 0.
    """
    masks = list(masks)
    if not masks:
        return [True] * length
    if len(masks) == 1:
        return [not value for value in masks[0]]
    return [not any(values) for values in zip(*masks)]
