"""The physical compiler: lowers annotated logical plans to operators.

Mirrors the dispatch of the old monolithic interpreter, but instead of
executing each node it *binds* it: expressions are compiled against the
child's column layout, pruning decisions and join/aggregate strategies
are resolved, and everything ends up in self-contained operator objects a
backend can schedule partition by partition.

The compiler also appends the implicit finalisation the interpreter
performed inline: a PREF duplicate-elimination pass when the root result
still carries governing dup columns, then a gather onto the coordinator.
Operator ids are assigned in post-order, which keeps deferred
join-event flushing (see :mod:`repro.engine.context`) byte-compatible
with serial execution.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ExecutionError
from repro.query.plan import (
    Aggregate,
    BloomProbe,
    DedupFilter,
    Filter,
    Join,
    OrderBy,
    PartnerFilter,
    Project,
    Repartition,
    Scan,
)
from repro.query.relation import Method, PartInfo, has_column
from repro.query.rewrite import Annotated
from repro.engine.rows import DEFAULT_BATCH_SIZE
from repro.engine.operators import (
    PhysicalAggregate,
    PhysicalBloomProbe,
    PhysicalDedup,
    PhysicalFilter,
    PhysicalGather,
    PhysicalHashJoin,
    PhysicalOperator,
    PhysicalOrderBy,
    PhysicalPartnerFilter,
    PhysicalProject,
    PhysicalRepartition,
    PhysicalScan,
)
from repro.storage.partitioned import PartitionedDatabase


def compile_plan(
    annotated: Annotated,
    partitioned: PartitionedDatabase,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> PhysicalOperator:
    """Lower *annotated* into a physical operator tree, rooted at the
    implicit gather that lands the result on the coordinator.

    *batch_size* sets how many rows the pipeline operators feed their
    expression kernels per invocation; results are invariant in it.
    """
    compiler = _Compiler(partitioned)
    root = compiler.lower(annotated)
    if annotated.props.governing:
        # Final PREF dedup before results leave the cluster (the
        # interpreter's _finalise); charged at full input size.  Its
        # result no longer carries governing dup columns, which the
        # corrected props record for EXPLAIN ANALYZE.
        dedup_props = replace(annotated.props, governing=())
        root = PhysicalDedup(
            replace(annotated, props=dedup_props),
            root,
            annotated.props.positions(annotated.props.governing),
            indexed=False,
        )
    gather_part = PartInfo(Method.GATHERED, 1)
    gather_props = replace(
        root.annotated.props, part=gather_part, governing=()
    )
    root = PhysicalGather(replace(annotated, props=gather_props), root)
    for op_id, op in enumerate(root.walk()):
        op.op_id = op_id
        op.batch_size = batch_size
    return root


def _scan_adjacent(annotated: Annotated) -> bool:
    """True when *annotated* reads base partitions index-style.

    A Bloom probe inserted over a scan is transparent to the index cost
    model: operators above still charge output rows only, exactly as
    they would directly over the scan.
    """
    while isinstance(annotated.node, BloomProbe):
        annotated = annotated.inputs[0]
    return isinstance(annotated.node, Scan)


class _Compiler:
    """Compiles one annotated plan against one partitioned database."""

    def __init__(self, partitioned: PartitionedDatabase) -> None:
        self.partitioned = partitioned
        self.count = partitioned.partition_count

    def lower(self, annotated: Annotated) -> PhysicalOperator:
        node = annotated.node
        if isinstance(node, Scan):
            return self._scan(annotated)
        if isinstance(node, Filter):
            return self._filter(annotated)
        if isinstance(node, BloomProbe):
            return self._bloom_probe(annotated)
        if isinstance(node, Project):
            return self._project(annotated)
        if isinstance(node, DedupFilter):
            return self._dedup(annotated)
        if isinstance(node, PartnerFilter):
            return self._partner_filter(annotated)
        if isinstance(node, Repartition):
            return self._repartition(annotated)
        if isinstance(node, Join):
            return self._join(annotated)
        if isinstance(node, Aggregate):
            return self._aggregate(annotated)
        if isinstance(node, OrderBy):
            return self._order_by(annotated)
        raise ExecutionError(f"cannot compile node {node!r}")

    # -- leaves ------------------------------------------------------------

    def _scan(self, annotated: Annotated) -> PhysicalOperator:
        node: Scan = annotated.node
        table = self.partitioned.table(node.table)
        if annotated.props.part.method is Method.REPLICATED:
            return PhysicalScan(annotated, table, 1, None)
        prune = annotated.extra.get("prune")
        allowed = prune.partitions(table) if prune is not None else None
        return PhysicalScan(annotated, table, len(table.partitions), allowed)

    # -- pipeline operators ------------------------------------------------

    def _filter(self, annotated: Annotated) -> PhysicalOperator:
        node: Filter = annotated.node
        child = self.lower(annotated.inputs[0])
        predicate = node.condition.bind_batch(child.props.columns)
        indexed = _scan_adjacent(annotated.inputs[0])
        return PhysicalFilter(annotated, child, predicate, indexed)

    def _bloom_probe(self, annotated: Annotated) -> PhysicalOperator:
        child = self.lower(annotated.inputs[0])
        filters = annotated.extra.get("bloom", ())
        indexed = _scan_adjacent(annotated.inputs[0])
        return PhysicalBloomProbe(annotated, child, filters, indexed)

    def _project(self, annotated: Annotated) -> PhysicalOperator:
        node: Project = annotated.node
        child = self.lower(annotated.inputs[0])
        fns = [expr.bind_batch(child.props.columns) for _name, expr in node.outputs]
        local_distinct = annotated.extra.get("distinct") == "local"
        return PhysicalProject(annotated, child, fns, local_distinct)

    def _dedup(self, annotated: Annotated) -> PhysicalOperator:
        child = self.lower(annotated.inputs[0])
        positions = child.props.positions(child.props.governing)
        indexed = _scan_adjacent(annotated.inputs[0])
        return PhysicalDedup(annotated, child, positions, indexed)

    def _partner_filter(self, annotated: Annotated) -> PhysicalOperator:
        node: PartnerFilter = annotated.node
        child = self.lower(annotated.inputs[0])
        position = child.props.position(has_column(node.table))
        indexed = _scan_adjacent(annotated.inputs[0])
        return PhysicalPartnerFilter(
            annotated, child, position, node.expect, indexed
        )

    # -- exchanges and multi-input operators -------------------------------

    def _repartition(self, annotated: Annotated) -> PhysicalOperator:
        node: Repartition = annotated.node
        child = self.lower(annotated.inputs[0])
        key_positions = child.props.positions(node.keys)
        governing = (
            child.props.positions(child.props.governing) if node.dedup else ()
        )
        return PhysicalRepartition(annotated, child, key_positions, governing)

    def _join(self, annotated: Annotated) -> PhysicalOperator:
        left = self.lower(annotated.inputs[0])
        right = self.lower(annotated.inputs[1])
        return PhysicalHashJoin(annotated, left, right, self.count)

    def _aggregate(self, annotated: Annotated) -> PhysicalOperator:
        child = self.lower(annotated.inputs[0])
        return PhysicalAggregate(annotated, child, self.count)

    def _order_by(self, annotated: Annotated) -> PhysicalOperator:
        child = self.lower(annotated.inputs[0])
        return PhysicalOrderBy(annotated, child)
