"""The execution engine: physical plans, backends, and accounting.

The engine turns an :class:`~repro.query.rewrite.Annotated` logical plan
into a tree of self-contained physical operators (:mod:`.operators`) via
the physical compiler (:mod:`.compile`), and schedules their
per-(operator, partition) tasks through a pluggable backend
(:mod:`.backends`).  All cost accounting flows through an
:class:`~repro.engine.context.ExecutionContext` (:mod:`.context`), which
wraps :class:`~repro.query.cost.ExecutionStats` with thread-safe
per-operator × per-node metric recording and an optional trace hook.

Exports are resolved lazily (PEP 562): the engine and :mod:`repro.query`
import each other's submodules, and an eager package init here would
re-enter half-initialised modules when the engine is imported first
(e.g. via :mod:`repro.cluster`).
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.backends import (
        Backend,
        ProcessPoolBackend,
        SerialBackend,
        TaskPayload,
        TaskResult,
        ThreadPoolBackend,
        build_task_graph,
        make_backend,
    )
    from repro.engine.compile import compile_plan
    from repro.engine.context import (
        ContextDelta,
        ExecutionContext,
        OperatorStats,
        TraceEvent,
        format_operator_stats,
    )
    from repro.engine.operators import PhysicalOperator

#: Export name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "Backend": "repro.engine.backends",
    "SerialBackend": "repro.engine.backends",
    "ThreadPoolBackend": "repro.engine.backends",
    "ProcessPoolBackend": "repro.engine.backends",
    "TaskPayload": "repro.engine.backends",
    "TaskResult": "repro.engine.backends",
    "build_task_graph": "repro.engine.backends",
    "make_backend": "repro.engine.backends",
    "compile_plan": "repro.engine.compile",
    "ContextDelta": "repro.engine.context",
    "ExecutionContext": "repro.engine.context",
    "OperatorStats": "repro.engine.context",
    "TraceEvent": "repro.engine.context",
    "format_operator_stats": "repro.engine.context",
    "PhysicalOperator": "repro.engine.operators",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
