"""Pluggable scheduling backends for the physical engine.

A backend receives a compiled operator tree and an
:class:`~repro.engine.context.ExecutionContext` and decides *when and
where* each per-(operator, partition) task runs; the operators decide
*what* each task does.  Because every accounting call is commutative (and
join events are flushed in deterministic order by the context), any
schedule that respects the task dependencies produces identical rows and
identical :class:`~repro.query.cost.ExecutionStats`.

All backends share one task DAG, built by :func:`build_task_graph`.
Dependencies, per operator:

* pipeline operator, output partition ``p`` → partition ``p`` of every
  input (partition 0 for single-copy inputs);
* barrier operator: ``prepare_partition(p)`` → partition ``p`` of the
  input; ``exchange()`` → all own prepare tasks and *all* partitions of
  all inputs; ``run_partition(p)`` → ``exchange()``.

Each task additionally carries explicit data-flow metadata: the
:class:`Slot` it writes (an output partition, a prepare state, or an
exchange state) and the slots it reads.  In-process backends ignore the
slots — tasks read and write the shared operator tree directly.  The
process-pool backend uses them to build :class:`TaskPayload` messages:
the slot values a job must carry into a worker, and the slot values the
worker must ship back, together with a mergeable
:class:`~repro.engine.context.ContextDelta` of everything it accounted.

:class:`SerialBackend` executes the tasks in plan post-order on the
calling thread — bitwise-identical to the old monolithic interpreter.
:class:`ThreadPoolBackend` runs independent partitions concurrently
between exchange barriers on a shared thread pool (concurrency without
parallelism: CPython threads cannot speed up pure-Python row loops).
:class:`ProcessPoolBackend` runs fused per-partition task chains in
worker processes for true multicore execution; inter-stage row buckets
route back through the coordinator, and stats deltas merge commutatively
at the exchange barriers.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Callable, NamedTuple

from repro.engine.context import ContextDelta, ExecutionContext, TraceEvent
from repro.obs.metrics import TIME_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.operators import PhysicalOperator


class Backend:
    """Schedules the tasks of a compiled physical plan."""

    name = "backend"

    def run(self, root: PhysicalOperator, ctx: ExecutionContext) -> None:
        """Execute every task of the tree rooted at *root*."""
        raise NotImplementedError

    def close(self) -> None:
        """Release scheduler resources (idempotent; optional)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _timed(
    ctx,
    op: PhysicalOperator,
    phase: str,
    node_id: int | None,
    fn: Callable[[], None],
) -> None:
    """Run one task, reporting it to the trace hook if one is installed.

    *ctx* is an :class:`ExecutionContext` or a worker-side
    :class:`~repro.engine.context.ContextDelta` — both expose ``trace``
    and ``record_trace``.
    """
    if ctx.trace is None:
        fn()
        return
    started = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - started
    if multiprocessing.current_process().name == "MainProcess":
        worker = threading.current_thread().name
    else:
        worker = f"pid:{os.getpid()}"
    ctx.metrics.inc(f"engine.tasks.{phase}")
    ctx.metrics.observe("time.task_seconds", elapsed, TIME_BUCKETS)
    ctx.record_trace(
        TraceEvent(op.op_id, op.label, phase, node_id, elapsed, worker)
    )


# --------------------------------------------------------------------------
# The shared task DAG
# --------------------------------------------------------------------------


class Slot(NamedTuple):
    """Address of one piece of task state in the operator tree.

    ``kind`` is ``"part"`` (output partition ``index``), ``"prep"``
    (prepare state ``index``), or ``"exch"`` (exchange state, index 0).
    Slots are the unit of data movement for out-of-process backends.
    """

    kind: str
    op_id: int
    index: int


def read_slot(ops: dict[int, PhysicalOperator], slot: Slot) -> object:
    """Fetch the current value of *slot* from the operator tree."""
    op = ops[slot.op_id]
    if slot.kind == "part":
        return op.partition_batch(slot.index)
    if slot.kind == "prep":
        return op.prepare_state(slot.index)
    return op.exchange_state()


def write_slot(
    ops: dict[int, PhysicalOperator], slot: Slot, value: object
) -> None:
    """Install *value* into *slot* of the operator tree."""
    op = ops[slot.op_id]
    if slot.kind == "part":
        op.store_batch(slot.index, value)
    elif slot.kind == "prep":
        op.set_prepare_state(slot.index, value)
    else:
        op.set_exchange_state(value)


class EngineTask:
    """One schedulable unit: an operator phase on one partition."""

    __slots__ = (
        "op", "phase", "index", "order", "writes", "reads",
        "dependents", "deps", "remaining",
    )

    def __init__(
        self,
        op: PhysicalOperator,
        phase: str,
        index: int,
        order: int,
        writes: Slot,
        reads: list[Slot],
    ) -> None:
        self.op = op
        self.phase = phase  #: "prepare" | "exchange" | "partition"
        self.index = index
        self.order = order  #: position in serial (post-)order
        self.writes = writes
        self.reads = reads
        self.dependents: list["EngineTask"] = []
        self.deps: list["EngineTask"] = []
        self.remaining = 0

    def run(self, ctx) -> None:
        """Execute this task against *ctx* (context or delta)."""
        op, index = self.op, self.index
        if self.phase == "prepare":
            _timed(
                ctx, op, "prepare", index,
                lambda: op.prepare_partition(ctx, index),
            )
        elif self.phase == "exchange":
            _timed(ctx, op, "exchange", None, lambda: op.exchange(ctx))
        else:
            _timed(
                ctx, op, "partition", index,
                lambda: op.run_partition(ctx, index),
            )


def _link(dep: EngineTask, task: EngineTask) -> None:
    dep.dependents.append(task)
    task.deps.append(dep)
    task.remaining += 1


def build_task_graph(root: PhysicalOperator) -> list[EngineTask]:
    """Build the task DAG of the plan rooted at *root*.

    The returned list is in serial order — per operator in post-order:
    prepares ascending, exchange, output partitions ascending — which is
    exactly the old monolithic interpreter's loop structure, so executing
    the list front to back *is* serial execution.
    """
    tasks: list[EngineTask] = []
    #: Per operator, the dependency anchors downstream consumers wait on:
    #: one task per output partition.
    anchors: dict[int, list[EngineTask]] = {}

    def add(
        op: PhysicalOperator, phase: str, index: int,
        writes: Slot, reads: list[Slot],
    ) -> EngineTask:
        task = EngineTask(op, phase, index, len(tasks), writes, reads)
        tasks.append(task)
        return task

    def child_slot(child: PhysicalOperator, p: int) -> Slot:
        return Slot("part", child.op_id, p if child.output_count > 1 else 0)

    for op in root.walk():
        if op.barrier:
            prepares = [
                add(
                    op, "prepare", p,
                    Slot("prep", op.op_id, p),
                    [child_slot(child, p) for child in op.inputs],
                )
                for p in range(op.prepare_count)
            ]
            for p, task in enumerate(prepares):
                for child in op.inputs:
                    slot = p if child.output_count > 1 else 0
                    _link(anchors[child.op_id][slot], task)
            exchange = add(
                op, "exchange", 0,
                Slot("exch", op.op_id, 0),
                [task.writes for task in prepares]
                + [
                    child_slot(child, p)
                    for child in op.inputs
                    for p in range(child.output_count)
                ],
            )
            for task in prepares:
                _link(task, exchange)
            # The exchange consumes complete inputs (broadcast ships
            # whole relations, repartition merges every bucket).
            for child in op.inputs:
                for anchor in anchors[child.op_id]:
                    _link(anchor, exchange)
            outs = []
            for p in range(op.output_count):
                reads = [exchange.writes]
                if op.partition_reads_inputs:
                    reads += [child_slot(child, p) for child in op.inputs]
                task = add(op, "partition", p, Slot("part", op.op_id, p), reads)
                _link(exchange, task)
                outs.append(task)
            anchors[op.op_id] = outs
        else:
            outs = []
            for p in range(op.output_count):
                task = add(
                    op, "partition", p,
                    Slot("part", op.op_id, p),
                    [child_slot(child, p) for child in op.inputs],
                )
                for child in op.inputs:
                    slot = p if child.output_count > 1 else 0
                    _link(anchors[child.op_id][slot], task)
                outs.append(task)
            anchors[op.op_id] = outs
    return tasks


# --------------------------------------------------------------------------
# In-process backends
# --------------------------------------------------------------------------


class SerialBackend(Backend):
    """Runs every task on the calling thread, in plan post-order.

    The task order — per operator: prepares ascending, exchange, output
    partitions ascending — retraces the interpreter's loops exactly, so
    results and stats are bitwise-identical to the pre-engine executor.
    """

    name = "serial"

    def run(self, root: PhysicalOperator, ctx: ExecutionContext) -> None:
        for task in build_task_graph(root):
            task.run(ctx)


class ThreadPoolBackend(Backend):
    """Runs independent partition tasks concurrently between barriers.

    Feeds ready tasks of the shared DAG to a :class:`ThreadPoolExecutor`;
    a task is submitted the moment its last dependency completes, so
    partition 3 of a filter can run while partition 0 of the downstream
    join is already probing — there is no per-operator barrier, only the
    exchange barriers the plan itself demands.

    On task failure no further tasks are scheduled, but every already
    submitted task is awaited before the error is re-raised — a failed
    query never leaves stragglers mutating operator state while the pool
    serves the next query.

    The pool is created lazily and reused across queries; ``close()``
    shuts it down.
    """

    name = "thread_pool"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(32, (os.cpu_count() or 2) + 4)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-engine",
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def run(self, root: PhysicalOperator, ctx: ExecutionContext) -> None:
        tasks = build_task_graph(root)
        if not tasks:
            return
        pool = self._ensure_pool()
        lock = threading.Lock()
        done = threading.Event()
        #: pending: tasks not yet finished; inflight: tasks submitted to
        #: the pool and not yet finished.  ``done`` fires when all tasks
        #: finished, or — after a failure — when the last in-flight task
        #: drained (unreached dependents are abandoned, never started).
        state: dict[str, object] = {
            "pending": len(tasks), "inflight": 0, "error": None,
        }

        def execute(task: EngineTask) -> None:
            try:
                task.run(ctx)
            except BaseException as error:  # propagate to the caller
                with lock:
                    if state["error"] is None:
                        state["error"] = error
                    state["inflight"] = int(state["inflight"]) - 1
                    if state["inflight"] == 0:
                        done.set()
                return
            ready: list[EngineTask] = []
            with lock:
                state["pending"] = int(state["pending"]) - 1
                state["inflight"] = int(state["inflight"]) - 1
                if state["pending"] == 0:
                    done.set()
                elif state["error"] is None:
                    for dependent in task.dependents:
                        dependent.remaining -= 1
                        if dependent.remaining == 0:
                            ready.append(dependent)
                    state["inflight"] = int(state["inflight"]) + len(ready)
                elif state["inflight"] == 0:
                    done.set()
            for next_task in ready:
                pool.submit(execute, next_task)

        roots = [task for task in tasks if task.remaining == 0]
        with lock:
            state["inflight"] = len(roots)
        for task in roots:
            pool.submit(execute, task)
        done.wait()
        error = state["error"]
        if error is not None:
            raise error  # type: ignore[misc]


# --------------------------------------------------------------------------
# Process pool: true multicore execution
# --------------------------------------------------------------------------


class TaskPayload(NamedTuple):
    """Message shipped to a worker: what to run and what it reads.

    Attributes:
        steps: ``(op_id, phase, index)`` triples, in dependency order.
        preloads: slot values the steps read that were produced outside
            this job (the worker installs them before running).
        exports: slots whose values must ship back to the coordinator
            because tasks outside this job read them.
    """

    steps: tuple[tuple[int, str, int], ...]
    preloads: tuple[tuple[Slot, object], ...]
    exports: tuple[Slot, ...]


class TaskResult(NamedTuple):
    """Message shipped back: exported slot values plus the stats delta."""

    exports: tuple[tuple[Slot, object], ...]
    delta: ContextDelta


#: Fork-inherited worker state: (operators by id, node count, trace flag).
#: Set by the coordinator immediately before it creates a worker pool so
#: the forked children inherit the compiled operator tree (closures and
#: all) without pickling it.
_WORKER_STATE: tuple[dict[int, "PhysicalOperator"], int, bool] | None = None

#: Serialises process-backend runs: the fork-inherited global above is
#: per-query state.
_WORKER_STATE_LOCK = threading.Lock()


def _execute_payload(payload: TaskPayload) -> TaskResult:
    """Worker-side entry point: run one fused job against the forked tree."""
    assert _WORKER_STATE is not None, "worker forked without engine state"
    ops, node_count, collect_trace = _WORKER_STATE
    delta = ContextDelta(node_count, collect_trace=collect_trace)
    for slot, value in payload.preloads:
        write_slot(ops, slot, value)
    for op_id, phase, index in payload.steps:
        op = ops[op_id]
        if phase == "prepare":
            _timed(
                delta, op, "prepare", index,
                lambda op=op, index=index: op.prepare_partition(delta, index),
            )
        elif phase == "exchange":
            _timed(delta, op, "exchange", None, lambda op=op: op.exchange(delta))
        else:
            _timed(
                delta, op, "partition", index,
                lambda op=op, index=index: op.run_partition(delta, index),
            )
    exports = tuple((slot, read_slot(ops, slot)) for slot in payload.exports)
    return TaskResult(exports, delta)


class _Job:
    """A fused group of tasks scheduled as one unit."""

    __slots__ = ("steps", "remote", "dependents", "remaining", "exports")

    def __init__(self, steps: list[EngineTask], remote: bool) -> None:
        self.steps = steps
        self.remote = remote
        self.dependents: list["_Job"] = []
        self.remaining = 0
        self.exports: list[EngineTask] = []


def fuse_jobs(tasks: list[EngineTask]) -> list[_Job]:
    """Contract the task DAG into jobs that minimise coordinator traffic.

    A producer task merges into its consumer's job when both are
    remote-eligible and *every* reader of the producer's output lives in
    one of the two jobs — then the rows flow worker-locally through the
    forked operator tree instead of round-tripping through the
    coordinator.  Per-partition pipeline chains (scan → filter →
    aggregate-prepare, or both join inputs plus the probe) collapse into
    single jobs this way; exchange barriers stay coordinator-side and
    bound the contraction.
    """
    job_of: dict[int, _Job] = {}
    jobs: list[_Job] = []
    for task in tasks:
        job = _Job([task], task.op.remote_eligible(task.phase))
        job_of[id(task)] = job
        jobs.append(job)
    changed = True
    while changed:
        changed = False
        for task in tasks:
            consumer = job_of[id(task)]
            if not consumer.remote:
                continue
            for dep in task.deps:
                producer = job_of[id(dep)]
                if producer is consumer or not producer.remote:
                    continue
                if all(
                    job_of[id(reader)] in (consumer, producer)
                    for step in producer.steps
                    for reader in step.dependents
                ):
                    consumer.steps.extend(producer.steps)
                    for step in producer.steps:
                        job_of[id(step)] = consumer
                    producer.steps = []
                    changed = True
    live = [job for job in jobs if job.steps]
    for job in live:
        # Serial order is a topological order of the whole graph, so it
        # is one for any subset.
        job.steps.sort(key=lambda task: task.order)
        predecessors: dict[int, _Job] = {}
        for step in job.steps:
            for dep in step.deps:
                producer = job_of[id(dep)]
                if producer is not job:
                    predecessors[id(producer)] = producer
        job.remaining = len(predecessors)
        for producer in predecessors.values():
            producer.dependents.append(job)
        job.exports = [
            step
            for step in job.steps
            if not step.dependents
            or any(job_of[id(reader)] is not job for reader in step.dependents)
        ]
    return live


class ProcessPoolBackend(Backend):
    """Runs fused per-partition task chains in worker processes.

    The only backend that actually parallelises the pure-Python row loops
    (thread backends serialise on the GIL).  Per query it:

    1. builds the shared task DAG and contracts it into jobs
       (:func:`fuse_jobs`) so whole per-partition pipelines execute
       worker-locally;
    2. forks a worker pool *after* compiling the plan — children inherit
       the operator tree and base-table partitions copy-on-write, so only
       inter-stage row buckets and compact aggregation states cross
       process boundaries, always via the coordinator;
    3. hands every worker job a :class:`TaskPayload` and merges the
       returned :class:`~repro.engine.context.ContextDelta` into the
       query's context — commutatively, so stats are identical to serial
       execution by construction.

    Exchange barriers, and any job whose operator state must stay on the
    coordinator, run inline on the coordinator.  Platforms without the
    ``fork`` start method (workers must inherit the compiled tree, which
    holds bound predicate closures) degrade to serial in-process
    execution.  On failure, in-flight jobs are drained before the error
    is re-raised, and the next query gets a fresh pool.
    """

    name = "process_pool"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or (os.cpu_count() or 2)

    @staticmethod
    def fork_available() -> bool:
        """True if this platform supports fork-based worker pools."""
        return "fork" in multiprocessing.get_all_start_methods()

    def run(self, root: PhysicalOperator, ctx: ExecutionContext) -> None:
        tasks = build_task_graph(root)
        if not tasks:
            return
        if self.max_workers < 2 or not self.fork_available():
            for task in tasks:
                task.run(ctx)
            return
        with _WORKER_STATE_LOCK:
            self._run_pooled(root, ctx, tasks)

    def _run_pooled(
        self,
        root: PhysicalOperator,
        ctx: ExecutionContext,
        tasks: list[EngineTask],
    ) -> None:
        global _WORKER_STATE
        ops = {op.op_id: op for op in root.walk()}
        jobs = fuse_jobs(tasks)
        _WORKER_STATE = (ops, ctx.node_count, ctx.trace is not None)
        pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=multiprocessing.get_context("fork"),
        )
        error: BaseException | None = None
        try:
            ready = deque(job for job in jobs if job.remaining == 0)
            futures: dict = {}
            while ready or futures:
                while ready and error is None:
                    job = ready.popleft()
                    if job.remote and all(
                        task.op.remote_ready(task.phase, task.index)
                        for task in job.steps
                    ):
                        try:
                            payload = self._payload(ops, job)
                            futures[pool.submit(_execute_payload, payload)] = job
                        except BaseException as exc:  # broken pool, pickling
                            error = exc
                            break
                        continue
                    try:
                        for task in job.steps:
                            task.run(ctx)
                    except BaseException as exc:
                        error = exc
                        break
                    ready.extend(_complete(job))
                if not futures:
                    break
                finished, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    job = futures.pop(future)
                    try:
                        result: TaskResult = future.result()
                    except BaseException as exc:
                        if error is None:
                            error = exc
                        continue
                    for slot, value in result.exports:
                        write_slot(ops, slot, value)
                    ctx.merge_delta(result.delta)
                    if error is None:
                        ready.extend(_complete(job))
        finally:
            pool.shutdown(wait=True)
            _WORKER_STATE = None
        if error is not None:
            raise error

    @staticmethod
    def _payload(ops: dict[int, PhysicalOperator], job: _Job) -> TaskPayload:
        produced = {task.writes for task in job.steps}
        preloads = []
        for task in job.steps:
            for slot in task.reads:
                if slot in produced:
                    continue
                produced.add(slot)  # dedupe repeat reads
                preloads.append((slot, read_slot(ops, slot)))
        return TaskPayload(
            steps=tuple(
                (task.op.op_id, task.phase, task.index) for task in job.steps
            ),
            preloads=tuple(preloads),
            exports=tuple(task.writes for task in job.exports),
        )


def _complete(job: _Job) -> list[_Job]:
    """Mark *job* finished; return the dependents that became ready."""
    ready = []
    for dependent in job.dependents:
        dependent.remaining -= 1
        if dependent.remaining == 0:
            ready.append(dependent)
    return ready


# --------------------------------------------------------------------------
# Backend selection
# --------------------------------------------------------------------------


#: Backend name -> constructor, for string-based selection on the cluster
#: facade and the bench harness.
BACKENDS: dict[str, Callable[..., Backend]] = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "thread_pool": ThreadPoolBackend,
    "process": ProcessPoolBackend,
    "process_pool": ProcessPoolBackend,
}


def make_backend(
    spec: "Backend | str | None", max_workers: int | None = None
) -> Backend | None:
    """Resolve *spec* into a backend instance.

    Accepts an existing :class:`Backend` (returned as-is), a name from
    :data:`BACKENDS`, or ``None`` (returned as-is so callers can apply
    their own default).
    """
    if spec is None or isinstance(spec, Backend):
        return spec
    try:
        factory = BACKENDS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown engine backend {spec!r}; expected one of "
            f"{sorted(BACKENDS)} or a Backend instance"
        ) from None
    if factory is SerialBackend:
        return factory()
    return factory(max_workers=max_workers)
