"""Pluggable scheduling backends for the physical engine.

A backend receives a compiled operator tree and an
:class:`~repro.engine.context.ExecutionContext` and decides *when and
where* each per-(operator, partition) task runs; the operators decide
*what* each task does.  Because every accounting call is commutative (and
join events are flushed in deterministic order by the context), any
schedule that respects the task dependencies produces identical rows and
identical :class:`~repro.query.cost.ExecutionStats`.

Dependencies, per operator:

* pipeline operator, output partition ``p`` → partition ``p`` of every
  input (partition 0 for single-copy inputs);
* barrier operator: ``prepare_partition(p)`` → partition ``p`` of the
  input; ``exchange()`` → all own prepare tasks and *all* partitions of
  all inputs; ``run_partition(p)`` → ``exchange()``.

:class:`SerialBackend` executes the tasks in plan post-order on the
calling thread — bitwise-identical to the old monolithic interpreter.
:class:`ThreadPoolBackend` runs independent partitions concurrently
between exchange barriers on a shared thread pool.  (CPython threads do
not speed up pure-Python row loops, but the backend seam is exactly
where a process pool, async I/O, or a real cluster transport plugs in —
and the equivalence suite pins the semantics any such backend must keep.)
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable

from repro.engine.context import ExecutionContext, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.operators import PhysicalOperator


class Backend:
    """Schedules the tasks of a compiled physical plan."""

    name = "backend"

    def run(self, root: PhysicalOperator, ctx: ExecutionContext) -> None:
        """Execute every task of the tree rooted at *root*."""
        raise NotImplementedError

    def close(self) -> None:
        """Release scheduler resources (idempotent; optional)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _timed(
    ctx: ExecutionContext,
    op: PhysicalOperator,
    phase: str,
    node_id: int | None,
    fn: Callable[[], None],
) -> None:
    """Run one task, reporting it to the trace hook if one is installed."""
    if ctx.trace is None:
        fn()
        return
    started = time.perf_counter()
    fn()
    ctx.record_trace(
        TraceEvent(
            op.op_id, op.label, phase, node_id, time.perf_counter() - started
        )
    )


class SerialBackend(Backend):
    """Runs every task on the calling thread, in plan post-order.

    The task order — per operator: prepares ascending, exchange, output
    partitions ascending — retraces the interpreter's loops exactly, so
    results and stats are bitwise-identical to the pre-engine executor.
    """

    name = "serial"

    def run(self, root: PhysicalOperator, ctx: ExecutionContext) -> None:
        for op in root.walk():
            for p in range(op.prepare_count):
                _timed(ctx, op, "prepare", p, lambda op=op, p=p: op.prepare_partition(ctx, p))
            if op.barrier:
                _timed(ctx, op, "exchange", None, lambda op=op: op.exchange(ctx))
            for p in range(op.output_count):
                _timed(ctx, op, "partition", p, lambda op=op, p=p: op.run_partition(ctx, p))


class _Task:
    """One schedulable unit plus its dependency bookkeeping."""

    __slots__ = ("fn", "dependents", "remaining")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self.dependents: list["_Task"] = []
        self.remaining = 0


def _link(dep: _Task, task: _Task) -> None:
    dep.dependents.append(task)
    task.remaining += 1


class ThreadPoolBackend(Backend):
    """Runs independent partition tasks concurrently between barriers.

    Builds the task DAG described in the module docstring and feeds ready
    tasks to a shared :class:`ThreadPoolExecutor`; a task is submitted the
    moment its last dependency completes, so partition 3 of a filter can
    run while partition 0 of the downstream join is already probing —
    there is no per-operator barrier, only the exchange barriers the plan
    itself demands.

    The pool is created lazily and reused across queries; ``close()``
    shuts it down.
    """

    name = "thread_pool"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or min(32, (os.cpu_count() or 2) + 4)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-engine",
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- graph construction ------------------------------------------------

    def _build_graph(
        self, root: PhysicalOperator, ctx: ExecutionContext
    ) -> list[_Task]:
        tasks: list[_Task] = []
        #: Per operator, the dependency anchors downstream consumers wait
        #: on: one task per output partition.
        anchors: dict[int, list[_Task]] = {}

        def add(task: _Task) -> _Task:
            tasks.append(task)
            return task

        for op in root.walk():
            if op.barrier:
                prepares = [
                    add(_Task(lambda op=op, p=p: _timed(
                        ctx, op, "prepare", p,
                        lambda: op.prepare_partition(ctx, p),
                    )))
                    for p in range(op.prepare_count)
                ]
                for p, task in enumerate(prepares):
                    for child in op.inputs:
                        _link(anchors[child.op_id][p if child.output_count > 1 else 0], task)
                exchange = add(_Task(lambda op=op: _timed(
                    ctx, op, "exchange", None, lambda: op.exchange(ctx)
                )))
                for task in prepares:
                    _link(task, exchange)
                # The exchange consumes complete inputs (broadcast ships
                # whole relations, repartition merges every bucket).
                for child in op.inputs:
                    for anchor in anchors[child.op_id]:
                        _link(anchor, exchange)
                outs = []
                for p in range(op.output_count):
                    task = add(_Task(lambda op=op, p=p: _timed(
                        ctx, op, "partition", p,
                        lambda: op.run_partition(ctx, p),
                    )))
                    _link(exchange, task)
                    outs.append(task)
                anchors[op.op_id] = outs
            else:
                outs = []
                for p in range(op.output_count):
                    task = add(_Task(lambda op=op, p=p: _timed(
                        ctx, op, "partition", p,
                        lambda: op.run_partition(ctx, p),
                    )))
                    for child in op.inputs:
                        _link(anchors[child.op_id][p if child.output_count > 1 else 0], task)
                    outs.append(task)
                anchors[op.op_id] = outs
        return tasks

    # -- execution ---------------------------------------------------------

    def run(self, root: PhysicalOperator, ctx: ExecutionContext) -> None:
        tasks = self._build_graph(root, ctx)
        pool = self._ensure_pool()
        lock = threading.Lock()
        done = threading.Event()
        state: dict[str, object] = {"pending": len(tasks), "error": None}

        def execute(task: _Task) -> None:
            try:
                task.fn()
            except BaseException as error:  # propagate to the caller
                with lock:
                    if state["error"] is None:
                        state["error"] = error
                    done.set()
                return
            ready: list[_Task] = []
            with lock:
                state["pending"] = int(state["pending"]) - 1
                if state["pending"] == 0:
                    done.set()
                if state["error"] is None:
                    for dependent in task.dependents:
                        dependent.remaining -= 1
                        if dependent.remaining == 0:
                            ready.append(dependent)
            for next_task in ready:
                pool.submit(execute, next_task)

        roots = [task for task in tasks if task.remaining == 0]
        for task in roots:
            pool.submit(execute, task)
        done.wait()
        error = state["error"]
        if error is not None:
            raise error  # type: ignore[misc]
