"""Experiment drivers behind every table and figure of the paper.

Each public function corresponds to one experiment family; the files in
``benchmarks/`` call these and print the paper-style tables.  All results
are derived from actually materialising the partitioned databases and
physically executing queries on the simulated cluster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.design.baselines import (
    StarDesign,
    all_hashed,
    all_replicated,
    classical_individual_stars,
    classical_partitioning,
    sd_individual_stars,
)
from repro.design.graph import SchemaGraph
from repro.design.locality import satisfied_edges
from repro.design.schema_driven import SchemaDrivenDesigner
from repro.design.workload import QuerySpec
from repro.design.workload_driven import WorkloadDrivenDesigner
from repro.partitioning.bulk_loader import BulkLoader, BulkLoadStats
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.partitioner import partition_database
from repro.partitioning.scheme import HashScheme, ReplicatedScheme
from repro.engine.rows import DEFAULT_BATCH_SIZE
from repro.query.cost import CostParameters
from repro.query.executor import Executor
from repro.query.plan import PlanNode
from repro.storage.partitioned import PartitionedDatabase
from repro.storage.table import Database


def paper_cost_parameters(scale_factor: float) -> CostParameters:
    """Cost parameters extrapolating a scaled-down run to the paper's setup.

    The paper ran TPC-H SF 10 on ten m1.medium nodes; benchmarks here run
    a small scale factor and extrapolate rows by ``10 / scale_factor``.
    CPU cost is calibrated so a full lineitem scan per node lands near the
    paper's Q1 runtime; the memory budget models the nodes' 3.75 GB.
    """
    return CostParameters(
        row_scale=10.0 / scale_factor,
        cpu_tuple_seconds=1e-6,
        memory_rows_per_node=3e6,
        spill_pass_factor=1.0,
    )


@dataclass
class Variant:
    """One partitioning design under evaluation.

    A variant is one or more physical partitioning configurations (WD has
    one per fragment, "individual stars" one per star) plus a router that
    maps query names to the configuration holding their tables.

    Attributes:
        name: Display name as used in the paper's figures.
        configs: The physical configurations.
        router: Query name -> config index (defaults to 0 for all).
        data_locality: Pre-computed DL if the design algorithm reported
            one (WD); otherwise computed from the schema graph.
    """

    name: str
    configs: list[PartitioningConfig]
    router: dict[str, int] = field(default_factory=dict)
    data_locality: float | None = None

    def config_for(self, query: str) -> int:
        return self.router.get(query, 0)


# --------------------------------------------------------------------------
# Variant construction (the designs compared in Section 5)
# --------------------------------------------------------------------------


def tpch_variants(
    database: Database,
    partition_count: int,
    workload: Sequence[QuerySpec],
    small_tables: Sequence[str],
    sampling_rate: float = 1.0,
    include_baselines: bool = False,
) -> dict[str, Variant]:
    """The TPC-H comparison variants of Sections 5.1-5.3."""
    variants: dict[str, Variant] = {}
    if include_baselines:
        variants["All Hashed"] = Variant(
            "All Hashed", [all_hashed(database, partition_count)]
        )
        variants["All Replicated"] = Variant(
            "All Replicated", [all_replicated(database, partition_count)]
        )
    variants["Classical"] = Variant(
        "Classical", [classical_partitioning(database, partition_count)]
    )
    designer = SchemaDrivenDesigner(
        database, partition_count, sampling_rate=sampling_rate
    )
    sd = designer.design(replicate=small_tables)
    variants["SD (wo small tables)"] = Variant(
        "SD (wo small tables)", [sd.config], data_locality=sd.data_locality
    )
    partitioned_tables = [
        t for t in database.schema.table_names if t not in set(small_tables)
    ]
    sd_nored = designer.design(
        replicate=small_tables, no_redundancy=partitioned_tables
    )
    variants["SD (wo small tables, wo redundancy)"] = Variant(
        "SD (wo small tables, wo redundancy)",
        [sd_nored.config],
        data_locality=sd_nored.data_locality,
    )
    wd = WorkloadDrivenDesigner(
        database, partition_count, sampling_rate=sampling_rate
    ).design(workload, replicate=small_tables)
    variants["WD (wo small tables)"] = _wd_variant(
        "WD (wo small tables)", wd, database, partition_count, small_tables,
        workload=workload,
    )
    return variants


def tpcds_variants(
    database: Database,
    partition_count: int,
    workload: Sequence[QuerySpec],
    small_tables: Sequence[str],
    fact_tables: Sequence[str],
    sampling_rate: float = 1.0,
) -> dict[str, Variant]:
    """The TPC-DS comparison variants of Figure 11(b)."""
    variants: dict[str, Variant] = {}
    variants["All Hashed"] = Variant(
        "All Hashed", [all_hashed(database, partition_count)]
    )
    variants["All Replicated"] = Variant(
        "All Replicated", [all_replicated(database, partition_count)]
    )
    variants["CP Naive"] = Variant(
        "CP Naive", [classical_partitioning(database, partition_count)]
    )
    cp_stars = classical_individual_stars(
        database, partition_count, fact_tables
    )
    variants["CP Ind. Stars"] = _star_variant("CP Ind. Stars", cp_stars)
    sd = SchemaDrivenDesigner(
        database, partition_count, sampling_rate=sampling_rate
    ).design(replicate=small_tables)
    variants["SD Naive"] = Variant(
        "SD Naive", [sd.config], data_locality=sd.data_locality
    )
    sd_stars = sd_individual_stars(
        database,
        partition_count,
        fact_tables,
        exclude=small_tables,
        sampling_rate=sampling_rate,
    )
    variants["SD Ind. Stars"] = _star_variant("SD Ind. Stars", sd_stars)
    wd = WorkloadDrivenDesigner(
        database, partition_count, sampling_rate=sampling_rate
    ).design(workload, replicate=small_tables)
    variants["WD"] = _wd_variant(
        "WD", wd, database, partition_count, small_tables, workload=workload
    )
    return variants


def _wd_variant(
    name: str,
    wd_result,
    database: Database,
    partition_count: int,
    small_tables: Sequence[str],
    workload: Sequence[QuerySpec] = (),
) -> Variant:
    """Turn a WD result into a Variant (one config per fragment, with the
    replicated small tables added to every fragment).

    Queries are routed per the paper: to the fragment that contains the
    query's tables with minimal data-redundancy for them.  When *workload*
    specs are given, routing uses their table sets; fragment membership is
    the fallback.
    """
    from repro.design.estimator import RedundancyEstimator

    configs = []
    router: dict[str, int] = {}
    replicated = set(small_tables)
    for index, fragment in enumerate(wd_result.fragments):
        config = PartitioningConfig(partition_count)
        for table, scheme in fragment.config:
            config.add(table, scheme)
        for table in small_tables:
            if table not in config and database.schema.has_table(table):
                config.add(table, ReplicatedScheme(partition_count))
        configs.append(config)
        for query in fragment.queries:
            router[query] = index
    from repro.design.workload_driven import route_to_config

    estimator = RedundancyEstimator(database, partition_count)
    for spec in workload:
        needed = set(spec.tables) - replicated
        if not needed:
            continue
        choice = route_to_config(needed, configs, estimator)
        if choice is not None:
            router[spec.name] = choice
    return Variant(
        name, configs, router=router, data_locality=wd_result.data_locality
    )


def _star_variant(name: str, stars: StarDesign) -> Variant:
    configs = list(stars.stars.values())
    router = {}
    for index, fact in enumerate(stars.stars):
        router[fact] = index
    return Variant(name, configs, router=router)


# --------------------------------------------------------------------------
# DL / DR measurement (Table 1, Figure 11)
# --------------------------------------------------------------------------


@dataclass
class LocalityRedundancy:
    """One row of Table 1 / Figure 11."""

    variant: str
    data_locality: float
    data_redundancy: float


def measure_variant(
    database: Database,
    variant: Variant,
    graph: SchemaGraph,
) -> LocalityRedundancy:
    """Actual DL and DR of a variant (DR by materialising the partitions)."""
    if variant.data_locality is not None:
        locality = variant.data_locality
    else:
        satisfied = []
        for config in variant.configs:
            satisfied.extend(satisfied_edges(graph, config))
        from repro.design.graph import data_locality as dl

        locality = dl(graph, satisfied)
    redundancy = actual_redundancy(database, variant)
    return LocalityRedundancy(variant.name, locality, redundancy)


def actual_redundancy(database: Database, variant: Variant) -> float:
    """Materialise every configuration and measure DR.

    Tables that appear in several configurations with an identical scheme
    (same kind, columns and PREF chain) are stored once.
    """
    from repro.design.workload_driven import _scheme_signature

    seen: set[tuple] = set()
    stored = 0
    base_tables: set[str] = set()
    for config in variant.configs:
        partitioned = partition_database(database, config)
        for table in config.tables:
            signature = (table, _scheme_signature(config, table))
            if signature in seen:
                continue
            seen.add(signature)
            stored += partitioned.table(table).total_rows
            base_tables.add(table)
    base = sum(database.table(t).row_count for t in base_tables)
    if base == 0:
        return 0.0
    return stored / base - 1.0


# --------------------------------------------------------------------------
# Query runtime (Figures 7, 8, 9)
# --------------------------------------------------------------------------


@dataclass
class QueryRun:
    """Simulated execution result of one query under one variant."""

    query: str
    seconds: float
    network_bytes: int
    shuffles: int
    max_node_work: float
    stats: object = None
    #: Per-operator × per-node breakdown (engine OperatorStats), in plan
    #: post-order.
    operators: list = field(default_factory=list)
    #: The run's :class:`~repro.obs.span.QueryTrace` (``analyze=True``).
    trace: object = None


def materialize_variant(
    database: Database,
    variant: Variant,
) -> list[PartitionedDatabase]:
    """Partition the database once per configuration of the variant."""
    return [
        partition_database(database, _covering(database, config))
        for config in variant.configs
    ]


def _covering(database: Database, config: PartitioningConfig) -> PartitioningConfig:
    """Extend *config* so every table of the database is available.

    Fragment configurations only hold the tables of their MAST; queries
    routed to them may also touch other tables, which are added hashed on
    their primary key (a neutral default).
    """
    covering = PartitioningConfig(config.partition_count)
    for table, scheme in config:
        covering.add(table, scheme)
    for table in database.schema.table_names:
        if table in covering:
            continue
        table_schema = database.schema.table(table)
        columns = table_schema.primary_key or (table_schema.columns[0].name,)
        covering.add(table, HashScheme(tuple(columns), config.partition_count))
    return covering


def run_workload(
    database: Database,
    variant: Variant,
    queries: Mapping[str, PlanNode],
    cost: CostParameters | None = None,
    optimizations: bool = True,
    backend=None,
    analyze: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    prepared: Sequence[PartitionedDatabase] | None = None,
    predicate_transfer: bool = False,
    bloom_fpr: float = 0.01,
) -> dict[str, QueryRun]:
    """Execute *queries* under *variant*, returning simulated runtimes.

    *backend* selects the engine scheduling backend shared by every
    executor of the variant — a :class:`~repro.engine.backends.Backend`
    instance or a name from :data:`~repro.engine.backends.BACKENDS`
    (default: serial execution).  With *analyze* (the default) every run
    carries its query trace, so fig* results come with per-operator
    measured locality and skew attached.  *batch_size* is the engine's
    kernel granularity knob (results are invariant in it).  *prepared*
    short-circuits materialisation with an already-materialised variant
    (from :func:`materialize_variant`) so callers can separate loading
    from query execution, e.g. when timing the engine.
    *predicate_transfer* / *bloom_fpr* switch on Bloom-filter predicate
    transfer in every executor (results are invariant in the knob).
    """
    from repro.engine.backends import make_backend

    cost = cost or CostParameters()
    backend = make_backend(backend)
    partitioned = (
        prepared if prepared is not None else materialize_variant(database, variant)
    )
    executors = [
        Executor(
            dp,
            optimizations=optimizations,
            backend=backend,
            cost=cost,
            batch_size=batch_size,
            predicate_transfer=predicate_transfer,
            bloom_fpr=bloom_fpr,
        )
        for dp in partitioned
    ]
    runs: dict[str, QueryRun] = {}
    for name, plan in queries.items():
        executor = executors[variant.config_for(name)]
        result = executor.execute(plan, analyze=analyze, query_name=name)
        runs[name] = QueryRun(
            query=name,
            seconds=result.simulated_seconds(cost),
            network_bytes=result.stats.network_bytes,
            shuffles=result.stats.shuffle_count,
            max_node_work=result.stats.max_node_work,
            stats=result.stats,
            operators=result.operators,
            trace=result.trace,
        )
    return runs


@dataclass
class BackendRun:
    """One query under one backend: output, cost model, and wall clock."""

    backend: str
    query: str
    rows: list
    canonical: tuple  #: ``ExecutionStats.canonical()`` of the run
    wall_seconds: float
    #: The run's :class:`~repro.obs.span.QueryTrace` (``analyze=True``).
    trace: object = None


def compare_backends(
    database: Database,
    variant: Variant,
    queries: Mapping[str, PlanNode],
    backends: Mapping[str, object] | Sequence[str] = (
        "serial",
        "thread",
        "process",
    ),
    cost: CostParameters | None = None,
    optimizations: bool = True,
    check: bool = True,
    analyze: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
    predicate_transfer: bool = False,
    bloom_fpr: float = 0.01,
) -> dict[str, dict[str, BackendRun]]:
    """Run *queries* once per backend and compare outputs and stats.

    This is the scheduling-backend axis of the bench harness: the same
    partitioned database and plans, executed by each named backend, with
    real wall-clock timings.  Rows and the cost model's canonical stats
    must be identical across backends — with ``check=True`` (the default)
    any divergence raises ``AssertionError`` naming the query, backend
    and quantity.

    *backends* maps display names to backend instances/names, or is a
    sequence of names from :data:`~repro.engine.backends.BACKENDS`.
    *batch_size* sets every executor's kernel granularity.
    Returns ``{backend name: {query name: BackendRun}}``.
    """
    from repro.engine.backends import make_backend

    cost = cost or CostParameters()
    if not isinstance(backends, Mapping):
        backends = {name: name for name in backends}
    partitioned = materialize_variant(database, variant)
    results: dict[str, dict[str, BackendRun]] = {}
    for label, spec in backends.items():
        backend = make_backend(spec)
        executors = [
            Executor(
                dp,
                optimizations=optimizations,
                backend=backend,
                cost=cost,
                batch_size=batch_size,
                predicate_transfer=predicate_transfer,
                bloom_fpr=bloom_fpr,
            )
            for dp in partitioned
        ]
        runs: dict[str, BackendRun] = {}
        for name, plan in queries.items():
            executor = executors[variant.config_for(name)]
            started = time.perf_counter()
            result = executor.execute(plan, analyze=analyze, query_name=name)
            elapsed = time.perf_counter() - started
            runs[name] = BackendRun(
                backend=label,
                query=name,
                rows=result.rows,
                canonical=result.stats.canonical(),
                wall_seconds=elapsed,
                trace=result.trace,
            )
        results[label] = runs
        if backend is not None:
            backend.close()
    if check and len(results) > 1:
        labels = list(results)
        reference = results[labels[0]]
        for label in labels[1:]:
            for name, run in results[label].items():
                if run.rows != reference[name].rows:
                    raise AssertionError(
                        f"backend {label!r} rows diverge from "
                        f"{labels[0]!r} on query {name!r}"
                    )
                if run.canonical != reference[name].canonical:
                    raise AssertionError(
                        f"backend {label!r} ExecutionStats diverge from "
                        f"{labels[0]!r} on query {name!r}"
                    )
                if run.trace is not None and reference[name].trace is not None:
                    if run.trace.canonical() != reference[name].trace.canonical():
                        raise AssertionError(
                            f"backend {label!r} query trace diverges from "
                            f"{labels[0]!r} on query {name!r}"
                        )
    return results


def operator_breakdown(
    runs: Mapping[str, QueryRun],
) -> list[tuple[str, float, float, int, int]]:
    """Aggregate per-operator totals over a workload's query runs.

    Returns ``(operator label, max-node work, total work, network bytes,
    shuffles)`` rows summed over all queries, sorted by total work
    descending — the per-operator view behind the paper's "where does the
    runtime go" discussion, ready for :func:`~repro.bench.format_table`.
    """
    totals: dict[str, list[float]] = {}
    for run in runs.values():
        for op in run.operators:
            slot = totals.setdefault(op.label, [0.0, 0.0, 0, 0])
            slot[0] += op.max_node_work
            slot[1] += op.total_work
            slot[2] += op.network_bytes
            slot[3] += op.shuffles
    return sorted(
        (
            (label, slot[0], slot[1], int(slot[2]), int(slot[3]))
            for label, slot in totals.items()
        ),
        key=lambda row: row[2],
        reverse=True,
    )


# --------------------------------------------------------------------------
# Bulk loading (Figure 10)
# --------------------------------------------------------------------------


def bulk_load_variant(
    database: Database,
    variant: Variant,
) -> BulkLoadStats:
    """Bulk load the entire database under *variant*, via the loader.

    Tables shared between configurations with identical schemes are loaded
    once (as in :func:`actual_redundancy`).
    """
    from repro.design.workload_driven import _scheme_signature

    total = BulkLoadStats()
    seen: set[tuple] = set()
    for config in variant.configs:
        empty = PartitionedDatabase(config.partition_count)
        for table in config.load_order():
            from repro.storage.partitioned import PartitionedTable

            empty.add_table(
                PartitionedTable(
                    database.schema.table(table),
                    config.scheme_of(table),
                    config.partition_count,
                    seed_table=config.seed_of(table),
                )
            )
        loader = BulkLoader(empty, config)
        for table in config.load_order():
            stats = loader.insert(
                table, database.table(table).rows, maintain_referencing=False
            )
            signature = (table, _scheme_signature(config, table))
            if signature not in seen:
                seen.add(signature)
                total.merge(stats)
    return total


# --------------------------------------------------------------------------
# Scale-out (Figure 12)
# --------------------------------------------------------------------------


def scaleout_redundancy(
    database: Database,
    variant_builder: Callable[[int], Variant],
    node_counts: Sequence[int],
) -> list[tuple[int, float]]:
    """DR of a design as the cluster grows (the design re-runs per size)."""
    series = []
    for count in node_counts:
        variant = variant_builder(count)
        series.append((count, actual_redundancy(database, variant)))
    return series


# --------------------------------------------------------------------------
# Estimation accuracy (Figure 13)
# --------------------------------------------------------------------------


@dataclass
class AccuracyPoint:
    """One sampling-rate point of Figure 13."""

    sampling_rate: float
    error: float
    runtime_seconds: float


def estimation_accuracy(
    database: Database,
    partition_count: int,
    small_tables: Sequence[str],
    sampling_rates: Sequence[float],
) -> list[AccuracyPoint]:
    """SD redundancy-estimate error and design runtime per sampling rate."""
    points = []
    for rate in sampling_rates:
        started = time.perf_counter()
        designer = SchemaDrivenDesigner(
            database, partition_count, sampling_rate=rate
        )
        result = designer.design(replicate=small_tables)
        runtime = time.perf_counter() - started
        estimated = result.estimated_redundancy
        actual = actual_redundancy(
            database, Variant("sd", [result.config])
        )
        # DR of the config includes the replicated small tables; compare
        # the estimate (partitioned tables only) against the same scope.
        actual = _partitioned_only_redundancy(
            database, result.config, small_tables
        )
        error = abs(estimated - actual) / actual if actual else abs(estimated)
        points.append(AccuracyPoint(rate, error, runtime))
    return points


def _partitioned_only_redundancy(
    database: Database,
    config: PartitioningConfig,
    small_tables: Sequence[str],
) -> float:
    partitioned = partition_database(database, config)
    excluded = set(small_tables)
    stored = sum(
        partitioned.table(t).total_rows
        for t in config.tables
        if t not in excluded
    )
    base = sum(
        database.table(t).row_count for t in config.tables if t not in excluded
    )
    if base == 0:
        return 0.0
    return stored / base - 1.0


# -- differential fuzzing -------------------------------------------------


def fuzz_smoke(
    cases: int = 500,
    seeds: Sequence[int] = (0,),
    backends: Sequence[str] = ("serial", "thread", "process"),
    check_sqlite: bool = True,
    out: str | None = None,
):
    """Bench-harness entry point for the differential fuzzing oracle.

    Runs *cases* generated cases per seed through every backend and the
    single-node oracles (``repro.fuzz``), raising ``AssertionError`` on
    the first divergence or invariant violation — the same contract as
    :func:`compare_backends`, but over randomised schemas, PREF configs,
    NULL-bearing data and SPJA queries instead of a fixed workload.  On
    failure the minimised repro is written to *out* (when given) for
    replay with ``python -m repro.fuzz --replay``.

    Returns ``{seed: FuzzReport}`` for reporting.
    """
    from repro.fuzz.runner import run_fuzz

    reports = {}
    for seed in seeds:
        report = run_fuzz(
            cases,
            seed,
            backends=tuple(backends),
            check_sqlite=check_sqlite,
            out=out,
        )
        reports[seed] = report
        if not report.ok:
            raise AssertionError(report.summary())
    return reports
