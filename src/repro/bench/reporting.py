"""Plain-text reporting for the benchmark harness (paper-style tables)."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
