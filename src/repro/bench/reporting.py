"""Plain-text reporting for the benchmark harness (paper-style tables)."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def trace_summary_table(runs, title: str | None = None) -> str:
    """Per-query trace summary for a workload run (Figures 7-9 companion).

    *runs* is the ``{query: QueryRun}`` mapping of
    :func:`~repro.bench.harness.run_workload` with ``analyze=True``.
    Reports, per query, the measured join locality (rows that stayed
    co-partitioned), PREF duplicates eliminated, and the worst output
    skew over all operators — the observability counterpart of the
    paper's DL/shuffle-volume discussion.
    """
    rows = []
    for name, run in sorted(runs.items()):
        trace = run.trace
        if trace is None:
            continue
        joins = trace.joins()
        localities = [j.locality for j in joins if j.locality is not None]
        locality = (
            f"{sum(localities) / len(localities):.0%}" if localities else "-"
        )
        dup = sum(span.dup_eliminated for span in trace.spans())
        skews = [
            span.skew for span in trace.spans() if span.skew is not None
        ]
        worst_skew = f"{max(skews):.2f}" if skews else "-"
        rows.append(
            (
                name,
                len(joins),
                locality,
                int(trace.metrics.counter("engine.rows.shipped")),
                dup,
                worst_skew,
            )
        )
    return format_table(
        ("query", "joins", "locality", "rows shipped", "dup elim", "max skew"),
        rows,
        title=title,
    )
