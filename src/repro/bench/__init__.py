"""Benchmark harness: experiment drivers for every table and figure."""

from repro.bench.harness import (
    paper_cost_parameters,
    AccuracyPoint,
    BackendRun,
    LocalityRedundancy,
    QueryRun,
    Variant,
    actual_redundancy,
    bulk_load_variant,
    compare_backends,
    estimation_accuracy,
    materialize_variant,
    measure_variant,
    operator_breakdown,
    run_workload,
    scaleout_redundancy,
    tpcds_variants,
    tpch_variants,
)
from repro.bench.reporting import format_table

__all__ = [
    "paper_cost_parameters",
    "AccuracyPoint",
    "BackendRun",
    "LocalityRedundancy",
    "QueryRun",
    "Variant",
    "actual_redundancy",
    "bulk_load_variant",
    "compare_backends",
    "estimation_accuracy",
    "format_table",
    "materialize_variant",
    "measure_variant",
    "operator_breakdown",
    "run_workload",
    "scaleout_redundancy",
    "tpcds_variants",
    "tpch_variants",
]
