"""Adaptive repartitioning: detect measured skew/locality hotspots, then
recommend a patched-PREF design that bounds the remote work.

The obs layer (``repro.obs``) measures what the design algorithms only
estimate: per-operator rows shipped, bytes shuffled, and output skew.
This module closes the feedback loop:

* :func:`detect_hotspots` consumes :class:`~repro.obs.span.QueryTrace`
  spans (and optionally the serving metrics registry) and flags tables
  whose measured remote fraction or per-node row skew exceeds the
  :class:`AdaptiveThresholds`.
* :func:`recommend_patched_pref` turns the hottest join-shuffle hotspot
  into a concrete configuration change: the flagged table becomes
  :class:`~repro.partitioning.scheme.PatchedPrefScheme` referencing its
  join partner, with per-tuple duplication capped at ``max_copies`` and
  overflow copies routed to the patch list (serviced by the engine's
  residual shuffle at scan time).

The recommended configuration is applied online by
``SimulatedCluster.repartition`` / ``ClusterServer.migrate``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import InvalidConfigurationError
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.predicate import JoinPredicate
from repro.partitioning.scheme import (
    PatchedPrefScheme,
    PrefScheme,
    SchemeKind,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.catalog.schema import DatabaseSchema
    from repro.obs.span import OperatorSpan, QueryTrace

_SCAN_LABEL = re.compile(r"^scan\((?P<table>[^)]+)\)$")


@dataclass(frozen=True)
class AdaptiveThresholds:
    """When is a table's measured behaviour bad enough to flag?

    Attributes:
        remote_fraction: Flag when shipped rows / scanned rows exceeds
            this (rows attributed from repartition operators feeding
            joins, plus the scan's own shipped rows).
        skew: Flag when max/mean scan output partition size exceeds this.
        min_rows: Ignore tables that produced fewer scanned rows than
            this across the observed traces (too little signal).
    """

    remote_fraction: float = 0.2
    skew: float = 2.0
    min_rows: int = 100

    def __post_init__(self) -> None:
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ValueError(
                f"remote_fraction must be in [0, 1], got {self.remote_fraction}"
            )
        if self.skew < 1.0:
            raise ValueError(f"skew threshold must be >= 1, got {self.skew}")
        if self.min_rows < 0:
            raise ValueError(f"min_rows must be >= 0, got {self.min_rows}")


@dataclass(frozen=True)
class TableHotspot:
    """One flagged table with the measurements that flagged it."""

    table: str
    scanned_rows: int
    shipped_rows: int
    remote_fraction: float
    skew: float
    reasons: tuple[str, ...]
    #: Join columns of this table in its hottest shuffled join
    #: (unqualified), and the partner side — the recommendation inputs.
    join_columns: tuple[str, ...] = ()
    partner_table: str | None = None
    partner_columns: tuple[str, ...] = ()


@dataclass(frozen=True)
class AdaptiveReport:
    """Everything the detector measured, flagged or not."""

    hotspots: tuple[TableHotspot, ...]
    #: Per-table (scanned rows, shipped rows, skew) for reporting.
    measurements: dict[str, tuple[int, int, float]] = field(
        default_factory=dict
    )
    #: Patch-list rows delivered across the observed traces (from the
    #: ``engine.rows.patch_shipped`` counter of each trace's registry).
    patch_rows: int = 0

    def hotspot(self, table: str) -> TableHotspot | None:
        """The hotspot entry for *table*, if it was flagged."""
        for candidate in self.hotspots:
            if candidate.table == table:
                return candidate
        return None


def _scan_table(span: "OperatorSpan") -> str | None:
    match = _SCAN_LABEL.match(span.label)
    return match.group("table") if match else None


def _leaf_scan_tables(span: "OperatorSpan") -> list[str]:
    return [
        table
        for candidate in span.walk()
        if candidate.name == "scan"
        and (table := _scan_table(candidate)) is not None
    ]


def _strip(columns: Iterable[str]) -> tuple[str, ...]:
    """Drop alias qualifiers: ``("f.grp",) -> ("grp",)``."""
    return tuple(column.split(".")[-1] for column in columns)


def detect_hotspots(
    traces: Iterable["QueryTrace"],
    thresholds: AdaptiveThresholds | None = None,
) -> AdaptiveReport:
    """Flag tables whose measured remote fraction or skew is excessive.

    Remote rows are attributed per table: a repartition operator feeding
    a join charges its shipped rows to the (single) base table scanned
    beneath it; scans charge their own shipped rows (broadcast legs and
    patched-PREF residual deliveries).  Skew is the worst max/mean
    output-partition ratio observed over the table's scans.
    """
    thresholds = thresholds or AdaptiveThresholds()
    scanned: dict[str, int] = {}
    shipped: dict[str, int] = {}
    skew: dict[str, float] = {}
    # (table, partner) -> [shipped rows, own columns, partner columns]
    joins: dict[tuple[str, str | None], list] = {}
    patch_rows = 0
    for trace in traces:
        patch_rows += int(trace.metrics.counter("engine.rows.patch_shipped"))
        for span in trace.spans():
            if span.name == "scan":
                table = _scan_table(span)
                if table is None:
                    continue
                scanned[table] = scanned.get(table, 0) + span.rows_out
                shipped[table] = shipped.get(table, 0) + span.rows_shipped
                span_skew = span.skew
                if span_skew is not None:
                    skew[table] = max(skew.get(table, 1.0), span_skew)
            elif span.name == "join" and len(span.children) == 2:
                pairs = (
                    (span.children[0], span.children[1]),
                    (span.children[1], span.children[0]),
                )
                for child, sibling in pairs:
                    if child.name != "repartition" or not child.rows_shipped:
                        continue
                    tables = _leaf_scan_tables(child)
                    if len(tables) != 1:
                        continue
                    table = tables[0]
                    shipped[table] = shipped.get(table, 0) + child.rows_shipped
                    partner_tables = _leaf_scan_tables(sibling)
                    partner = (
                        partner_tables[0]
                        if len(partner_tables) == 1
                        else None
                    )
                    entry = joins.setdefault(
                        (table, partner), [0, (), ()]
                    )
                    entry[0] += child.rows_shipped
                    if child.hash_columns:
                        entry[1] = _strip(child.hash_columns)
                    if sibling.hash_columns:
                        entry[2] = _strip(sibling.hash_columns)

    hotspots: list[TableHotspot] = []
    measurements: dict[str, tuple[int, int, float]] = {}
    for table in sorted(scanned):
        rows = scanned[table]
        remote = shipped.get(table, 0)
        table_skew = skew.get(table, 1.0)
        measurements[table] = (rows, remote, table_skew)
        if rows < thresholds.min_rows:
            continue
        fraction = remote / rows if rows else 0.0
        reasons = []
        if fraction > thresholds.remote_fraction:
            reasons.append(
                f"remote fraction {fraction:.2f} > "
                f"{thresholds.remote_fraction:.2f}"
            )
        if table_skew > thresholds.skew:
            reasons.append(
                f"skew {table_skew:.2f} > {thresholds.skew:.2f}"
            )
        if not reasons:
            continue
        # The hottest shuffled join involving this table supplies the
        # recommendation inputs (if any was observed).
        best: tuple[int, str | None, tuple, tuple] = (0, None, (), ())
        for (join_table, partner), entry in joins.items():
            if join_table != table or partner is None:
                continue
            if entry[0] > best[0] and entry[1] and entry[2]:
                best = (entry[0], partner, entry[1], entry[2])
        hotspots.append(
            TableHotspot(
                table=table,
                scanned_rows=rows,
                shipped_rows=remote,
                remote_fraction=fraction,
                skew=table_skew,
                reasons=tuple(reasons),
                join_columns=best[2],
                partner_table=best[1],
                partner_columns=best[3],
            )
        )
    hotspots.sort(key=lambda h: h.shipped_rows, reverse=True)
    return AdaptiveReport(
        hotspots=tuple(hotspots),
        measurements=measurements,
        patch_rows=patch_rows,
    )


def recommend_patched_pref(
    config: PartitioningConfig,
    schema: "DatabaseSchema",
    report: AdaptiveReport,
    max_copies: int = 2,
) -> PartitioningConfig | None:
    """A new configuration fixing the hottest fixable hotspot, or None.

    The flagged table's scheme is replaced by a
    :class:`~repro.partitioning.scheme.PatchedPrefScheme` referencing
    its observed join partner on the observed join columns; every other
    table keeps its scheme.  A hotspot is fixable when the partner is a
    configured seed table (PREF onto replicated or PREF tables is
    unsound/degenerate) and nothing PREF-references the flagged table
    (chained co-location through a patched table is unsound).  The
    returned configuration is validated against *schema*.
    """
    for hotspot in report.hotspots:
        partner = hotspot.partner_table
        if (
            partner is None
            or not hotspot.join_columns
            or len(hotspot.join_columns) != len(hotspot.partner_columns)
        ):
            continue
        if hotspot.table not in config or partner not in config:
            continue
        partner_scheme = config.scheme_of(partner)
        if (
            not partner_scheme.kind.is_seed
            or partner_scheme.kind is SchemeKind.REPLICATED
        ):
            continue
        if any(
            isinstance(scheme, PrefScheme)
            and scheme.referenced_table == hotspot.table
            for _table, scheme in config
        ):
            continue
        candidate = PartitioningConfig(config.partition_count)
        for table, scheme in config:
            if table == hotspot.table:
                scheme = PatchedPrefScheme(
                    partner,
                    JoinPredicate(
                        hotspot.table,
                        hotspot.join_columns,
                        partner,
                        hotspot.partner_columns,
                    ),
                    max_copies=max_copies,
                )
            candidate.add(table, scheme)
        try:
            candidate.validate(schema)
        except InvalidConfigurationError:
            continue
        return candidate
    return None
