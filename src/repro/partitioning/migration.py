"""Re-partitioning migration plans: what switching designs would cost.

A partitioning library is adopted incrementally: a cluster already running
one configuration (say classical partitioning) wants to know what moving to
an SD/WD design costs before committing.  :func:`plan_migration` compares
the physical placements of two configurations and reports, per table, how
many row copies must be shipped to other nodes, how many can stay in place,
and how many existing copies are simply dropped.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.partitioning.config import PartitioningConfig
from repro.partitioning.partitioner import partition_database
from repro.storage.partitioned import PartitionedDatabase
from repro.storage.table import Database


@dataclass(frozen=True)
class TableMigration:
    """Placement delta of one table between two configurations.

    Attributes:
        table: Table name.
        copies_before: Row copies stored under the old configuration.
        copies_after: Row copies stored under the new configuration.
        copies_kept: Copies already on the right node (no movement).
        copies_moved: Copies that must be shipped to a node that does not
            hold them yet.
        copies_dropped: Old copies that no longer exist afterwards.
        bytes_moved: Nominal bytes shipped for this table.
        bytes_moved_by_node: Bytes arriving at each destination node
            (index = node id); drives the parallel-transfer time model.
    """

    table: str
    copies_before: int
    copies_after: int
    copies_kept: int
    copies_moved: int
    copies_dropped: int
    bytes_moved: int
    bytes_moved_by_node: tuple[int, ...] = ()


@dataclass
class MigrationPlan:
    """Aggregate movement cost of switching partitioning configurations."""

    tables: dict[str, TableMigration] = field(default_factory=dict)

    @property
    def copies_moved(self) -> int:
        """Total row copies shipped across nodes."""
        return sum(m.copies_moved for m in self.tables.values())

    @property
    def copies_kept(self) -> int:
        """Total row copies that stay in place."""
        return sum(m.copies_kept for m in self.tables.values())

    @property
    def bytes_moved(self) -> int:
        """Total nominal bytes shipped."""
        return sum(m.bytes_moved for m in self.tables.values())

    @property
    def moved_fraction(self) -> float:
        """Moved copies / target copies (0 = in-place, 1 = full reload)."""
        total_after = sum(m.copies_after for m in self.tables.values())
        if total_after == 0:
            return 0.0
        return self.copies_moved / total_after

    @property
    def bytes_moved_by_node(self) -> tuple[int, ...]:
        """Bytes arriving at each destination node, summed over tables."""
        per_node: list[int] = []
        for migration in self.tables.values():
            for node, byte_count in enumerate(migration.bytes_moved_by_node):
                while len(per_node) <= node:
                    per_node.append(0)
                per_node[node] += byte_count
        return tuple(per_node)

    def simulated_seconds(
        self,
        network_bandwidth_bytes: float = 300e6,
        row_scale: float = 1.0,
        parallelism: int | None = None,
    ) -> float:
        """Simulated migration time (network-bound bulk movement).

        Destination nodes ingest in parallel, each over its own link, so
        the default wall clock is the *max* per-destination-node bytes
        over the bandwidth (never less than total/parallelism when a
        smaller ``parallelism`` caps the concurrent transfers).
        ``parallelism=1`` recovers the historical serialized figure
        (all bytes charged to a single link).
        """
        if parallelism is not None and parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        per_node = self.bytes_moved_by_node
        if parallelism is None:
            parallelism = max(1, len([b for b in per_node if b]))
        bottleneck = max(
            max(per_node, default=0), self.bytes_moved / parallelism
        )
        return bottleneck * row_scale / network_bandwidth_bytes


def plan_migration(
    database: Database,
    old_config: PartitioningConfig,
    new_config: PartitioningConfig,
    old_partitioned: PartitionedDatabase | None = None,
    new_partitioned: PartitionedDatabase | None = None,
) -> MigrationPlan:
    """Compare the placements of two configurations over *database*.

    Copies are matched per (node, row-value) multiset: a copy counts as
    *kept* if the same row value is already stored on the same node under
    the old configuration.  Tables absent from the old configuration are
    fully loaded (every copy moves); tables absent from the new one are
    fully dropped.

    The cluster sizes may differ (the adaptive loop's scale-out/scale-in
    case): placements are matched over the shared node prefix; copies
    destined for new nodes all move, and copies on removed nodes are
    dropped.
    """
    old_dp = old_partitioned or partition_database(database, old_config)
    new_dp = new_partitioned or partition_database(database, new_config)
    node_span = max(old_dp.partition_count, new_dp.partition_count)
    plan = MigrationPlan()
    tables = set(old_config.tables) | set(new_config.tables)
    for table in sorted(tables):
        old_counts = _placements(old_dp, table)
        new_counts = _placements(new_dp, table)
        width = database.table(table).schema.row_byte_width
        kept = 0
        moved = 0
        moved_bytes_by_node = [0] * new_dp.partition_count
        for node in range(node_span):
            old_here = old_counts.get(node, Counter())
            new_here = new_counts.get(node, Counter())
            overlap = sum((old_here & new_here).values())
            kept += overlap
            moved_here = sum(new_here.values()) - overlap
            moved += moved_here
            if moved_here and node < new_dp.partition_count:
                moved_bytes_by_node[node] = moved_here * width
        before = sum(sum(c.values()) for c in old_counts.values())
        after = sum(sum(c.values()) for c in new_counts.values())
        plan.tables[table] = TableMigration(
            table=table,
            copies_before=before,
            copies_after=after,
            copies_kept=kept,
            copies_moved=moved,
            copies_dropped=before - kept,
            bytes_moved=moved * width,
            bytes_moved_by_node=tuple(moved_bytes_by_node),
        )
    return plan


def _placements(
    partitioned: PartitionedDatabase, table: str
) -> dict[int, Counter]:
    """Per-node multisets of row values for *table* (empty if absent)."""
    if not partitioned.has_table(table):
        return {}
    result: dict[int, Counter] = {}
    for partition in partitioned.table(table).partitions:
        result[partition.partition_id] = Counter(partition.rows)
    return result
