"""Join predicates used as PREF partitioning predicates.

Paper Section 2.1 restricts partitioning predicates to simple equi-join
predicates and conjunctions thereof (anything else degenerates to full
replication of the referencing table).  A :class:`JoinPredicate` therefore
is a conjunction of column equalities between exactly two tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import PartitioningError


@dataclass(frozen=True)
class JoinPredicate:
    """A conjunctive equi-join predicate between two tables.

    ``left_table.left_columns[i] = right_table.right_columns[i]`` for all i.
    The predicate is symmetric; :meth:`normalised` provides a canonical
    orientation so predicates can be compared regardless of which side was
    written first.

    Attributes:
        left_table: Name of the first table.
        left_columns: Columns of the first table, one per conjunct.
        right_table: Name of the second table.
        right_columns: Columns of the second table, positionally aligned.
    """

    left_table: str
    left_columns: tuple[str, ...]
    right_table: str
    right_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.left_columns) != len(self.right_columns):
            raise PartitioningError(
                "join predicate column lists differ in length: "
                f"{self.left_columns} vs {self.right_columns}"
            )
        if not self.left_columns:
            raise PartitioningError("join predicate has no column pairs")
        if self.left_table == self.right_table:
            raise PartitioningError(
                "join predicate must connect two distinct tables"
            )

    @classmethod
    def equi(
        cls,
        left_table: str,
        left_column: str,
        right_table: str,
        right_column: str,
    ) -> "JoinPredicate":
        """Build a single-column equi-join predicate."""
        return cls(left_table, (left_column,), right_table, (right_column,))

    @property
    def tables(self) -> frozenset[str]:
        """The two table names the predicate connects."""
        return frozenset((self.left_table, self.right_table))

    def columns_of(self, table: str) -> tuple[str, ...]:
        """The predicate columns on *table*'s side."""
        if table == self.left_table:
            return self.left_columns
        if table == self.right_table:
            return self.right_columns
        raise PartitioningError(
            f"table {table!r} is not part of predicate {self}"
        )

    def other_table(self, table: str) -> str:
        """The table on the opposite side of *table*."""
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise PartitioningError(
            f"table {table!r} is not part of predicate {self}"
        )

    def normalised(self) -> "JoinPredicate":
        """A canonical orientation (tables in lexicographic order)."""
        if self.left_table <= self.right_table:
            return self
        return JoinPredicate(
            self.right_table,
            self.right_columns,
            self.left_table,
            self.left_columns,
        )

    def equivalent(self, other: "JoinPredicate") -> bool:
        """True if both predicates denote the same condition."""
        return self.normalised() == other.normalised()

    def conjuncts(self) -> Iterator[tuple[str, str]]:
        """Yield aligned (left_column, right_column) pairs."""
        return zip(self.left_columns, self.right_columns)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        terms = " AND ".join(
            f"{self.left_table}.{left} = {self.right_table}.{right}"
            for left, right in self.conjuncts()
        )
        return terms
