"""Bulk loading of partitioned tables (paper Section 2.3).

New tuples for a PREF-partitioned table are routed with a *partition index*
on the referenced attribute of the referenced table, avoiding a join: one
hash look-up per inserted tuple yields the exact set of target partitions.

Beyond the paper's description (which assumes referenced tables are loaded
first) the loader also maintains PREF locality when new tuples arrive in a
*referenced* table: existing referencing tuples that match a newly placed
key are copied into the new partitions, so the co-location guarantee of
Definition 1 keeps holding across incremental loads.

Updates and deletes are applied to every partition holding a copy; updates
may not modify columns used in any partitioning predicate (the paper's
restriction at the end of Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from repro.errors import BulkLoadError
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import (
    HashScheme,
    PatchedPrefScheme,
    PrefScheme,
    RangeScheme,
    ReplicatedScheme,
    RoundRobinScheme,
    key_has_null,
)
from repro.storage.partitioned import PartitionedDatabase, PartitionedTable

Row = tuple


@dataclass
class BulkLoadStats:
    """Cost accounting for a bulk-load run (drives Figure 10).

    Attributes:
        rows_in: Base tuples submitted.
        copies_written: Physical row copies written (>= rows_in for PREF
            and replicated tables).
        bytes_written: Nominal bytes written across all partitions.
        index_lookups: Partition-index probes performed.
        propagated_copies: Copies of *existing* referencing tuples written
            to maintain PREF locality after referenced-side inserts.
    """

    rows_in: int = 0
    copies_written: int = 0
    bytes_written: int = 0
    index_lookups: int = 0
    propagated_copies: int = 0

    def merge(self, other: "BulkLoadStats") -> None:
        """Accumulate another stats object into this one."""
        self.rows_in += other.rows_in
        self.copies_written += other.copies_written
        self.bytes_written += other.bytes_written
        self.index_lookups += other.index_lookups
        self.propagated_copies += other.propagated_copies

    def simulated_seconds(
        self,
        write_bandwidth_bytes: float = 40e6,
        lookup_seconds: float = 2e-7,
    ) -> float:
        """Simulated wall-clock for the load under a simple cost model.

        Writes are bandwidth-bound (redundancy costs I/O); every PREF insert
        additionally pays one index look-up (the paper's trade-off between
        CP-style redundancy and PREF-style look-ups).
        """
        return (
            self.bytes_written / write_bandwidth_bytes
            + self.index_lookups * lookup_seconds
        )


class BulkLoader:
    """Routes incremental batches into a :class:`PartitionedDatabase`."""

    def __init__(
        self,
        partitioned: PartitionedDatabase,
        config: PartitioningConfig,
    ) -> None:
        self.partitioned = partitioned
        self.config = config
        self._round_robin: dict[str, int] = {}
        #: referencing tables by referenced table name (for maintenance).
        self._referencing: dict[str, list[str]] = {}
        for table in config.tables:
            scheme = config.scheme_of(table)
            if isinstance(scheme, PrefScheme):
                self._referencing.setdefault(scheme.referenced_table, []).append(
                    table
                )

    # -- inserts ------------------------------------------------------------

    def load(
        self,
        batches: dict[str, Sequence[Sequence]],
        maintain_referencing: bool = True,
    ) -> BulkLoadStats:
        """Insert one batch per table, in referential load order.

        Args:
            batches: Mapping from table name to the rows to insert.
            maintain_referencing: If True (default), keep Definition 1's
                co-location guarantee by propagating copies of existing
                referencing tuples when referenced-side inserts create new
                partner locations.

        Returns:
            Aggregated :class:`BulkLoadStats` across all batches.
        """
        stats = BulkLoadStats()
        for table in self.config.load_order():
            rows = batches.get(table)
            if rows:
                stats.merge(
                    self.insert(table, rows, maintain_referencing=maintain_referencing)
                )
        return stats

    def insert(
        self,
        table: str,
        rows: Iterable[Sequence],
        maintain_referencing: bool = True,
    ) -> BulkLoadStats:
        """Insert *rows* into *table*, returning load statistics."""
        target = self.partitioned.table(table)
        scheme = self.config.scheme_of(table)
        # Inserts can introduce orphans or duplicate copies, which breaks a
        # previously verified effective-hash placement of this table and of
        # every table referencing it (locality propagation adds copies).
        self._invalidate_effective_hash(table)
        stats = BulkLoadStats()
        placements: list[tuple[Row, frozenset[int]]] = []
        for raw in rows:
            row = tuple(raw)
            stats.rows_in += 1
            placed = self._insert_one(target, scheme, row, stats)
            placements.append((row, placed))
        if maintain_referencing and table in self._referencing:
            self._propagate(table, placements, stats)
        return stats

    def _insert_one(
        self,
        target: PartitionedTable,
        scheme,
        row: Row,
        stats: BulkLoadStats,
    ) -> frozenset[int]:
        """Place one row; returns the set of partitions that got a copy."""
        source_id = target.allocate_source_id()
        width = target.schema.row_byte_width
        if isinstance(scheme, (HashScheme, RangeScheme)):
            key = _key_of(target, scheme.columns, row)
            partition_id = scheme.partition_of(key)
            target.partitions[partition_id].append(row, source_id)
            self._refresh_indexes(target, row, (partition_id,))
            stats.copies_written += 1
            stats.bytes_written += width
            return frozenset((partition_id,))
        if isinstance(scheme, RoundRobinScheme):
            cursor = self._round_robin.get(target.name, 0)
            target.partitions[cursor].append(row, source_id)
            self._refresh_indexes(target, row, (cursor,))
            self._round_robin[target.name] = (cursor + 1) % target.partition_count
            stats.copies_written += 1
            stats.bytes_written += width
            return frozenset((cursor,))
        if isinstance(scheme, ReplicatedScheme):
            for partition in target.partitions:
                partition.append(
                    row, source_id, duplicate=partition.partition_id != 0
                )
            self._refresh_indexes(
                target, row, tuple(range(target.partition_count))
            )
            stats.copies_written += target.partition_count
            stats.bytes_written += width * target.partition_count
            return frozenset(range(target.partition_count))
        if isinstance(scheme, PrefScheme):
            referenced = self.partitioned.table(scheme.referenced_table)
            index = referenced.partition_index(scheme.referenced_columns)
            key = _key_of(target, scheme.referencing_columns(target.name), row)
            if key_has_null(key):
                # A NULL key never matches a partner; no index probe needed.
                partitions = frozenset()
            else:
                stats.index_lookups += 1
                partitions = index.partitions_of(key)
            if partitions:
                placed = tuple(sorted(partitions))
                if isinstance(scheme, PatchedPrefScheme) and len(
                    placed
                ) > scheme.max_copies:
                    for partition_id in placed[scheme.max_copies :]:
                        target.add_patch(partition_id, row, source_id)
                    placed = placed[: scheme.max_copies]
                for rank, partition_id in enumerate(placed):
                    target.partitions[partition_id].append(
                        row, source_id, duplicate=rank > 0, has_partner=True
                    )
            else:
                cursor = self._round_robin.get(target.name, 0)
                target.partitions[cursor].append(
                    row, source_id, duplicate=False, has_partner=False
                )
                self._round_robin[target.name] = (
                    cursor + 1
                ) % target.partition_count
                placed = (cursor,)
            self._refresh_indexes(target, row, placed)
            stats.copies_written += len(placed)
            stats.bytes_written += width * len(placed)
            return frozenset(placed)
        raise BulkLoadError(f"unsupported scheme for bulk load: {scheme!r}")

    def _invalidate_effective_hash(self, table: str) -> None:
        """Drop verified hash placement of *table* and its referencers."""
        frontier = [table]
        seen = set()
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if self.partitioned.has_table(current):
                self.partitioned.table(current).effective_hash = None
            frontier.extend(self._referencing.get(current, ()))

    def _refresh_indexes(
        self,
        target: PartitionedTable,
        row: Row,
        partition_ids: Sequence[int],
    ) -> None:
        """Keep cached partition indexes of *target* consistent."""
        for columns, index in list(target._indexes.items()):
            key = _key_of(target, columns, row)
            for partition_id in partition_ids:
                index.add(key, partition_id)

    # -- locality maintenance ----------------------------------------------------

    def _propagate(
        self,
        referenced_name: str,
        placements: list[tuple[Row, frozenset[int]]],
        stats: BulkLoadStats,
    ) -> None:
        """Copy existing referencing tuples next to newly inserted partners.

        New copies written here are themselves new partner placements for
        tables further down the PREF chain, so propagation recurses.
        """
        for referencing_name in self._referencing.get(referenced_name, ()):
            referencing = self.partitioned.table(referencing_name)
            scheme = self.config.scheme_of(referencing_name)
            assert isinstance(scheme, PrefScheme)
            referenced = self.partitioned.table(referenced_name)
            # Which keys newly appeared in which partitions?
            new_keys: dict[Hashable, set[int]] = {}
            for row, placed in placements:
                key = _key_of(referenced, scheme.referenced_columns, row)
                if key_has_null(key):
                    # A NULL referenced key can never partner anything.
                    continue
                new_keys.setdefault(key, set()).update(placed)
            ref_columns = scheme.referencing_columns(referencing_name)
            locator = _locate_rows(referencing, ref_columns, set(new_keys))
            width = referencing.schema.row_byte_width
            max_copies = (
                scheme.max_copies
                if isinstance(scheme, PatchedPrefScheme)
                else None
            )
            downstream: list[tuple[Row, frozenset[int]]] = []
            for key, partitions in new_keys.items():
                for source_id, row, existing in locator.get(key, ()):  # noqa: B020
                    patched = referencing.patch_partitions_of(source_id)
                    missing = partitions - existing - patched
                    added: set[int] = set()
                    for partition_id in sorted(missing):
                        if (
                            max_copies is not None
                            and len(existing) >= max_copies
                        ):
                            # Duplication cap reached: overflow partner
                            # locations go to the patch list instead.
                            referencing.add_patch(partition_id, row, source_id)
                            continue
                        referencing.partitions[partition_id].append(
                            row, source_id, duplicate=True, has_partner=True
                        )
                        existing.add(partition_id)
                        added.add(partition_id)
                        stats.propagated_copies += 1
                        stats.copies_written += 1
                        stats.bytes_written += width
                        self._refresh_indexes(referencing, row, (partition_id,))
                    if added:
                        downstream.append((row, frozenset(added)))
                    _mark_has_partner(referencing, source_id)
            if downstream:
                self._propagate(referencing_name, downstream, stats)

    # -- updates and deletes ------------------------------------------------------

    def delete(self, table: str, where: Callable[[Row], bool]) -> int:
        """Delete rows matching *where* from every partition of *table*.

        Returns the number of row copies removed.  Cached partition indexes
        are invalidated (deletion is rare in the paper's warehousing setting).
        """
        target = self.partitioned.table(table)
        removed = 0
        for partition in target.partitions:
            keep = [
                (row, source_id, dup, has)
                for row, source_id, dup, has in zip(
                    partition.rows,
                    partition.source_ids,
                    partition.dup,
                    partition.has_partner,
                )
                if not where(row)
            ]
            removed += partition.row_count - len(keep)
            _rebuild_partition(partition, keep)
        if target.patches:
            kept_patches = {
                partition_id: [
                    (row, source_id)
                    for row, source_id in entries
                    if not where(row)
                ]
                for partition_id, entries in target.patches.items()
            }
            removed += target.patch_count - sum(
                len(entries) for entries in kept_patches.values()
            )
            target.replace_patches(kept_patches)
        target.invalidate_indexes()
        return removed

    def update(
        self,
        table: str,
        where: Callable[[Row], bool],
        assign: Callable[[Row], Row],
    ) -> int:
        """Update rows matching *where* in every partition of *table*.

        Raises :class:`BulkLoadError` if the update modifies any column used
        by a partitioning scheme or PREF predicate involving *table* (the
        paper forbids such updates).  Returns the number of copies updated.
        """
        target = self.partitioned.table(table)
        protected = self._protected_columns(table)
        positions = target.schema.positions(tuple(protected))
        updated = 0
        for partition in target.partitions:
            for index, row in enumerate(partition.rows):
                if not where(row):
                    continue
                new_row = tuple(assign(row))
                if len(new_row) != len(row):
                    raise BulkLoadError("update changed row arity")
                for position in positions:
                    if new_row[position] != row[position]:
                        column = target.schema.columns[position].name
                        raise BulkLoadError(
                            f"update modifies partitioning-relevant column "
                            f"{table}.{column}"
                        )
                partition.rows[index] = new_row
                partition.invalidate_caches()
                updated += 1
        for entries in target.patches.values():
            for index, (row, source_id) in enumerate(entries):
                if not where(row):
                    continue
                new_row = tuple(assign(row))
                if len(new_row) != len(row):
                    raise BulkLoadError("update changed row arity")
                for position in positions:
                    if new_row[position] != row[position]:
                        column = target.schema.columns[position].name
                        raise BulkLoadError(
                            f"update modifies partitioning-relevant column "
                            f"{table}.{column}"
                        )
                entries[index] = (new_row, source_id)
                updated += 1
        return updated

    def _protected_columns(self, table: str) -> set[str]:
        """Columns of *table* used by its scheme or any PREF predicate."""
        protected: set[str] = set()
        scheme = self.config.scheme_of(table)
        protected.update(getattr(scheme, "columns", ()))
        if isinstance(scheme, PrefScheme):
            protected.update(scheme.referencing_columns(table))
        for other in self.config.tables:
            other_scheme = self.config.scheme_of(other)
            if (
                isinstance(other_scheme, PrefScheme)
                and other_scheme.referenced_table == table
            ):
                protected.update(other_scheme.referenced_columns)
        return protected


def _key_of(table: PartitionedTable, columns: Sequence[str], row: Row):
    positions = table.schema.positions(tuple(columns))
    if len(positions) == 1:
        return row[positions[0]]
    return tuple(row[position] for position in positions)


def _locate_rows(
    table: PartitionedTable,
    columns: Sequence[str],
    keys: set,
) -> dict[Hashable, list[tuple[int, Row, set[int]]]]:
    """Find all base tuples of *table* whose key is in *keys*.

    Returns per key a list of (source_id, row, partitions holding a copy).
    """
    positions = table.schema.positions(tuple(columns))
    if len(positions) == 1:
        position = positions[0]
        extract = lambda row: row[position]  # noqa: E731
    else:
        extract = lambda row: tuple(row[p] for p in positions)  # noqa: E731
    by_source: dict[int, tuple[Hashable, Row, set[int]]] = {}
    for partition in table.partitions:
        for row, source_id in zip(partition.rows, partition.source_ids):
            key = extract(row)
            if key not in keys:
                continue
            entry = by_source.get(source_id)
            if entry is None:
                by_source[source_id] = (key, row, {partition.partition_id})
            else:
                entry[2].add(partition.partition_id)
    result: dict[Hashable, list[tuple[int, Row, set[int]]]] = {}
    for source_id, (key, row, partitions) in by_source.items():
        result.setdefault(key, []).append((source_id, row, partitions))
    return result


def _mark_has_partner(table: PartitionedTable, source_id: int) -> None:
    """Set the ``hasS`` bit on every copy of *source_id*."""
    for partition in table.partitions:
        changed = False
        for index, sid in enumerate(partition.source_ids):
            if sid == source_id:
                partition.has_partner[index] = True
                changed = True
        if changed:
            partition.invalidate_caches()


def _rebuild_partition(partition, entries) -> None:
    """Replace a partition's contents with the filtered *entries*."""
    from repro.storage.bitmap import Bitmap

    partition.rows = [row for row, _sid, _dup, _has in entries]
    partition.source_ids = [sid for _row, sid, _dup, _has in entries]
    partition.dup = Bitmap(dup for _row, _sid, dup, _has in entries)
    partition.has_partner = Bitmap(has for _row, _sid, _dup, has in entries)
    partition.invalidate_caches()
