"""Partitioning configurations: one scheme per table, with validation.

A configuration is the output of the design algorithms (paper Sections 3/4)
and the input of the partitioner: it assigns every table either a seed scheme
(HASH/RANGE/ROUND_ROBIN), REPLICATED, or PREF referencing another configured
table.  The PREF references must form a forest (no cycles), rooted at seed
tables.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.catalog.schema import DatabaseSchema
from repro.errors import InvalidConfigurationError
from repro.partitioning.predicate import JoinPredicate
from repro.partitioning.scheme import (
    PartitioningScheme,
    PatchedPrefScheme,
    PrefScheme,
    SchemeKind,
)


class PartitioningConfig:
    """An assignment of partitioning schemes to table names."""

    def __init__(self, partition_count: int) -> None:
        if partition_count < 1:
            raise InvalidConfigurationError("partition_count must be >= 1")
        self.partition_count = partition_count
        self._schemes: dict[str, PartitioningScheme] = {}

    # -- construction ---------------------------------------------------------

    def add(self, table: str, scheme: PartitioningScheme) -> "PartitioningConfig":
        """Assign *scheme* to *table* (chainable)."""
        if table in self._schemes:
            raise InvalidConfigurationError(
                f"table {table!r} already has a scheme"
            )
        count = getattr(scheme, "partition_count", None)
        if count is not None and count != self.partition_count:
            raise InvalidConfigurationError(
                f"scheme for {table!r} uses {count} partitions, "
                f"configuration uses {self.partition_count}"
            )
        if isinstance(scheme, PrefScheme) and scheme.referenced_table == table:
            raise InvalidConfigurationError(
                f"table {table!r} cannot PREF-reference itself"
            )
        self._schemes[table] = scheme
        return self

    def __contains__(self, table: str) -> bool:
        return table in self._schemes

    def scheme_of(self, table: str) -> PartitioningScheme:
        """The scheme assigned to *table*."""
        try:
            return self._schemes[table]
        except KeyError:
            raise InvalidConfigurationError(
                f"table {table!r} has no scheme in this configuration"
            ) from None

    @property
    def schemes(self) -> Mapping[str, PartitioningScheme]:
        """Read-only view of the scheme assignment."""
        return dict(self._schemes)

    @property
    def tables(self) -> tuple[str, ...]:
        """All configured table names."""
        return tuple(self._schemes)

    # -- structure -------------------------------------------------------------

    def seed_tables(self) -> tuple[str, ...]:
        """Tables with a non-PREF, non-replicated scheme."""
        return tuple(
            table
            for table, scheme in self._schemes.items()
            if scheme.kind.is_seed and scheme.kind is not SchemeKind.REPLICATED
        )

    def pref_tables(self) -> tuple[str, ...]:
        """Tables with a PREF scheme."""
        return tuple(
            table
            for table, scheme in self._schemes.items()
            if scheme.kind is SchemeKind.PREF
        )

    def chain_to_seed(self, table: str) -> list[tuple[str, JoinPredicate]]:
        """The PREF chain from *table* to its seed.

        Returns ``[(referenced_table, predicate), ...]`` hops; empty for seed
        tables.  Raises on cycles or dangling references.
        """
        hops: list[tuple[str, JoinPredicate]] = []
        seen = {table}
        current = table
        while True:
            scheme = self.scheme_of(current)
            if not isinstance(scheme, PrefScheme):
                return hops
            referenced = scheme.referenced_table
            if referenced in seen:
                raise InvalidConfigurationError(
                    f"PREF cycle detected through table {referenced!r}"
                )
            seen.add(referenced)
            hops.append((referenced, scheme.predicate))
            current = referenced

    def seed_of(self, table: str) -> str:
        """The seed table of *table*'s PREF chain (itself for seed schemes)."""
        hops = self.chain_to_seed(table)
        return hops[-1][0] if hops else table

    def load_order(self) -> list[str]:
        """Tables in an order where referenced tables precede referencing ones."""
        order: list[str] = []
        placed: set[str] = set()

        def place(table: str, trail: tuple[str, ...]) -> None:
            if table in placed:
                return
            if table in trail:
                raise InvalidConfigurationError(
                    f"PREF cycle detected through table {table!r}"
                )
            scheme = self.scheme_of(table)
            if isinstance(scheme, PrefScheme):
                place(scheme.referenced_table, trail + (table,))
            placed.add(table)
            order.append(table)

        for table in self._schemes:
            place(table, ())
        return order

    # -- validation --------------------------------------------------------------

    def validate(self, schema: DatabaseSchema) -> None:
        """Check the configuration against a database schema.

        Verifies that every configured table exists, PREF references point at
        configured non-replicated tables, predicates mention real columns,
        and the PREF graph is acyclic.
        """
        for table, scheme in self._schemes.items():
            table_schema = schema.table(table)  # raises if unknown
            for column in getattr(scheme, "columns", ()):
                if not table_schema.has_column(column):
                    raise InvalidConfigurationError(
                        f"scheme for {table!r} partitions on unknown column "
                        f"{column!r}"
                    )
            if isinstance(scheme, PrefScheme):
                referenced = scheme.referenced_table
                if referenced not in self._schemes:
                    raise InvalidConfigurationError(
                        f"table {table!r} PREF-references {referenced!r}, "
                        "which has no scheme in this configuration"
                    )
                if self.scheme_of(referenced).kind is SchemeKind.REPLICATED:
                    raise InvalidConfigurationError(
                        f"table {table!r} PREF-references the replicated "
                        f"table {referenced!r}; co-partitioning with a "
                        "replicated table is degenerate"
                    )
                if isinstance(self.scheme_of(referenced), PatchedPrefScheme):
                    raise InvalidConfigurationError(
                        f"table {table!r} PREF-references the patched table "
                        f"{referenced!r}; stored copies of a patched table "
                        "do not cover all partner partitions, so chained "
                        "co-location would be unsound"
                    )
                if scheme.predicate.tables != frozenset((table, referenced)):
                    raise InvalidConfigurationError(
                        f"PREF predicate for {table!r} connects "
                        f"{set(scheme.predicate.tables)}, expected "
                        f"{{{table!r}, {referenced!r}}}"
                    )
                referenced_schema = schema.table(referenced)
                for column in scheme.predicate.columns_of(table):
                    if not table_schema.has_column(column):
                        raise InvalidConfigurationError(
                            f"PREF predicate column {table}.{column} "
                            "does not exist"
                        )
                for column in scheme.predicate.columns_of(referenced):
                    if not referenced_schema.has_column(column):
                        raise InvalidConfigurationError(
                            f"PREF predicate column {referenced}.{column} "
                            "does not exist"
                        )
        self.load_order()  # raises on cycles

    def describe(self) -> str:
        """A human-readable, deterministic description of the configuration."""
        lines = []
        for table in sorted(self._schemes):
            scheme = self._schemes[table]
            if isinstance(scheme, PrefScheme):
                lines.append(
                    f"{table}: PREF on {scheme.referenced_table} "
                    f"by {scheme.predicate}"
                )
            else:
                columns = ",".join(getattr(scheme, "columns", ()))
                suffix = f"({columns})" if columns else ""
                lines.append(f"{table}: {scheme.kind.value.upper()}{suffix}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[tuple[str, PartitioningScheme]]:
        return iter(self._schemes.items())

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"PartitioningConfig({len(self._schemes)} tables, "
            f"{self.partition_count} partitions)"
        )
