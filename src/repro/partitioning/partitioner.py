"""Applies a :class:`PartitioningConfig` to a database (paper Definition 1).

Seed schemes place each tuple exactly once.  PREF places a copy of every
referencing tuple into each partition that holds at least one partitioning
partner in the referenced table (condition (1) of Definition 1) and deals
partner-less tuples round-robin (condition (2)).  The ``dup`` and ``hasS``
bitmap indexes of Section 2.1 are maintained during placement.
"""

from __future__ import annotations

from repro.catalog.schema import TableSchema
from repro.errors import PartitioningError
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import (
    HashScheme,
    PatchedPrefScheme,
    PrefScheme,
    RangeScheme,
    ReplicatedScheme,
    RoundRobinScheme,
    key_has_null,
    stable_hash,
)
from repro.storage.partitioned import PartitionedDatabase, PartitionedTable
from repro.storage.table import Database, Table


def partition_database(
    database: Database,
    config: PartitioningConfig,
) -> PartitionedDatabase:
    """Partition *database* according to *config*.

    Tables are processed in dependency order so that every PREF-referenced
    table is materialised (and its partition index can be built) before the
    tables referencing it.

    Args:
        database: The unpartitioned database ``D``.
        config: A validated partitioning configuration covering a subset of
            the database's tables; tables not in the configuration are left
            out of the result.

    Returns:
        The partitioned database ``DP``.
    """
    config.validate(database.schema)
    partitioned = PartitionedDatabase(config.partition_count)
    for table_name in config.load_order():
        base_table = database.table(table_name)
        scheme = config.scheme_of(table_name)
        seed = config.seed_of(table_name)
        partitioned_table = PartitionedTable(
            base_table.schema,
            scheme,
            config.partition_count,
            seed_table=seed,
        )
        partitioned.add_table(partitioned_table)
        _place_rows(base_table, partitioned_table, partitioned)
        if isinstance(scheme, PrefScheme):
            partitioned_table.effective_hash = _verified_effective_hash(
                partitioned_table, config
            )
    return partitioned


def _derived_hash_columns(
    table_name: str, config: PartitioningConfig
) -> tuple[str, ...] | None:
    """Columns of *table_name* that compose to the seed's hash key.

    Walks the PREF chain from the seed downwards; at every hop each tracked
    column must appear in the hop's partitioning predicate on the
    referenced side, and is replaced by its referencing-side counterpart.
    """
    chain = config.chain_to_seed(table_name)
    if not chain:
        return None
    seed = chain[-1][0]
    seed_scheme = config.scheme_of(seed)
    if not isinstance(seed_scheme, HashScheme):
        return None
    columns = list(seed_scheme.columns)
    # chain[i] = (referenced table, predicate); the referencing table of
    # hop i is chain[i-1]'s referenced table (or table_name for hop 0).
    hops = list(enumerate(chain))
    for index, (referenced, predicate) in reversed(hops):
        referencing = chain[index - 1][0] if index > 0 else table_name
        referenced_columns = predicate.columns_of(referenced)
        referencing_columns = predicate.columns_of(referencing)
        mapped = []
        for column in columns:
            try:
                position = referenced_columns.index(column)
            except ValueError:
                return None
            mapped.append(referencing_columns[position])
        columns = mapped
    return tuple(columns)


def _verified_effective_hash(
    table: PartitionedTable, config: PartitioningConfig
) -> tuple[str, ...] | None:
    """Derive and verify effective hash placement for a PREF table.

    Verification checks that every base tuple is stored exactly once, in
    exactly the partition its derived hash key selects (round-robin
    orphans or duplicate copies disqualify the table).
    """
    columns = _derived_hash_columns(table.name, config)
    if columns is None:
        return None
    if table.duplicate_count or table.patch_count:
        return None
    count = table.partition_count
    extract = _key_extractor(table.schema, columns)
    for partition in table.partitions:
        for row in partition.rows:
            key = extract(row)
            if stable_hash(key) % count != partition.partition_id:
                return None
    return columns


def _place_rows(
    base_table: Table,
    target: PartitionedTable,
    partitioned: PartitionedDatabase,
) -> None:
    """Distribute the rows of *base_table* into *target*'s partitions."""
    scheme = target.scheme
    if isinstance(scheme, (HashScheme, RangeScheme)):
        _place_by_key(base_table, target)
    elif isinstance(scheme, RoundRobinScheme):
        _place_round_robin(base_table, target)
    elif isinstance(scheme, ReplicatedScheme):
        _place_replicated(base_table, target)
    elif isinstance(scheme, PrefScheme):
        _place_pref(base_table, target, partitioned)
    else:  # pragma: no cover - exhaustive over scheme types
        raise PartitioningError(f"unsupported scheme: {scheme!r}")


def _place_by_key(base_table: Table, target: PartitionedTable) -> None:
    scheme = target.scheme
    extract = _key_extractor(base_table.schema, scheme.columns)
    for row in base_table.rows:
        source_id = target.allocate_source_id()
        partition_id = scheme.partition_of(extract(row))
        target.partitions[partition_id].append(row, source_id)


def _place_round_robin(base_table: Table, target: PartitionedTable) -> None:
    count = target.partition_count
    for index, row in enumerate(base_table.rows):
        source_id = target.allocate_source_id()
        target.partitions[index % count].append(row, source_id)


def _place_replicated(base_table: Table, target: PartitionedTable) -> None:
    for row in base_table.rows:
        source_id = target.allocate_source_id()
        for partition in target.partitions:
            # The copy on partition 0 is the canonical one.
            partition.append(row, source_id, duplicate=partition.partition_id != 0)


def _place_pref(
    base_table: Table,
    target: PartitionedTable,
    partitioned: PartitionedDatabase,
) -> None:
    scheme = target.scheme
    assert isinstance(scheme, PrefScheme)
    referenced = partitioned.table(scheme.referenced_table)
    index = referenced.partition_index(scheme.referenced_columns)
    extract = _key_extractor(
        base_table.schema, scheme.referencing_columns(target.name)
    )
    max_copies = (
        scheme.max_copies if isinstance(scheme, PatchedPrefScheme) else None
    )
    round_robin_cursor = 0
    for row in base_table.rows:
        source_id = target.allocate_source_id()
        key = extract(row)
        partitions = (
            frozenset() if key_has_null(key) else index.partitions_of(key)
        )
        if partitions:
            # Condition (1): a copy into every partition with a partner.
            # The lowest partition id holds the canonical copy (dup = 0).
            # Patched PREF stores only the max_copies lowest-id copies;
            # the rest go to the patch list for the residual shuffle.
            placed = sorted(partitions)
            if max_copies is not None and len(placed) > max_copies:
                for partition_id in placed[max_copies:]:
                    target.add_patch(partition_id, tuple(row), source_id)
                placed = placed[:max_copies]
            for rank, partition_id in enumerate(placed):
                target.partitions[partition_id].append(
                    row, source_id, duplicate=rank > 0, has_partner=True
                )
        else:
            # Condition (2): partner-less tuples are dealt round-robin.
            target.partitions[round_robin_cursor].append(
                row, source_id, duplicate=False, has_partner=False
            )
            round_robin_cursor = (round_robin_cursor + 1) % target.partition_count


def _key_extractor(schema: TableSchema, columns: tuple[str, ...]):
    """Row -> partitioning-key function for *columns* of *schema*."""
    positions = schema.positions(columns)
    if len(positions) == 1:
        position = positions[0]
        return lambda row: row[position]
    return lambda row: tuple(row[position] for position in positions)
