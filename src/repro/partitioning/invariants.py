"""Checkable invariants of PREF-partitioned databases (Definition 1).

These checkers are used heavily by the test suite (including the
property-based tests) to prove that the partitioner and the bulk loader
maintain the guarantees that query processing relies on:

* **Locality** — for every PREF table R referencing S under predicate p,
  every partition that holds an s also holds every r with p(r, s).
* **Coverage** — every base tuple of R is stored in at least one partition.
* **Canonical copies** — exactly one copy of every base tuple has dup == 0.
* **Partner bits** — hasS is set on (all copies of) r iff a partner exists
  anywhere in S.
"""

from __future__ import annotations

from typing import Sequence

from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import (
    PatchedPrefScheme,
    PrefScheme,
    key_has_null,
)
from repro.storage.partitioned import PartitionedDatabase, PartitionedTable


class InvariantViolation(AssertionError):
    """A PREF invariant does not hold; the message names the violation."""


def check_pref_invariants(
    partitioned: PartitionedDatabase,
    config: PartitioningConfig,
    exact: bool = False,
) -> None:
    """Validate Definition 1 over every PREF table of *partitioned*.

    Args:
        partitioned: The partitioned database to check.
        config: The configuration it was built from.
        exact: If True, additionally require that copies of partnered tuples
            exist *only* in partitions with a partner (true right after
            partitioning from scratch; incremental loads may leave behind a
            stale round-robin copy of a formerly partner-less tuple, which is
            harmless for locality).

    Raises:
        InvariantViolation: Naming the table and the violated condition.
    """
    for table_name in config.tables:
        scheme = config.scheme_of(table_name)
        if not isinstance(scheme, PrefScheme):
            _check_canonical_copies(partitioned.table(table_name))
            continue
        referencing = partitioned.table(table_name)
        referenced = partitioned.table(scheme.referenced_table)
        _check_canonical_copies(referencing)
        _check_pref_table(referencing, referenced, scheme, exact=exact)


def _check_pref_table(
    referencing: PartitionedTable,
    referenced: PartitionedTable,
    scheme: PrefScheme,
    exact: bool,
) -> None:
    name = referencing.name
    # Keys containing NULL never satisfy the partitioning predicate, on
    # either side: a NULL referenced key partners nothing, and a NULL
    # referencing key has no partner (matching SQL equality semantics).
    partner_keys_by_partition = [
        {
            key
            for key in _key_set(referenced, scheme.referenced_columns, pid)
            if not key_has_null(key)
        }
        for pid in range(referenced.partition_count)
    ]
    all_partner_keys = set().union(*partner_keys_by_partition) if (
        partner_keys_by_partition
    ) else set()

    # Collect, per base tuple of R, its key and the partitions holding copies.
    extract = _extractor(referencing, scheme.referencing_columns(name))
    copies: dict[int, set[int]] = {}
    keys: dict[int, object] = {}
    has_bits: dict[int, set[bool]] = {}
    for partition in referencing.partitions:
        for index, (row, source_id) in enumerate(
            zip(partition.rows, partition.source_ids)
        ):
            copies.setdefault(source_id, set()).add(partition.partition_id)
            keys[source_id] = extract(row)
            has_bits.setdefault(source_id, set()).add(
                partition.has_partner[index]
            )

    max_copies = (
        scheme.max_copies if isinstance(scheme, PatchedPrefScheme) else None
    )
    for source_id, key in keys.items():
        expected = (
            set()
            if key_has_null(key)
            else {
                partition_id
                for partition_id, partner_keys in enumerate(
                    partner_keys_by_partition
                )
                if key in partner_keys
            }
        )
        actual = copies[source_id]
        patched = set(referencing.patch_partitions_of(source_id))
        if patched & actual:
            raise InvariantViolation(
                f"{name}: tuple {source_id} (key {key!r}) both stored in and "
                f"patched to partitions {sorted(patched & actual)}"
            )
        if expected:
            # Patch-list entries satisfy locality through the residual
            # shuffle: a partner partition must hold a stored copy OR a
            # patch delivery, never neither.
            missing = expected - actual - patched
            if missing:
                raise InvariantViolation(
                    f"{name}: tuple {source_id} (key {key!r}) missing from "
                    f"partitions {sorted(missing)} that hold a partner"
                )
            if patched - expected:
                raise InvariantViolation(
                    f"{name}: tuple {source_id} (key {key!r}) patched to "
                    f"partitions {sorted(patched - expected)} without a "
                    f"partner"
                )
            if max_copies is not None and len(actual) > max_copies:
                raise InvariantViolation(
                    f"{name}: tuple {source_id} (key {key!r}) stored in "
                    f"{len(actual)} partitions, exceeding max_copies="
                    f"{max_copies}"
                )
            if exact and actual - expected:
                raise InvariantViolation(
                    f"{name}: tuple {source_id} (key {key!r}) has stray "
                    f"copies in {sorted(actual - expected)}"
                )
        else:
            # Partner-less tuples (including NULL keys, the PR 3 rule) are
            # dealt round-robin exactly once and never enter a patch list —
            # patch entries exist only for real partner locations.
            if patched:
                raise InvariantViolation(
                    f"{name}: partner-less tuple {source_id} has patch "
                    f"entries in partitions {sorted(patched)}"
                )
            if len(actual) != 1:
                raise InvariantViolation(
                    f"{name}: partner-less tuple {source_id} stored in "
                    f"{len(actual)} partitions, expected exactly 1"
                )
        expected_partner = not key_has_null(key) and key in all_partner_keys
        observed = has_bits[source_id]
        if observed != {expected_partner}:
            raise InvariantViolation(
                f"{name}: tuple {source_id} hasS bits {observed} inconsistent "
                f"with partner existence {expected_partner}"
            )


def _check_canonical_copies(table: PartitionedTable) -> None:
    """Exactly one copy of each base tuple must have dup == 0."""
    canonical: dict[int, int] = {}
    for partition in table.partitions:
        for index, source_id in enumerate(partition.source_ids):
            canonical.setdefault(source_id, 0)
            if not partition.dup[index]:
                canonical[source_id] += 1
    bad = {sid: count for sid, count in canonical.items() if count != 1}
    if bad:
        sample = next(iter(bad.items()))
        raise InvariantViolation(
            f"{table.name}: {len(bad)} tuples without exactly one canonical "
            f"copy (e.g. tuple {sample[0]} has {sample[1]})"
        )


def _key_set(
    table: PartitionedTable,
    columns: Sequence[str],
    partition_id: int,
) -> set:
    extract = _extractor(table, columns)
    return {extract(row) for row in table.partitions[partition_id].rows}


def _extractor(table: PartitionedTable, columns: Sequence[str]):
    positions = table.schema.positions(tuple(columns))
    if len(positions) == 1:
        position = positions[0]
        return lambda row: row[position]
    return lambda row: tuple(row[position] for position in positions)
