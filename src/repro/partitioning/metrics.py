"""Partitioning quality metrics: data redundancy and balance reports.

Data *redundancy* (DR) is paper Section 3.3: ``|DP| / |D| - 1``.  Data
*locality* (DL) is a property of a schema graph and a co-partitioning edge
set, so it lives with the design algorithms in
:mod:`repro.design.schema_graph`; this module covers everything measured on
materialised partitioned data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.partitioned import PartitionedDatabase, PartitionedTable
from repro.storage.table import Database


@dataclass(frozen=True)
class TableRedundancy:
    """Redundancy breakdown for one partitioned table."""

    table: str
    base_rows: int
    stored_rows: int

    @property
    def redundancy_factor(self) -> float:
        """Stored rows / base rows (1.0 means no duplicates)."""
        if self.base_rows == 0:
            return 1.0
        return self.stored_rows / self.base_rows


def data_redundancy(partitioned: PartitionedDatabase) -> float:
    """DR = |DP| / |D| - 1, with |D| taken as the canonical row count."""
    return partitioned.data_redundancy()


def data_redundancy_against(
    partitioned: PartitionedDatabase,
    database: Database,
) -> float:
    """DR measured against the base database's actual row counts.

    Unlike :func:`data_redundancy` this uses |D| from *database*, so tables
    that were left out of the configuration still count toward |D| exactly
    as the paper's formula prescribes — but only tables present in both are
    compared by default use cases; callers pass matching databases.
    """
    base_rows = sum(
        database.table(name).row_count for name in partitioned.table_names
    )
    if base_rows == 0:
        return 0.0
    return partitioned.total_rows / base_rows - 1.0


def per_table_redundancy(
    partitioned: PartitionedDatabase,
) -> list[TableRedundancy]:
    """Redundancy factors per table, sorted by table name."""
    return [
        TableRedundancy(
            table=name,
            base_rows=table.canonical_row_count,
            stored_rows=table.total_rows,
        )
        for name, table in sorted(partitioned.tables.items())
    ]


def partition_balance(table: PartitionedTable) -> float:
    """Max-partition rows divided by mean-partition rows (1.0 = perfect).

    A balance close to 1 means parallel scans of this table split evenly
    across nodes; large values indicate placement skew.
    """
    counts = [partition.row_count for partition in table.partitions]
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 1.0
    return max(counts) / mean


def storage_per_node(partitioned: PartitionedDatabase) -> list[int]:
    """Nominal bytes stored on each node (partition index = node index)."""
    totals = [0] * partitioned.partition_count
    for table in partitioned.tables.values():
        width = table.schema.row_byte_width
        for partition in table.partitions:
            totals[partition.partition_id] += partition.row_count * width
    return totals
