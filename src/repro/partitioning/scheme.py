"""Declarative partitioning-scheme descriptors.

A scheme describes *how* a table is split across the partitions of a
shared-nothing cluster; the :mod:`repro.partitioning.partitioner` applies
these descriptors to data.  The paper uses HASH as the seed scheme and PREF
for co-partitioned tables; RANGE, ROUND_ROBIN and REPLICATED are provided as
well since the definition of PREF admits any seed scheme.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PartitioningError
from repro.partitioning.predicate import JoinPredicate


class SchemeKind(enum.Enum):
    """Discriminator for partitioning-scheme descriptors."""

    HASH = "hash"
    RANGE = "range"
    ROUND_ROBIN = "round_robin"
    REPLICATED = "replicated"
    PREF = "pref"

    @property
    def is_seed(self) -> bool:
        """Seed schemes place tuples independently of any other table."""
        return self is not SchemeKind.PREF


@dataclass(frozen=True)
class HashScheme:
    """Hash-partition on one or more columns.

    Attributes:
        columns: Partitioning columns (the hash key).
        partition_count: Number of partitions.
    """

    columns: tuple[str, ...]
    partition_count: int
    kind: SchemeKind = SchemeKind.HASH

    def __post_init__(self) -> None:
        if not self.columns:
            raise PartitioningError("hash scheme needs at least one column")
        _check_count(self.partition_count)

    def partition_of(self, key: object) -> int:
        """Partition id for a key value (scalar or tuple for composites)."""
        return stable_hash(key) % self.partition_count


@dataclass(frozen=True)
class RangeScheme:
    """Range-partition on a single column with sorted upper boundaries.

    Partition i holds values <= boundaries[i]; the last partition holds the
    remainder, so ``partition_count == len(boundaries) + 1``.
    """

    column: str
    boundaries: tuple
    kind: SchemeKind = SchemeKind.RANGE

    def __post_init__(self) -> None:
        if list(self.boundaries) != sorted(self.boundaries):
            raise PartitioningError("range boundaries must be sorted")
        if not self.boundaries:
            raise PartitioningError("range scheme needs at least one boundary")

    @property
    def columns(self) -> tuple[str, ...]:
        """The partitioning columns (always a single column for RANGE)."""
        return (self.column,)

    @property
    def partition_count(self) -> int:
        """Number of partitions (boundaries + 1)."""
        return len(self.boundaries) + 1

    def partition_of(self, key: object) -> int:
        """Partition id via binary search over the boundaries."""
        import bisect

        return bisect.bisect_left(self.boundaries, key)


@dataclass(frozen=True)
class RoundRobinScheme:
    """Deal rows to partitions in turn (no partitioning column)."""

    partition_count: int
    kind: SchemeKind = SchemeKind.ROUND_ROBIN

    def __post_init__(self) -> None:
        _check_count(self.partition_count)

    @property
    def columns(self) -> tuple[str, ...]:
        """Round-robin has no partitioning columns."""
        return ()


@dataclass(frozen=True)
class ReplicatedScheme:
    """Store a full copy of the table on every node."""

    partition_count: int
    kind: SchemeKind = SchemeKind.REPLICATED

    def __post_init__(self) -> None:
        _check_count(self.partition_count)

    @property
    def columns(self) -> tuple[str, ...]:
        """Replication has no partitioning columns."""
        return ()


@dataclass(frozen=True)
class PrefScheme:
    """Predicate-based reference partitioning (paper Definition 1).

    The table carrying this scheme (the *referencing* table R) is
    co-partitioned with ``referenced_table`` (S): a copy of r goes to every
    partition i where some s in Pi(S) satisfies the partitioning predicate;
    tuples without any partner are dealt round-robin.

    Attributes:
        referenced_table: Name of S.
        predicate: Equi-join predicate between the referencing table and S.
    """

    referenced_table: str
    predicate: JoinPredicate
    kind: SchemeKind = SchemeKind.PREF

    def __post_init__(self) -> None:
        if self.referenced_table not in self.predicate.tables:
            raise PartitioningError(
                f"PREF predicate {self.predicate} does not mention the "
                f"referenced table {self.referenced_table!r}"
            )

    def referencing_columns(self, referencing_table: str) -> tuple[str, ...]:
        """Predicate columns on the referencing table's side."""
        return self.predicate.columns_of(referencing_table)

    @property
    def referenced_columns(self) -> tuple[str, ...]:
        """Predicate columns on the referenced table's side."""
        return self.predicate.columns_of(self.referenced_table)


@dataclass(frozen=True)
class PatchedPrefScheme(PrefScheme):
    """PREF with per-tuple duplication capped at ``max_copies``.

    Stored placement keeps the ``max_copies`` lowest partner partition
    ids (the lowest is the canonical dup=0 copy, exactly as for plain
    PREF); the remaining partner partitions are recorded in the table's
    per-partition *patch list* and serviced by a residual shuffle at
    scan time.  Bounded redundancy is traded for a bounded amount of
    remote work proportional to the overflow.
    """

    max_copies: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_copies < 1:
            raise PartitioningError(
                f"max_copies must be >= 1, got {self.max_copies}"
            )


PartitioningScheme = (
    HashScheme
    | RangeScheme
    | RoundRobinScheme
    | ReplicatedScheme
    | PrefScheme
    | PatchedPrefScheme
)

SeedScheme = HashScheme | RangeScheme | RoundRobinScheme

#: Per-generation capacity of the :func:`stable_hash` string memo.  The
#: memo keeps at most two generations resident (hot + previous), so the
#: worst-case footprint is ``2 * _STRING_HASH_CAPACITY`` entries — a hard
#: bound that sustained serving workloads with unbounded distinct strings
#: (e.g. streaming inserts of fresh comment text) cannot leak past.
_STRING_HASH_CAPACITY = 1 << 16

#: Hot generation of the memo: recently used strings.
_STRING_HASHES: dict[str, int] = {}
#: Previous generation: demoted on rotation, re-promoted on hit.  This
#: segmented (2Q-style) scheme approximates LRU with O(1) lookups and no
#: per-hit reordering: when the hot dict fills, it *becomes* the cold
#: dict and a fresh hot dict starts; anything in the cold generation that
#: is touched again moves back to hot, anything untouched is dropped
#: wholesale on the next rotation.
_STRING_HASHES_COLD: dict[str, int] = {}


def set_string_hash_cache_capacity(capacity: int) -> None:
    """Resize (and clear) the string-hash memo; mainly for tests.

    ``capacity`` bounds each of the two generations; 0 disables memoising
    entirely.
    """
    global _STRING_HASH_CAPACITY, _STRING_HASHES, _STRING_HASHES_COLD
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    _STRING_HASH_CAPACITY = capacity
    _STRING_HASHES = {}
    _STRING_HASHES_COLD = {}


def string_hash_cache_info() -> dict:
    """Sizes and bound of the string-hash memo (for tests/diagnostics)."""
    return {
        "capacity": _STRING_HASH_CAPACITY,
        "hot": len(_STRING_HASHES),
        "cold": len(_STRING_HASHES_COLD),
        "resident": len(_STRING_HASHES) + len(_STRING_HASHES_COLD),
    }


def _memoise_string_hash(key: str, value: int) -> None:
    """Insert into the hot generation, rotating generations when full."""
    global _STRING_HASHES, _STRING_HASHES_COLD
    if _STRING_HASH_CAPACITY == 0:
        return
    if len(_STRING_HASHES) >= _STRING_HASH_CAPACITY:
        _STRING_HASHES_COLD = _STRING_HASHES
        _STRING_HASHES = {}
    _STRING_HASHES[key] = value


def stable_hash(key: object) -> int:
    """A deterministic, process-independent hash for partitioning keys.

    Python's builtin ``hash`` is salted for strings, which would make
    partition assignments differ between runs; benchmarks and tests require
    stable placement.
    """
    if type(key) is int:
        # Exact-type fast path for the dominant case (surrogate keys);
        # bools fall through to their branch below, same values as ever.
        value = key & 0xFFFFFFFFFFFFFFFF
        value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        return (value ^ (value >> 31)) & 0x7FFFFFFFFFFFFFFF
    if isinstance(key, tuple):
        value = 0x345678
        for part in key:
            value = (value * 1000003) ^ stable_hash(part)
        return value & 0x7FFFFFFFFFFFFFFF
    if isinstance(key, str):
        cached = _STRING_HASHES.get(key)
        if cached is not None:
            return cached
        cached = _STRING_HASHES_COLD.get(key)
        if cached is not None:
            # Promote: a hit in the previous generation re-enters hot, so
            # frequently probed strings survive rotations.
            _memoise_string_hash(key, cached)
            return cached
        value = 0xCBF29CE484222325
        for char in key:
            value = ((value ^ ord(char)) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        value &= 0x7FFFFFFFFFFFFFFF
        # Pure function of the string: memoising is observation-free.
        # Only strings enter this table, so no cross-type key collisions
        # (the int/bool branches never consult it).
        _memoise_string_hash(key, value)
        return value
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        # splitmix64-style mixer: arithmetic patterns in key domains (e.g.
        # sequential surrogate keys) must not correlate with partition ids.
        value = key & 0xFFFFFFFFFFFFFFFF
        value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        return (value ^ (value >> 31)) & 0x7FFFFFFFFFFFFFFF
    if isinstance(key, float):
        if key.is_integer():
            return stable_hash(int(key))
        return stable_hash(repr(key))
    if key is None:
        return 0x9E3779B9
    return stable_hash(repr(key))


def key_has_null(key: object) -> bool:
    """True if a partitioning key (scalar or composite) contains SQL NULL.

    NULL never satisfies an equality predicate, so a referencing tuple
    whose PREF key contains NULL is partner-less by definition — the
    partition index must not be consulted for it (Python's ``None == None``
    would otherwise pair NULL keys up).
    """
    if isinstance(key, tuple):
        return any(part is None for part in key)
    return key is None


def _check_count(partition_count: int) -> None:
    if partition_count < 1:
        raise PartitioningError(
            f"partition_count must be >= 1, got {partition_count}"
        )
