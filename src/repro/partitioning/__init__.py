"""Partitioning: schemes (incl. PREF), configurations, partitioner, loader."""

from repro.partitioning.bulk_loader import BulkLoader, BulkLoadStats
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.invariants import InvariantViolation, check_pref_invariants
from repro.partitioning.migration import MigrationPlan, TableMigration, plan_migration
from repro.partitioning.metrics import (
    data_redundancy,
    data_redundancy_against,
    partition_balance,
    per_table_redundancy,
    storage_per_node,
)
from repro.partitioning.partitioner import partition_database
from repro.partitioning.predicate import JoinPredicate
from repro.partitioning.adaptive import (
    AdaptiveReport,
    AdaptiveThresholds,
    TableHotspot,
    detect_hotspots,
    recommend_patched_pref,
)
from repro.partitioning.scheme import (
    HashScheme,
    PartitioningScheme,
    PatchedPrefScheme,
    PrefScheme,
    RangeScheme,
    ReplicatedScheme,
    RoundRobinScheme,
    SchemeKind,
    set_string_hash_cache_capacity,
    stable_hash,
    string_hash_cache_info,
)

__all__ = [
    "AdaptiveReport",
    "AdaptiveThresholds",
    "BulkLoader",
    "BulkLoadStats",
    "HashScheme",
    "InvariantViolation",
    "JoinPredicate",
    "MigrationPlan",
    "PartitioningConfig",
    "PartitioningScheme",
    "PatchedPrefScheme",
    "PrefScheme",
    "RangeScheme",
    "ReplicatedScheme",
    "RoundRobinScheme",
    "SchemeKind",
    "TableHotspot",
    "TableMigration",
    "check_pref_invariants",
    "data_redundancy",
    "data_redundancy_against",
    "detect_hotspots",
    "partition_balance",
    "partition_database",
    "plan_migration",
    "per_table_redundancy",
    "recommend_patched_pref",
    "set_string_hash_cache_capacity",
    "stable_hash",
    "string_hash_cache_info",
    "storage_per_node",
]
