"""The schema-driven (SD) automated partitioning design (paper Section 3).

Input: schema (with referential constraints) and data; no workload needed.
The algorithm (1) builds the schema graph from the foreign keys, (2)
extracts a maximum spanning forest to maximise data-locality, and (3)
enumerates seed choices per tree (Listing 1), picking the configuration
with minimum estimated data-redundancy.  Small tables can be excluded and
fully replicated beforehand (paper Section 3.1), and user-given
no-redundancy constraints are honoured through the multi-seed extension
(Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.design.configurator import TreeConfig, find_optimal_config
from repro.design.estimator import RedundancyEstimator
from repro.design.graph import GraphEdge, SchemaGraph
from repro.design.locality import config_data_locality
from repro.design.spanning import (
    enumerate_maximum_spanning_forests,
    maximum_spanning_forest,
)
from repro.errors import DesignError
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import ReplicatedScheme
from repro.storage.table import Database


@dataclass
class DesignResult:
    """Outcome of an automated partitioning design run.

    Attributes:
        config: The partitioning configuration (including replicated
            tables, if any were requested).
        graph: The schema graph the design was computed over (excluding
            replicated tables).
        mast_edges: The spanning-forest edges actually used (cut edges
            from multi-seed configurations already removed).
        seeds: Seed tables, one per tree region.
        estimated_size: Estimated |DP| in stored rows (configured tables).
        data_locality: DL over the full schema graph including replicated
            tables (their edges count as satisfied).
        estimated_redundancy: Estimated DR over the configured tables.
    """

    config: PartitioningConfig
    graph: SchemaGraph
    mast_edges: tuple[GraphEdge, ...]
    seeds: tuple[str, ...]
    estimated_size: float
    data_locality: float
    estimated_redundancy: float


class SchemaDrivenDesigner:
    """Runs the SD algorithm against one database.

    Args:
        database: The unpartitioned database (schema + data).
        partition_count: Target number of partitions/nodes.
        sampling_rate: Histogram sampling rate for redundancy estimation.
        seed: RNG seed for sampling.
    """

    def __init__(
        self,
        database: Database,
        partition_count: int,
        sampling_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.database = database
        self.partition_count = partition_count
        self.estimator = RedundancyEstimator(
            database, partition_count, sampling_rate=sampling_rate, seed=seed
        )

    def design(
        self,
        replicate: Iterable[str] = (),
        exclude: Iterable[str] = (),
        no_redundancy: Iterable[str] = (),
        mast_limit: int = 4,
        max_seeds: int = 4,
        seed_scheme: str = "hash",
    ) -> DesignResult:
        """Run the SD algorithm.

        Args:
            replicate: Small tables to replicate to every node instead of
                partitioning (excluded from the schema graph).
            exclude: Tables to leave out of the design entirely.
            no_redundancy: Tables that must not receive duplicates.
            mast_limit: How many alternative equal-weight spanning forests
                to evaluate (ties are common in real schemas).
            max_seeds: Bound for the multi-seed constraint search.
            seed_scheme: Scheme for seed tables (``hash``, ``range`` or
                ``round_robin``; Definition 1 admits any seed scheme).

        Returns:
            The best :class:`DesignResult` found.
        """
        replicate = set(replicate)
        exclude = set(exclude)
        schema = self.database.schema
        sizes = self.database.table_sizes()
        graph = SchemaGraph.from_schema(
            schema, sizes, exclude=replicate | exclude
        )
        no_redundancy_set = frozenset(set(no_redundancy) - replicate - exclude)

        best: TreeConfig | None = None
        forests = list(
            enumerate_maximum_spanning_forests(graph, limit=mast_limit)
        ) or [maximum_spanning_forest(graph)]
        for forest in forests:
            try:
                candidate = find_optimal_config(
                    forest,
                    graph.tables,
                    schema,
                    self.estimator,
                    self.partition_count,
                    no_redundancy=no_redundancy_set,
                    max_seeds=max_seeds,
                    seed_scheme=seed_scheme,
                )
            except DesignError:
                continue
            if best is None or candidate.estimated_size < best.estimated_size:
                best = candidate
        if best is None:
            raise DesignError("no feasible partitioning configuration found")

        config = best.config
        for table in sorted(replicate):
            config.add(table, ReplicatedScheme(self.partition_count))

        full_graph = SchemaGraph.from_schema(schema, sizes, exclude=exclude)
        return DesignResult(
            config=config,
            graph=graph,
            mast_edges=best.kept_edges,
            seeds=best.seeds,
            estimated_size=best.estimated_size,
            data_locality=config_data_locality(full_graph, config),
            estimated_redundancy=self.estimator.estimate_redundancy(
                _without_replicated(config, replicate, self.partition_count)
            ),
        )


    def design_for_oltp(
        self,
        replicate: Iterable[str] = (),
        mast_limit: int = 4,
        max_seeds: int = 6,
    ) -> DesignResult:
        """OLTP variant (paper outlook): no table may hold duplicates.

        Disallowing data-redundancy for every table clusters the tuples a
        transaction touches (describable by join predicates) without
        storing anything twice, at the price of data-locality.
        """
        partitioned_tables = [
            name
            for name in self.database.schema.table_names
            if name not in set(replicate)
        ]
        return self.design(
            replicate=replicate,
            no_redundancy=partitioned_tables,
            mast_limit=mast_limit,
            max_seeds=max_seeds,
        )


def _without_replicated(
    config: PartitioningConfig,
    replicate: set[str],
    partition_count: int,
) -> PartitioningConfig:
    """A copy of *config* without the replicated tables (DR as the paper
    reports it covers the partitioned tables; replicated small tables are
    excluded before the algorithms run)."""
    trimmed = PartitioningConfig(partition_count)
    for table, scheme in config:
        if table not in replicate:
            trimmed.add(table, scheme)
    return trimmed
