"""Data-locality of a partitioning configuration over a schema graph.

An edge of the schema graph is *satisfied* (its join runs locally) when

* one of its tables is fully replicated, or
* one table is PREF-partitioned by the other with an equivalent predicate
  (locality cases 2/3 of Section 2.2), or
* both tables are hash-partitioned on the edge's join columns with the same
  partition count (locality case 1).
"""

from __future__ import annotations

from repro.design.graph import GraphEdge, SchemaGraph, data_locality
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import HashScheme, PrefScheme, SchemeKind


def edge_satisfied(edge: GraphEdge, config: PartitioningConfig) -> bool:
    """Does *config* make the join over *edge* execute locally?"""
    table_a, table_b = sorted(edge.tables)
    if table_a not in config or table_b not in config:
        return False
    scheme_a = config.scheme_of(table_a)
    scheme_b = config.scheme_of(table_b)
    if (
        scheme_a.kind is SchemeKind.REPLICATED
        or scheme_b.kind is SchemeKind.REPLICATED
    ):
        return True
    for scheme, other in ((scheme_a, table_b), (scheme_b, table_a)):
        if (
            isinstance(scheme, PrefScheme)
            and scheme.referenced_table == other
            and scheme.predicate.equivalent(edge.predicate)
        ):
            return True
    if isinstance(scheme_a, HashScheme) and isinstance(scheme_b, HashScheme):
        if scheme_a.partition_count != scheme_b.partition_count:
            return False
        columns_a = edge.predicate.columns_of(table_a)
        columns_b = edge.predicate.columns_of(table_b)
        return scheme_a.columns == columns_a and scheme_b.columns == columns_b
    return False


def satisfied_edges(
    graph: SchemaGraph, config: PartitioningConfig
) -> list[GraphEdge]:
    """All schema-graph edges whose joins are local under *config*."""
    return [edge for edge in graph.edges if edge_satisfied(edge, config)]


def config_data_locality(
    graph: SchemaGraph, config: PartitioningConfig
) -> float:
    """DL of *config* measured over *graph* (paper Section 3.2)."""
    return data_locality(graph, satisfied_edges(graph, config))
