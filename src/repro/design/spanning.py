"""Maximum spanning trees/forests over schema graphs.

The design algorithms extract a maximum spanning tree (MAST) per connected
component: discarding the cheapest edges minimises the network cost of the
remote joins that remain (paper Section 3.2).  Ties are broken
deterministically, and :func:`enumerate_maximum_spanning_forests` can list
alternative forests of equal total weight (the paper evaluates each).
"""

from __future__ import annotations

from typing import Iterator

from repro.design.graph import GraphEdge, SchemaGraph


class _UnionFind:
    """Union-find over table names with path compression."""

    def __init__(self, items) -> None:
        self.parent = {item: item for item in items}

    def find(self, item: str) -> str:
        parent = self.parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a: str, b: str) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def _sorted_edges(graph: SchemaGraph) -> list[GraphEdge]:
    """Edges by descending weight with a deterministic tie-break."""
    return sorted(graph.edges, key=lambda e: (-e.weight, e.key()))


def maximum_spanning_forest(graph: SchemaGraph) -> list[GraphEdge]:
    """Kruskal's algorithm on descending weights.

    Returns the MAST edges of every connected component (their union, the
    maximum spanning forest).
    """
    uf = _UnionFind(graph.tables)
    chosen: list[GraphEdge] = []
    for edge in _sorted_edges(graph):
        a, b = sorted(edge.tables)
        if uf.union(a, b):
            chosen.append(edge)
    return chosen


def forest_weight(edges: list[GraphEdge]) -> int:
    """Total weight of a set of edges."""
    return sum(edge.weight for edge in edges)


def enumerate_maximum_spanning_forests(
    graph: SchemaGraph,
    limit: int = 8,
) -> Iterator[list[GraphEdge]]:
    """Yield up to *limit* distinct maximum spanning forests.

    All yielded forests have the optimal total weight; the first one equals
    :func:`maximum_spanning_forest`.  Uses depth-first branching over the
    weight-sorted edge list with an upper-bound prune, which is fast for
    the modest tie counts real schema graphs exhibit.
    """
    best = forest_weight(maximum_spanning_forest(graph))
    edges = _sorted_edges(graph)
    tables = list(graph.tables)
    target_edges = len(tables) - len(graph.connected_components())
    seen: set[frozenset] = set()
    emitted = 0

    def remaining_bound(index: int, need: int) -> int:
        return sum(edge.weight for edge in edges[index : index + need])

    def branch(index: int, uf_pairs: list[tuple[str, str]], chosen: list[GraphEdge]):
        nonlocal emitted
        if emitted >= limit:
            return
        if len(chosen) == target_edges:
            key = frozenset(edge.key() for edge in chosen)
            if key not in seen and forest_weight(chosen) == best:
                seen.add(key)
                emitted += 1
                yield list(chosen)
            return
        if index >= len(edges):
            return
        need = target_edges - len(chosen)
        if forest_weight(chosen) + remaining_bound(index, need) < best:
            return
        edge = edges[index]
        uf = _UnionFind(tables)
        for a, b in uf_pairs:
            uf.union(a, b)
        a, b = sorted(edge.tables)
        if uf.find(a) != uf.find(b):
            # Include the edge.
            yield from branch(index + 1, uf_pairs + [(a, b)], chosen + [edge])
        # Exclude the edge.
        yield from branch(index + 1, uf_pairs, chosen)

    yield from branch(0, [], [])
