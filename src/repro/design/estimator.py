"""Redundancy estimation for PREF-partitioned tables (paper Appendix A).

The expected number of partitions holding a copy of a referencing tuple
whose join-key value occurs ``f`` times in the referenced table, spread
uniformly over ``n`` partitions, is

    E[f, n] = sum_{x=1..min(n,f)}  x * C(n, x) * x! * S(f, x) / n^f

with S the Stirling numbers of the second kind.  This is exactly the
expected number of occupied boxes when throwing f balls into n boxes, so it
also equals the closed form ``n * (1 - (1 - 1/n)^f)``; we compute small
values through the Stirling formulation (as the paper describes, with a
memoised lookup table) and verify the closed form against it in tests,
switching to the O(1) closed form for large f.

The redundancy factor of a MAST edge (referenced table Ti -> referencing
table Tj) is ``r(e) = sum_{v in Ve} E[f_v, n] / |Tj|`` over the distinct
join-key values of the referenced side; the estimated size of a table is
its base size times the product of the redundancy factors along the path
from the seed table (redundancy is cumulative).

Histograms may be built from a sample of the data (Figure 13 studies the
resulting accuracy/runtime trade-off).
"""

from __future__ import annotations

from functools import lru_cache
from math import comb, factorial

from repro.catalog.statistics import FrequencyHistogram
from repro.errors import DesignError
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.predicate import JoinPredicate
from repro.partitioning.scheme import PrefScheme
from repro.storage.table import Database

#: Above this frequency the exact closed form replaces the Stirling sum.
STIRLING_CUTOFF = 64


@lru_cache(maxsize=200_000)
def stirling2(f: int, x: int) -> int:
    """Stirling number of the second kind S(f, x), exact."""
    if x < 0 or x > f:
        return 0
    if x == f:
        return 1
    if x == 0:
        return 0
    return x * stirling2(f - 1, x) + stirling2(f - 1, x - 1)


@lru_cache(maxsize=200_000)
def expected_copies(f: float, n: int) -> float:
    """E[f, n]: expected number of partitions receiving >= 1 of f references.

    Uses the paper's Stirling-number formulation for small integer f and
    the exact occupancy closed form otherwise (sampled histograms scale
    frequencies back up to non-integer estimates).
    """
    if f <= 0:
        return 1.0  # a partner-less tuple is stored exactly once
    if n <= 1:
        return 1.0
    if f != int(f) or f > STIRLING_CUTOFF:
        return n * (1.0 - (1.0 - 1.0 / n) ** f)
    f = int(f)
    total = 0.0
    denominator = n**f
    for x in range(1, min(n, f) + 1):
        ways = comb(n, x) * factorial(x) * stirling2(f, x)
        total += x * ways / denominator
    return total


def expected_copies_closed_form(f: int, n: int) -> float:
    """The occupancy closed form n*(1-(1-1/n)^f) (exactly equals E[f, n])."""
    if f <= 0 or n <= 1:
        return 1.0
    return n * (1.0 - (1.0 - 1.0 / n) ** f)


def expected_copies_with_upstream(f: float, upstream: float, n: int) -> float:
    """Expected copies when each of the f partners is itself duplicated.

    Redundancy is cumulative (paper Appendix A): if the referenced table
    stores each tuple in ``upstream`` partitions on average, a referencing
    tuple with f partners covers the union of f random ``upstream``-sized
    partition sets: ``n * (1 - (1 - upstream/n)^f)``.  For upstream == 1
    this reduces to the occupancy form of :func:`expected_copies`.
    """
    if f <= 0 or n <= 1:
        return 1.0
    if upstream <= 1.0:
        return expected_copies(f, n)
    coverage = min(upstream, float(n)) / n
    return n * (1.0 - (1.0 - coverage) ** f)


class RedundancyEstimator:
    """Estimates partitioned sizes for PREF configurations over a database.

    Args:
        database: The unpartitioned database (histogram source).
        partition_count: Target number of partitions ``n``.
        sampling_rate: Fraction of rows histograms are built from.
        seed: RNG seed for sampling (reproducibility).
    """

    def __init__(
        self,
        database: Database,
        partition_count: int,
        sampling_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if partition_count < 1:
            raise DesignError("partition_count must be >= 1")
        self.database = database
        self.partition_count = partition_count
        self.sampling_rate = sampling_rate
        self.seed = seed
        self._histograms: dict[tuple[str, tuple[str, ...]], FrequencyHistogram] = {}
        self._edge_cache: dict[tuple, float] = {}

    # -- histograms -----------------------------------------------------------

    def histogram(self, table: str, columns: tuple[str, ...]) -> FrequencyHistogram:
        """(Sampled) frequency histogram of *columns* in *table*, cached."""
        key = (table, columns)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self.database.table(table).histogram(
                columns, sampling_rate=self.sampling_rate, seed=self.seed
            )
            self._histograms[key] = hist
        return hist

    # -- edge redundancy factors --------------------------------------------------

    def edge_redundancy(
        self,
        predicate: JoinPredicate,
        referencing: str,
        upstream_factor: float = 1.0,
    ) -> float:
        """Redundancy factor r(e) for PREF-partitioning *referencing*.

        The other table of *predicate* is the referenced side.  The factor
        is the expected stored copies per referencing tuple, in [1, n].

        Redundancy is cumulative: if the referenced table itself stores
        each tuple in ``upstream_factor`` partitions on average, a
        referencing tuple with f partners effectively chases
        ``f * upstream_factor`` copies, so the upstream factor composes
        *inside* the occupancy expectation rather than multiplying the
        result (which would overestimate badly for long chains).
        """
        referenced = predicate.other_table(referencing)
        cache_key = (predicate.normalised(), referencing, round(upstream_factor, 6))
        cached = self._edge_cache.get(cache_key)
        if cached is not None:
            return cached
        referenced_hist = self.histogram(
            referenced, predicate.columns_of(referenced)
        )
        referencing_hist = self.histogram(
            referencing, predicate.columns_of(referencing)
        )
        n = self.partition_count
        rate = referenced_hist.sampling_rate
        mean_frequency, scale = self._frequency_calibration(
            referenced, referenced_hist
        )
        expected_total = 0.0
        referencing_rows = 0
        for value, count in referencing_hist.items():
            referencing_rows += count
            sampled_f = referenced_hist.frequency(value)
            if sampled_f:
                f = sampled_f * scale
            elif rate < 1.0:
                # The value was not sampled; under referential integrity it
                # still has partners, at roughly the mean frequency.
                f = mean_frequency
            else:
                f = 0.0  # full scan: truly partner-less
            expected_total += count * expected_copies_with_upstream(
                f, upstream_factor, n
            )
        if referencing_rows == 0:
            factor = 1.0
        else:
            factor = expected_total / referencing_rows
        factor = min(max(factor, 1.0), float(n))
        self._edge_cache[cache_key] = factor
        return factor

    def _frequency_calibration(
        self, referenced: str, hist: FrequencyHistogram
    ) -> tuple[float, float]:
        """Calibrate sampled frequencies against the true table size.

        With Bernoulli sampling at rate r, a join column with true distinct
        count D and mean frequency f̄ = R / D (R is the known table size)
        shows d = D * (1 - (1 - r)^f̄) distinct values in the sample.
        Solving ``d = (R / f̄) * (1 - (1 - r)^f̄)`` for f̄ recovers the mean
        frequency without the naive k/r blow-up on near-unique columns.
        Per-value estimates keep the sampled histogram's shape:
        ``f̂_v = k_v * f̄ / k̄``.

        Returns ``(f̄, f̄ / k̄)``.
        """
        rate = hist.sampling_rate
        sample_rows = hist.row_count
        d = hist.distinct_count
        if rate >= 1.0 or d == 0 or sample_rows == 0:
            return (sample_rows / d if d else 0.0), 1.0
        total_rows = self.database.table(referenced).row_count
        mean_sampled = sample_rows / d

        def seen(fbar: float) -> float:
            return (total_rows / fbar) * (1.0 - (1.0 - rate) ** fbar)

        low, high = 1e-6, 1e9
        # seen() is decreasing in f̄; bisect to match the observed d.
        for _ in range(80):
            mid = (low + high) / 2
            if seen(mid) > d:
                low = mid
            else:
                high = mid
        mean_frequency = max((low + high) / 2, rate * mean_sampled)
        return mean_frequency, mean_frequency / mean_sampled

    # -- table and database sizes ----------------------------------------------------

    def estimate_table_size(
        self,
        table: str,
        config: PartitioningConfig,
    ) -> float:
        """Estimated stored rows of *table* after partitioning under *config*.

        Multiplies the base size by the redundancy factors of every edge on
        the PREF chain from the seed table (redundancy is cumulative).
        """
        base = self.database.table(table).row_count
        scheme = config.scheme_of(table)
        if not isinstance(scheme, PrefScheme):
            if getattr(scheme, "kind", None) is not None and scheme.kind.value == "replicated":
                return float(base * self.partition_count)
            return float(base)
        # Walk the chain from the seed downwards, composing each hop's
        # upstream duplication into the next occupancy expectation.
        chain = config.chain_to_seed(table)
        factor = 1.0
        for index in range(len(chain) - 1, -1, -1):
            referenced, predicate = chain[index]
            referencing = chain[index - 1][0] if index > 0 else table
            factor = self.edge_redundancy(
                predicate, referencing=referencing, upstream_factor=factor
            )
        return base * factor

    def estimate_database_size(self, config: PartitioningConfig) -> float:
        """Estimated |DP| (stored rows) for all tables in *config*."""
        return sum(
            self.estimate_table_size(table, config) for table in config.tables
        )

    def estimate_redundancy(self, config: PartitioningConfig) -> float:
        """Estimated DR = |DP| / |D| - 1 over the configured tables."""
        base = sum(
            self.database.table(table).row_count for table in config.tables
        )
        if base == 0:
            return 0.0
        return self.estimate_database_size(config) / base - 1.0
