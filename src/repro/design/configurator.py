"""Enumeration of PREF partitioning configurations over a MAST (Listing 1).

Given a maximum spanning forest, every enumerated configuration follows the
same pattern: per tree one table is the *seed* (hash-partitioned on the join
attribute of its heaviest incident edge) and every other table is
recursively PREF-partitioned along the tree edges.  The configuration with
the minimum estimated partitioned size wins.

The multi-seed extension (paper Section 3.4) additionally enumerates
configurations whose trees are cut into several regions, each with its own
seed, which is how user-given no-redundancy constraints are satisfied at
the cost of some data-locality.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.catalog.schema import DatabaseSchema
from repro.design.estimator import RedundancyEstimator
from repro.design.graph import GraphEdge
from repro.errors import DesignError
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import (
    HashScheme,
    PrefScheme,
    RangeScheme,
    RoundRobinScheme,
)


@dataclass
class TreeConfig:
    """A configuration for one forest plus its estimated size."""

    config: PartitioningConfig
    estimated_size: float
    seeds: tuple[str, ...]
    kept_edges: tuple[GraphEdge, ...]
    cut_edges: tuple[GraphEdge, ...] = ()


def find_optimal_config(
    forest_edges: Sequence[GraphEdge],
    tables: Iterable[str],
    schema: DatabaseSchema,
    estimator: RedundancyEstimator,
    partition_count: int,
    no_redundancy: frozenset[str] = frozenset(),
    max_seeds: int = 4,
    seed_scheme: str = "hash",
) -> TreeConfig:
    """Find the minimum-redundancy configuration for a spanning forest.

    Implements Listing 1 (one seed per tree) and, when *no_redundancy*
    constraints cannot be met that way, the multi-seed extension: cut sets
    of increasing size are removed from the trees (largest kept weight
    first, i.e. maximal data-locality) until a feasible configuration
    exists.

    Args:
        forest_edges: Edges of the maximum spanning forest.
        tables: All tables to configure (isolated nodes included).
        schema: Database schema (for primary keys in the constraint check).
        estimator: Redundancy estimator over the base data.
        partition_count: Number of partitions.
        no_redundancy: Tables that must not receive duplicate tuples.
        max_seeds: Upper bound on seeds per tree for constraint search.
        seed_scheme: Scheme for seed tables — ``hash`` (the paper's
            choice), ``range`` (quantile boundaries from the data), or
            ``round_robin``.  Definition 1 admits any seed scheme.

    Returns:
        The best feasible :class:`TreeConfig`.

    Raises:
        DesignError: If no feasible configuration exists within max_seeds.
    """
    tables = list(tables)
    base = _enumerate_over_cut(
        forest_edges,
        tables,
        schema,
        estimator,
        partition_count,
        cut=(),
        no_redundancy=no_redundancy,
        seed_scheme=seed_scheme,
    )
    if base is not None:
        return base
    if not no_redundancy:  # pragma: no cover - base always feasible then
        raise DesignError("no configuration found")
    edges = sorted(forest_edges, key=lambda e: (e.weight, e.key()))
    for extra_cuts in range(1, max_seeds):
        candidates = []
        for cut in itertools.combinations(edges, extra_cuts):
            kept_weight = sum(e.weight for e in forest_edges) - sum(
                e.weight for e in cut
            )
            candidates.append((kept_weight, cut))
        # Maximal data-locality first (paper: DL monotonically decreases
        # with more seeds, so the first feasible cut level is optimal).
        candidates.sort(key=lambda item: -item[0])
        best: TreeConfig | None = None
        best_weight: int | None = None
        for kept_weight, cut in candidates:
            if best is not None and kept_weight < best_weight:
                break
            result = _enumerate_over_cut(
                forest_edges,
                tables,
                schema,
                estimator,
                partition_count,
                cut=cut,
                no_redundancy=no_redundancy,
                seed_scheme=seed_scheme,
            )
            if result is None:
                continue
            if best is None or result.estimated_size < best.estimated_size:
                best = result
                best_weight = kept_weight
        if best is not None:
            return best
    raise DesignError(
        f"no configuration satisfies no-redundancy constraints "
        f"{sorted(no_redundancy)} within {max_seeds} seeds"
    )


def _enumerate_over_cut(
    forest_edges: Sequence[GraphEdge],
    tables: list[str],
    schema: DatabaseSchema,
    estimator: RedundancyEstimator,
    partition_count: int,
    cut: tuple[GraphEdge, ...],
    no_redundancy: frozenset[str],
    seed_scheme: str = "hash",
) -> TreeConfig | None:
    """Enumerate seed choices for the forest with *cut* edges removed."""
    cut_keys = {edge.key() for edge in cut}
    kept = [edge for edge in forest_edges if edge.key() not in cut_keys]
    components = _components(tables, kept)
    total_size = 0.0
    combined = PartitioningConfig(partition_count)
    seeds: list[str] = []
    for component in components:
        component_edges = [edge for edge in kept if edge.tables <= component]
        best = _best_seed_config(
            component,
            component_edges,
            schema,
            estimator,
            partition_count,
            no_redundancy,
            seed_scheme,
        )
        if best is None:
            return None
        config, size, seed = best
        for table, scheme in config:
            combined.add(table, scheme)
        total_size += size
        seeds.append(seed)
    return TreeConfig(
        config=combined,
        estimated_size=total_size,
        seeds=tuple(sorted(seeds)),
        kept_edges=tuple(kept),
        cut_edges=tuple(cut),
    )


def _best_seed_config(
    component: set[str],
    edges: list[GraphEdge],
    schema: DatabaseSchema,
    estimator: RedundancyEstimator,
    partition_count: int,
    no_redundancy: frozenset[str],
    seed_scheme: str = "hash",
) -> tuple[PartitioningConfig, float, str] | None:
    """Listing 1 over one tree: try every node as the seed table."""
    best: tuple[PartitioningConfig, float, str] | None = None
    for seed in sorted(component):
        config = _build_config(
            seed, component, edges, schema, partition_count,
            estimator=estimator, seed_scheme=seed_scheme,
        )
        if not _satisfies_constraints(config, schema, no_redundancy):
            continue
        size = estimator.estimate_database_size(config)
        if best is None or size < best[1]:
            best = (config, size, seed)
    return best


def _build_config(
    seed: str,
    component: set[str],
    edges: list[GraphEdge],
    schema: DatabaseSchema,
    partition_count: int,
    estimator: RedundancyEstimator | None = None,
    seed_scheme: str = "hash",
) -> PartitioningConfig:
    """Seed scheme + recursive PREF along the tree (addPREF)."""
    config = PartitioningConfig(partition_count)
    columns = _seed_columns(seed, edges, schema)
    config.add(
        seed,
        _make_seed_scheme(
            seed_scheme, seed, columns, partition_count, estimator
        ),
    )
    adjacency: dict[str, list[GraphEdge]] = {}
    for edge in edges:
        for table in edge.tables:
            adjacency.setdefault(table, []).append(edge)
    frontier = [seed]
    while frontier:
        referenced = frontier.pop()
        for edge in adjacency.get(referenced, ()):
            referencing = edge.predicate.other_table(referenced)
            if referencing in config:
                continue
            config.add(
                referencing,
                PrefScheme(referenced_table=referenced, predicate=edge.predicate),
            )
            frontier.append(referencing)
    return config


def _make_seed_scheme(
    seed_scheme: str,
    table: str,
    columns: tuple[str, ...],
    partition_count: int,
    estimator: RedundancyEstimator | None,
):
    """Instantiate the requested seed partitioning scheme."""
    if seed_scheme == "hash":
        return HashScheme(columns, partition_count)
    if seed_scheme == "round_robin":
        return RoundRobinScheme(partition_count)
    if seed_scheme == "range":
        if estimator is None:
            raise DesignError("range seeds need data access for boundaries")
        values = sorted(
            estimator.database.table(table).column_values(columns[0])
        )
        if not values:
            raise DesignError(f"table {table!r} is empty; cannot derive ranges")
        boundaries = []
        for index in range(1, partition_count):
            position = min(
                len(values) - 1, index * len(values) // partition_count
            )
            boundaries.append(values[position])
        boundaries = tuple(sorted(set(boundaries)))
        if not boundaries:
            return HashScheme(columns, partition_count)
        return RangeScheme(columns[0], boundaries)
    raise DesignError(f"unknown seed scheme {seed_scheme!r}")


def _seed_columns(
    seed: str, edges: list[GraphEdge], schema: DatabaseSchema
) -> tuple[str, ...]:
    """Seed partitioning attributes: its heaviest incident edge's join key.

    Falls back to the primary key (then the first column) for isolated
    tables.
    """
    incident = [edge for edge in edges if seed in edge.tables]
    if incident:
        heaviest = max(incident, key=lambda e: (e.weight, e.key()))
        return heaviest.predicate.columns_of(seed)
    table = schema.table(seed)
    if table.primary_key:
        return table.primary_key
    return (table.columns[0].name,)


def _satisfies_constraints(
    config: PartitioningConfig,
    schema: DatabaseSchema,
    no_redundancy: frozenset[str],
) -> bool:
    """Structural no-redundancy check (paper Section 3.4 rule).

    A table is redundancy-free iff it is a seed, or it is PREF-partitioned
    referencing a redundancy-free table through a predicate whose
    referenced columns cover that table's primary key (then every tuple
    has at most one partitioning partner, as in classic REF partitioning).
    """
    return all(
        is_redundancy_free(table, config, schema) for table in no_redundancy
        if table in config
    )


def is_redundancy_free(
    table: str,
    config: PartitioningConfig,
    schema: DatabaseSchema,
) -> bool:
    """Whether *table* provably receives no duplicates under *config*."""
    scheme = config.scheme_of(table)
    if not isinstance(scheme, PrefScheme):
        return scheme.kind.value != "replicated"
    referenced = scheme.referenced_table
    referenced_pk = schema.table(referenced).primary_key
    if not referenced_pk:
        return False
    if not set(referenced_pk) <= set(scheme.referenced_columns):
        return False
    return is_redundancy_free(referenced, config, schema)


def _components(
    tables: list[str], edges: Sequence[GraphEdge]
) -> list[set[str]]:
    parent = {table: table for table in tables}

    def find(table: str) -> str:
        while parent[table] != table:
            parent[table] = parent[parent[table]]
            table = parent[table]
        return table

    for edge in edges:
        a, b = sorted(edge.tables)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra
    grouped: dict[str, set[str]] = {}
    for table in tables:
        grouped.setdefault(find(table), set()).add(table)
    return list(grouped.values())
