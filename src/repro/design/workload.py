"""Workload descriptions for the workload-driven design algorithm.

A :class:`QuerySpec` captures what the WD algorithm needs from a query: the
set of equi-join predicates of its (SPJA) query graph.  Specs can be
written by hand or extracted from a logical plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.catalog.schema import DatabaseSchema
from repro.partitioning.predicate import JoinPredicate
from repro.query.plan import Join, JoinKind, PlanNode, Scan


@dataclass(frozen=True)
class QuerySpec:
    """The join graph of one workload query.

    Attributes:
        name: Query identifier (e.g. ``"Q3"``).
        predicates: Equi-join predicates between base tables.
        tables: All base tables the query touches (superset of the tables
            in the predicates; single-table queries have no predicates).
    """

    name: str
    predicates: tuple[JoinPredicate, ...]
    tables: frozenset[str]

    @classmethod
    def make(
        cls,
        name: str,
        predicates: Iterable[JoinPredicate],
        extra_tables: Iterable[str] = (),
    ) -> "QuerySpec":
        """Build a spec from predicates (tables are inferred)."""
        predicates = tuple(predicates)
        tables: set[str] = set(extra_tables)
        for predicate in predicates:
            tables |= predicate.tables
        return cls(name, predicates, frozenset(tables))

    @classmethod
    def from_plan(
        cls, name: str, plan: PlanNode, schema: DatabaseSchema
    ) -> "QuerySpec":
        """Extract the query graph from a logical plan.

        Only equi-join predicates between base-table columns become edges
        (non-equi predicates would cause full redundancy if used for
        co-partitioning, so the paper drops them from the schema graph).
        """
        aliases: dict[str, str] = {}
        for node in plan.walk():
            if isinstance(node, Scan):
                aliases[node.name] = node.table
        predicates: list[JoinPredicate] = []
        for node in plan.walk():
            if not isinstance(node, Join) or not node.on:
                continue
            if node.kind is JoinKind.CROSS:
                continue
            pairs: dict[frozenset[str], list[tuple[str, str, str, str]]] = {}
            for left_ref, right_ref in node.on:
                left = _resolve(left_ref, aliases, schema)
                right = _resolve(right_ref, aliases, schema)
                if left is None or right is None:
                    continue
                (lt, lc), (rt, rc) = left, right
                if lt == rt:
                    continue
                pairs.setdefault(frozenset((lt, rt)), []).append((lt, lc, rt, rc))
            for conjuncts in pairs.values():
                lt = conjuncts[0][0]
                left_cols = tuple(c[1] if c[0] == lt else c[3] for c in conjuncts)
                right_table = conjuncts[0][2] if conjuncts[0][0] == lt else conjuncts[0][0]
                right_cols = tuple(
                    c[3] if c[0] == lt else c[1] for c in conjuncts
                )
                predicates.append(
                    JoinPredicate(lt, left_cols, right_table, right_cols)
                )
        tables = frozenset(aliases.values())
        return cls(name, tuple(predicates), tables)


def _resolve(
    ref: str, aliases: dict[str, str], schema: DatabaseSchema
) -> tuple[str, str] | None:
    """Map a (possibly qualified) column ref to (base table, column)."""
    if "." in ref:
        qualifier, column = ref.split(".", 1)
        table = aliases.get(qualifier)
        if table is None:
            return None
        return (table, column)
    candidates = [
        table
        for table in set(aliases.values())
        if schema.has_table(table) and schema.table(table).has_column(ref)
    ]
    if len(candidates) == 1:
        return (candidates[0], ref)
    return None
