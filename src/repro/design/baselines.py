"""Baseline partitioning designs the paper compares against (Section 5).

* **Classical partitioning (CP)** — the textbook warehouse design: hash
  co-partition the biggest table and its biggest connected table on their
  join key, replicate everything else.
* **All Hashed** — every table hash-partitioned on its primary key
  (maximal parallelism, zero locality).
* **All Replicated** — every table on every node (maximal locality,
  DR = n - 1).
* **Individual stars** — manually split a galaxy schema (TPC-DS) into one
  star per fact table (dimension tables duplicated at the cuts), then
  apply CP or SD per star.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.catalog.schema import DatabaseSchema
from repro.design.graph import SchemaGraph
from repro.design.schema_driven import SchemaDrivenDesigner
from repro.errors import DesignError
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import HashScheme, ReplicatedScheme
from repro.storage.table import Database


def classical_partitioning(
    database: Database,
    partition_count: int,
    exclude: Iterable[str] = (),
) -> PartitioningConfig:
    """CP: co-hash the two biggest connected tables, replicate the rest."""
    schema = database.schema
    sizes = {
        name: size
        for name, size in database.table_sizes().items()
        if name not in set(exclude)
    }
    if not sizes:
        raise DesignError("no tables to partition")
    biggest = max(sizes, key=lambda name: (sizes[name], name))
    partner, predicate = _biggest_connected(schema, sizes, biggest)
    config = PartitioningConfig(partition_count)
    if partner is None:
        config.add(biggest, _pk_hash(schema, biggest, partition_count))
    else:
        config.add(
            biggest,
            HashScheme(predicate.columns_of(biggest), partition_count),
        )
        config.add(
            partner,
            HashScheme(predicate.columns_of(partner), partition_count),
        )
    for table in sorted(sizes):
        if table not in config:
            config.add(table, ReplicatedScheme(partition_count))
    return config


def all_hashed(
    database: Database,
    partition_count: int,
    exclude: Iterable[str] = (),
) -> PartitioningConfig:
    """Every table hash-partitioned on its primary key."""
    config = PartitioningConfig(partition_count)
    for table in database.schema.table_names:
        if table in set(exclude):
            continue
        config.add(table, _pk_hash(database.schema, table, partition_count))
    return config


def all_replicated(
    database: Database,
    partition_count: int,
    exclude: Iterable[str] = (),
) -> PartitioningConfig:
    """Every table fully replicated."""
    config = PartitioningConfig(partition_count)
    for table in database.schema.table_names:
        if table in set(exclude):
            continue
        config.add(table, ReplicatedScheme(partition_count))
    return config


@dataclass
class StarDesign:
    """A multi-star design: one configuration per fact-table star.

    Dimension tables shared between stars exist once per star whose scheme
    differs (the paper's "duplicate dimension tables at the cut").
    """

    stars: dict[str, PartitioningConfig]
    star_tables: dict[str, frozenset[str]]

    def combined_data_locality(self, graph: SchemaGraph) -> float:
        """DL over the global graph; an edge counts if any star covers it."""
        satisfied = []
        for fact, config in self.stars.items():
            star_graph = graph.subgraph(self.star_tables[fact])
            from repro.design.locality import satisfied_edges

            satisfied.extend(satisfied_edges(star_graph, config))
        from repro.design.graph import data_locality

        return data_locality(graph, satisfied)


def split_into_stars(
    schema: DatabaseSchema,
    fact_tables: Iterable[str],
) -> dict[str, frozenset[str]]:
    """Star membership: each fact plus every table reachable from it via
    outgoing foreign keys (its dimensions, possibly snowflaked)."""
    stars: dict[str, frozenset[str]] = {}
    for fact in fact_tables:
        members = {fact}
        frontier = [fact]
        while frontier:
            current = frontier.pop()
            for fk in schema.foreign_keys_of(current):
                if fk.source_table == current and fk.target_table not in members:
                    members.add(fk.target_table)
                    frontier.append(fk.target_table)
        stars[fact] = frozenset(members)
    return stars


def classical_individual_stars(
    database: Database,
    partition_count: int,
    fact_tables: Iterable[str],
    exclude: Iterable[str] = (),
) -> StarDesign:
    """CP applied per star (paper's CP Individual Stars variant)."""
    stars = split_into_stars(database.schema, fact_tables)
    excluded = set(exclude)
    configs: dict[str, PartitioningConfig] = {}
    members: dict[str, frozenset[str]] = {}
    for fact, tables in stars.items():
        keep = tables - excluded
        star_db = _restricted_database(database, keep)
        configs[fact] = classical_partitioning(star_db, partition_count)
        members[fact] = frozenset(keep)
    return StarDesign(configs, members)


def sd_individual_stars(
    database: Database,
    partition_count: int,
    fact_tables: Iterable[str],
    exclude: Iterable[str] = (),
    sampling_rate: float = 1.0,
) -> StarDesign:
    """SD applied per star (paper's SD Individual Stars variant)."""
    stars = split_into_stars(database.schema, fact_tables)
    excluded = set(exclude)
    configs: dict[str, PartitioningConfig] = {}
    members: dict[str, frozenset[str]] = {}
    for fact, tables in stars.items():
        keep = tables - excluded
        star_db = _restricted_database(database, keep)
        designer = SchemaDrivenDesigner(
            star_db, partition_count, sampling_rate=sampling_rate
        )
        configs[fact] = designer.design().config
        members[fact] = frozenset(keep)
    return StarDesign(configs, members)


def _pk_hash(
    schema: DatabaseSchema, table: str, partition_count: int
) -> HashScheme:
    table_schema = schema.table(table)
    columns = table_schema.primary_key or (table_schema.columns[0].name,)
    return HashScheme(tuple(columns), partition_count)


def _biggest_connected(
    schema: DatabaseSchema,
    sizes: Mapping[str, int],
    biggest: str,
):
    """The biggest table connected to *biggest* via a foreign key."""
    best = None
    best_predicate = None
    for fk in schema.foreign_keys_of(biggest):
        other = (
            fk.target_table if fk.source_table == biggest else fk.source_table
        )
        if other not in sizes:
            continue
        if best is None or sizes[other] > sizes[best]:
            best = other
            from repro.partitioning.predicate import JoinPredicate

            best_predicate = JoinPredicate(
                fk.source_table,
                fk.source_columns,
                fk.target_table,
                fk.target_columns,
            )
    return best, best_predicate


def _restricted_database(database: Database, tables: frozenset[str]) -> Database:
    """A view of *database* restricted to *tables* (rows shared, not copied)."""
    restricted_schema = database.schema.restricted_to(tables)
    restricted = Database(restricted_schema)
    for table in tables:
        restricted._tables[table] = database.table(table)
    return restricted
