"""Automated partitioning design: schema graphs, MAST, SD and WD algorithms."""

from repro.design.baselines import (
    StarDesign,
    all_hashed,
    all_replicated,
    classical_individual_stars,
    classical_partitioning,
    sd_individual_stars,
    split_into_stars,
)
from repro.design.configurator import TreeConfig, find_optimal_config, is_redundancy_free
from repro.design.estimator import (
    RedundancyEstimator,
    expected_copies,
    expected_copies_closed_form,
    stirling2,
)
from repro.design.graph import GraphEdge, SchemaGraph, data_locality
from repro.design.locality import (
    config_data_locality,
    edge_satisfied,
    satisfied_edges,
)
from repro.design.schema_driven import DesignResult, SchemaDrivenDesigner
from repro.design.spanning import (
    enumerate_maximum_spanning_forests,
    maximum_spanning_forest,
)
from repro.design.workload import QuerySpec
from repro.design.workload_driven import (
    Fragment,
    WorkloadDesignResult,
    WorkloadDrivenDesigner,
)

__all__ = [
    "DesignResult",
    "Fragment",
    "GraphEdge",
    "QuerySpec",
    "RedundancyEstimator",
    "SchemaDrivenDesigner",
    "SchemaGraph",
    "StarDesign",
    "TreeConfig",
    "WorkloadDesignResult",
    "WorkloadDrivenDesigner",
    "all_hashed",
    "all_replicated",
    "classical_individual_stars",
    "classical_partitioning",
    "config_data_locality",
    "data_locality",
    "edge_satisfied",
    "enumerate_maximum_spanning_forests",
    "expected_copies",
    "expected_copies_closed_form",
    "find_optimal_config",
    "is_redundancy_free",
    "maximum_spanning_forest",
    "satisfied_edges",
    "sd_individual_stars",
    "split_into_stars",
    "stirling2",
]
