"""Schema graphs (paper Sections 3.1 and 4.2).

A schema graph ``GS = (N, E, l, w)`` has one node per table, one edge per
potential co-partitioning join (a referential constraint for the
schema-driven algorithm, an equi-join predicate of a query for the
workload-driven one).  Edge labels are the join predicates; edge weights
are the network cost of a remote join over the edge, approximated by the
size of the smaller incident table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.catalog.schema import DatabaseSchema
from repro.errors import DesignError
from repro.partitioning.predicate import JoinPredicate


@dataclass(frozen=True)
class GraphEdge:
    """An edge of a schema graph: a join predicate plus its weight."""

    predicate: JoinPredicate
    weight: int

    @property
    def tables(self) -> frozenset[str]:
        """The two tables the edge connects."""
        return self.predicate.tables

    def key(self) -> tuple:
        """Identity of the edge irrespective of predicate orientation."""
        normalised = self.predicate.normalised()
        return (
            normalised.left_table,
            normalised.left_columns,
            normalised.right_table,
            normalised.right_columns,
        )

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.predicate} (w={self.weight})"


class SchemaGraph:
    """An undirected, labeled, weighted graph over tables."""

    def __init__(
        self,
        sizes: Mapping[str, int],
        edges: Iterable[GraphEdge] = (),
    ) -> None:
        self.sizes: dict[str, int] = dict(sizes)
        self.edges: list[GraphEdge] = []
        self._edge_keys: set[tuple] = set()
        for edge in edges:
            self.add_edge(edge)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_schema(
        cls,
        schema: DatabaseSchema,
        sizes: Mapping[str, int],
        exclude: Iterable[str] = (),
    ) -> "SchemaGraph":
        """Build the SD schema graph from referential constraints.

        Args:
            schema: Database schema whose foreign keys become edges.
            sizes: Table row counts (weights use the smaller side).
            exclude: Tables to leave out (e.g. small replicated tables).
        """
        excluded = set(exclude)
        graph = cls(
            {name: sizes[name] for name in schema.table_names if name not in excluded}
        )
        for fk in schema.foreign_keys:
            if fk.source_table in excluded or fk.target_table in excluded:
                continue
            predicate = JoinPredicate(
                fk.source_table,
                fk.source_columns,
                fk.target_table,
                fk.target_columns,
            )
            weight = min(sizes[fk.source_table], sizes[fk.target_table])
            graph.add_edge(GraphEdge(predicate, weight))
        return graph

    @classmethod
    def from_predicates(
        cls,
        predicates: Iterable[JoinPredicate],
        sizes: Mapping[str, int],
    ) -> "SchemaGraph":
        """Build a per-query schema graph from its equi-join predicates."""
        predicates = list(predicates)
        tables: set[str] = set()
        for predicate in predicates:
            tables |= predicate.tables
        missing = tables - set(sizes)
        if missing:
            raise DesignError(f"no size known for tables {sorted(missing)}")
        graph = cls({table: sizes[table] for table in tables})
        for predicate in predicates:
            weight = min(sizes[t] for t in predicate.tables)
            graph.add_edge(GraphEdge(predicate, weight))
        return graph

    def add_node(self, table: str, size: int) -> None:
        """Add an isolated node."""
        self.sizes.setdefault(table, size)

    def add_edge(self, edge: GraphEdge) -> None:
        """Add an edge (duplicate predicates are collapsed)."""
        for table in edge.tables:
            if table not in self.sizes:
                raise DesignError(f"edge references unknown table {table!r}")
        if edge.key() in self._edge_keys:
            return
        self._edge_keys.add(edge.key())
        self.edges.append(edge)

    # -- structure -----------------------------------------------------------------

    @property
    def tables(self) -> tuple[str, ...]:
        """All tables in the graph (including isolated ones)."""
        return tuple(self.sizes)

    def total_weight(self) -> int:
        """Sum of all edge weights (the DL denominator)."""
        return sum(edge.weight for edge in self.edges)

    def edges_of(self, table: str) -> list[GraphEdge]:
        """Edges incident to *table*."""
        return [edge for edge in self.edges if table in edge.tables]

    def connected_components(self) -> list[set[str]]:
        """Connected components over tables (isolated nodes included)."""
        parent = {table: table for table in self.sizes}

        def find(table: str) -> str:
            root = table
            while parent[root] != root:
                root = parent[root]
            while parent[table] != root:
                parent[table], table = root, parent[table]
            return root

        for edge in self.edges:
            a, b = sorted(edge.tables)
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra
        components: dict[str, set[str]] = {}
        for table in self.sizes:
            components.setdefault(find(table), set()).add(table)
        return list(components.values())

    def subgraph(self, tables: Iterable[str]) -> "SchemaGraph":
        """The induced subgraph over *tables*."""
        keep = set(tables)
        return SchemaGraph(
            {table: size for table, size in self.sizes.items() if table in keep},
            (edge for edge in self.edges if edge.tables <= keep),
        )

    def merged_with(self, other: "SchemaGraph") -> "SchemaGraph":
        """Union of nodes and edges (the WD merge step)."""
        sizes = dict(self.sizes)
        sizes.update(other.sizes)
        merged = SchemaGraph(sizes)
        for edge in self.edges:
            merged.add_edge(edge)
        for edge in other.edges:
            merged.add_edge(edge)
        return merged

    def contains(self, other: "SchemaGraph") -> bool:
        """True if *other*'s nodes and edges are all present here."""
        if not set(other.sizes) <= set(self.sizes):
            return False
        return other._edge_keys <= self._edge_keys

    def is_acyclic(self) -> bool:
        """True if the graph is a forest."""
        parent = {table: table for table in self.sizes}

        def find(table: str) -> str:
            while parent[table] != table:
                parent[table] = parent[parent[table]]
                table = parent[table]
            return table

        for edge in self.edges:
            a, b = sorted(edge.tables)
            ra, rb = find(a), find(b)
            if ra == rb:
                return False
            parent[rb] = ra
        return True

    def __iter__(self) -> Iterator[GraphEdge]:
        return iter(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"SchemaGraph({len(self.sizes)} tables, {len(self.edges)} edges)"


def data_locality(graph: SchemaGraph, satisfied: Iterable[GraphEdge]) -> float:
    """DL = sum of satisfied edge weights / sum of all edge weights.

    Paper Section 3.2.  ``satisfied`` is the set of edges whose joins
    execute locally (co-partitioned edges plus edges incident to
    replicated tables).
    """
    total = graph.total_weight()
    if total == 0:
        return 1.0
    satisfied_keys = {edge.key() for edge in satisfied}
    covered = sum(
        edge.weight for edge in graph.edges if edge.key() in satisfied_keys
    )
    return covered / total
