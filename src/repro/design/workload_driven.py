"""The workload-driven (WD) automated partitioning design (paper Section 4).

Pipeline:

1. Build a schema graph per query (its equi-join graph) and extract the
   maximum spanning tree per connected component, maximising per-query
   data-locality.
2. **Containment merge** (first phase): a component whose MAST is fully
   contained in another's is absorbed — this shrinks the search space
   (TPC-DS: 165 components -> a few dozen).
3. **Cost-based merge** (second phase): dynamic programming over merge
   configurations.  Two MASTs merge only if the union stays acyclic (so no
   query loses locality) and the estimated size of the merged partitioned
   database is smaller than the sum of the individual ones.

The result is a set of *fragments* (merged MASTs), each with its own
optimal partitioning configuration; a query is routed to the fragment that
contains its tables.  Tables appearing in several fragments with different
schemes are stored once per scheme (the paper's per-query databases);
identical schemes are shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.design.configurator import TreeConfig, find_optimal_config
from repro.design.estimator import RedundancyEstimator
from repro.design.graph import GraphEdge, SchemaGraph
from repro.design.spanning import maximum_spanning_forest
from repro.errors import DesignError
from repro.partitioning.config import PartitioningConfig
from repro.design.workload import QuerySpec
from repro.storage.table import Database


@dataclass
class Fragment:
    """One merged MAST with its optimal configuration."""

    name: str
    tables: frozenset[str]
    edges: tuple[GraphEdge, ...]
    config: PartitioningConfig
    seeds: tuple[str, ...]
    estimated_size: float
    queries: tuple[str, ...]


@dataclass
class WorkloadDesignResult:
    """Outcome of the WD algorithm.

    Attributes:
        fragments: The merged MASTs with their configurations.
        replicated: Small tables replicated everywhere (kept out of the
            fragments, available to every query).
        data_locality: Weighted per-query data-locality (1.0 unless some
            query graph was cyclic and lost an edge to its MAST).
        estimated_size: Estimated stored rows over all fragments, counting
            tables shared by identical schemes only once.
        estimated_redundancy: Estimated DR against the union of the tables
            used by the workload.
        components_initial: Query-graph components before merging.
        components_after_containment: After the first merge phase.
    """

    fragments: tuple[Fragment, ...]
    replicated: tuple[str, ...]
    data_locality: float
    estimated_size: float
    estimated_redundancy: float
    components_initial: int
    components_after_containment: int

    def fragment_for(self, query: str) -> Fragment:
        """The fragment a query is routed to."""
        for fragment in self.fragments:
            if query in fragment.queries:
                return fragment
        raise DesignError(f"query {query!r} is not covered by any fragment")


class _Unit:
    """A mergeable unit: a forest of query-graph MAST edges."""

    __slots__ = ("tables", "edges", "queries", "evaluation")

    def __init__(
        self,
        tables: frozenset[str],
        edges: tuple[GraphEdge, ...],
        queries: tuple[str, ...],
    ) -> None:
        self.tables = tables
        self.edges = edges
        self.queries = queries
        self.evaluation: TreeConfig | None = None

    def edge_keys(self) -> frozenset:
        return frozenset(edge.key() for edge in self.edges)

    def merged_with(self, other: "_Unit") -> "_Unit":
        seen = set()
        edges = []
        for edge in self.edges + other.edges:
            if edge.key() not in seen:
                seen.add(edge.key())
                edges.append(edge)
        return _Unit(
            self.tables | other.tables,
            tuple(edges),
            tuple(dict.fromkeys(self.queries + other.queries)),
        )

    def is_acyclic(self) -> bool:
        graph = SchemaGraph({t: 1 for t in self.tables}, self.edges)
        return graph.is_acyclic()

    def contains(self, other: "_Unit") -> bool:
        return (
            other.tables <= self.tables
            and other.edge_keys() <= self.edge_keys()
        )


class WorkloadDrivenDesigner:
    """Runs the WD algorithm against one database and workload."""

    def __init__(
        self,
        database: Database,
        partition_count: int,
        sampling_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.database = database
        self.partition_count = partition_count
        self.estimator = RedundancyEstimator(
            database, partition_count, sampling_rate=sampling_rate, seed=seed
        )
        self._eval_cache: dict[frozenset, TreeConfig] = {}

    # -- public API -----------------------------------------------------------

    def design(
        self,
        workload: Sequence[QuerySpec],
        replicate: Iterable[str] = (),
        no_redundancy: Iterable[str] = (),
    ) -> WorkloadDesignResult:
        """Run the WD algorithm over *workload*.

        Args:
            workload: Query specs (join graphs) of the workload.
            replicate: Small tables to replicate instead of partitioning
                (their join edges are dropped from the query graphs).
            no_redundancy: Tables that must not receive duplicates.

        Returns:
            A :class:`WorkloadDesignResult` with one fragment per merged
            MAST.
        """
        replicate = set(replicate)
        no_redundancy_set = frozenset(no_redundancy)
        sizes = self.database.table_sizes()

        units, total_weight, kept_weight = self._initial_units(
            workload, replicate, sizes
        )
        initial_count = len(units)
        units = self._containment_merge(units)
        containment_count = len(units)
        units = self._cost_based_merge(units, no_redundancy_set)

        fragments = []
        for index, unit in enumerate(units):
            evaluation = self._evaluate(unit, no_redundancy_set)
            fragments.append(
                Fragment(
                    name=f"fragment_{index}",
                    tables=unit.tables,
                    edges=unit.edges,
                    config=evaluation.config,
                    seeds=evaluation.seeds,
                    estimated_size=evaluation.estimated_size,
                    queries=unit.queries,
                )
            )
        estimated_size = self._shared_size(fragments)
        base_rows = sum(
            self.database.table(t).row_count
            for t in {t for f in fragments for t in f.tables}
        )
        return WorkloadDesignResult(
            fragments=tuple(fragments),
            replicated=tuple(sorted(replicate)),
            data_locality=(kept_weight / total_weight) if total_weight else 1.0,
            estimated_size=estimated_size,
            estimated_redundancy=(
                estimated_size / base_rows - 1.0 if base_rows else 0.0
            ),
            components_initial=initial_count,
            components_after_containment=containment_count,
        )

    # -- phase 0: per-query MASTs -------------------------------------------------

    def _initial_units(
        self,
        workload: Sequence[QuerySpec],
        replicate: set[str],
        sizes: Mapping[str, int],
    ) -> tuple[list[_Unit], float, float]:
        units: list[_Unit] = []
        total_weight = 0.0
        kept_weight = 0.0
        for spec in workload:
            predicates = [
                p
                for p in spec.predicates
                if not (p.tables & replicate)
            ]
            if not predicates:
                continue
            graph = SchemaGraph.from_predicates(predicates, sizes)
            total_weight += graph.total_weight()
            mast = maximum_spanning_forest(graph)
            kept_weight += sum(edge.weight for edge in mast)
            for component in graph.connected_components():
                edges = tuple(
                    edge for edge in mast if edge.tables <= component
                )
                if not edges:
                    continue
                units.append(
                    _Unit(frozenset(component), edges, (spec.name,))
                )
        return units, total_weight, kept_weight

    # -- phase 1: containment merge --------------------------------------------------

    def _containment_merge(self, units: list[_Unit]) -> list[_Unit]:
        # Largest first so containers absorb their containees.
        ordered = sorted(units, key=lambda u: (-len(u.edges), u.queries))
        merged: list[_Unit] = []
        for unit in ordered:
            container = next(
                (kept for kept in merged if kept.contains(unit)), None
            )
            if container is not None:
                container.queries = tuple(
                    dict.fromkeys(container.queries + unit.queries)
                )
            else:
                merged.append(unit)
        return merged

    # -- phase 2: cost-based DP merge ---------------------------------------------------

    def _cost_based_merge(
        self,
        units: list[_Unit],
        no_redundancy: frozenset[str],
    ) -> list[_Unit]:
        """Dynamic programming over merge configurations (paper Section 4.3).

        Level l extends the optimal configuration for the first l-1 units
        with unit l: either standalone, or merged into one existing
        expression (when the union is acyclic and shrinks the estimated
        size).  Estimated sizes are memoised by edge set.
        """
        ordered = sorted(
            units, key=lambda u: (-sum(e.weight for e in u.edges), u.queries)
        )
        best: list[_Unit] = []
        for unit in ordered:
            candidates: list[list[_Unit]] = [best + [unit]]
            for index, expression in enumerate(best):
                merged = expression.merged_with(unit)
                if not merged.is_acyclic():
                    continue
                merged_size = self._evaluate(merged, no_redundancy, tolerant=True)
                if merged_size is None:
                    continue
                separate = (
                    self._evaluate(expression, no_redundancy).estimated_size
                    + self._evaluate(unit, no_redundancy).estimated_size
                )
                if merged_size.estimated_size < separate:
                    candidates.append(
                        best[:index] + [merged] + best[index + 1 :]
                    )
            best = min(candidates, key=lambda c: self._total_size(c, no_redundancy))
        return self._pairwise_fixpoint(best, no_redundancy)

    def _pairwise_fixpoint(
        self,
        units: list[_Unit],
        no_redundancy: frozenset[str],
    ) -> list[_Unit]:
        """Keep merging the best beneficial pair until none remains.

        The level-wise DP only considers merging each new unit into one
        existing expression; a final pairwise pass recovers merges that
        only become beneficial (or acyclic) later.
        """
        improved = True
        while improved and len(units) > 1:
            improved = False
            best_gain = 0.0
            best_pair: tuple[int, int, _Unit] | None = None
            for i in range(len(units)):
                for j in range(i + 1, len(units)):
                    merged = units[i].merged_with(units[j])
                    if not merged.is_acyclic():
                        continue
                    evaluation = self._evaluate(merged, no_redundancy, tolerant=True)
                    if evaluation is None:
                        continue
                    separate = (
                        self._evaluate(units[i], no_redundancy).estimated_size
                        + self._evaluate(units[j], no_redundancy).estimated_size
                    )
                    gain = separate - evaluation.estimated_size
                    if gain > best_gain:
                        best_gain = gain
                        best_pair = (i, j, merged)
            if best_pair is not None:
                i, j, merged = best_pair
                units = [
                    unit for k, unit in enumerate(units) if k not in (i, j)
                ] + [merged]
                improved = True
        return units

    def _total_size(
        self, units: list[_Unit], no_redundancy: frozenset[str]
    ) -> float:
        return sum(
            self._evaluate(unit, no_redundancy).estimated_size for unit in units
        )

    def _evaluate(
        self,
        unit: _Unit,
        no_redundancy: frozenset[str],
        tolerant: bool = False,
    ) -> TreeConfig | None:
        """Optimal configuration for one unit (memoised by edge set)."""
        key = unit.edge_keys() | {("tables", tuple(sorted(unit.tables)))}
        key = frozenset(key)
        cached = self._eval_cache.get(key)
        if cached is not None:
            return cached
        try:
            evaluation = find_optimal_config(
                unit.edges,
                unit.tables,
                self.database.schema,
                self.estimator,
                self.partition_count,
                no_redundancy=no_redundancy & unit.tables,
            )
        except DesignError:
            if tolerant:
                return None
            raise
        if unit.evaluation is None:
            unit.evaluation = evaluation
        self._eval_cache[key] = evaluation
        return evaluation

    # -- sizes with scheme sharing ---------------------------------------------------------

    def _shared_size(self, fragments: list[Fragment]) -> float:
        """Total stored rows, sharing tables with identical schemes."""
        seen: set[tuple] = set()
        total = 0.0
        for fragment in fragments:
            for table in fragment.config.tables:
                signature = (table, _scheme_signature(fragment.config, table))
                if signature in seen:
                    continue
                seen.add(signature)
                total += self.estimator.estimate_table_size(
                    table, fragment.config
                )
        return total


def route_to_config(
    tables: frozenset[str] | set[str],
    configs: Sequence[PartitioningConfig],
    estimator: "RedundancyEstimator",
    replicated: Iterable[str] = (),
) -> int | None:
    """Pick the configuration covering *tables* with minimal redundancy.

    The paper routes a query "to the MAST which contains the query and
    which has minimal data-redundancy for all tables read by that query".
    Returns the config index, or None if no configuration covers all
    non-replicated tables.
    """
    needed = set(tables) - set(replicated)
    if not needed:
        return 0 if configs else None
    best: tuple[float, int] | None = None
    for index, config in enumerate(configs):
        if not all(table in config for table in needed):
            continue
        size = sum(
            estimator.estimate_table_size(table, config) for table in needed
        )
        if best is None or size < best[0]:
            best = (size, index)
    return best[1] if best is not None else None


def _scheme_signature(config: PartitioningConfig, table: str) -> tuple:
    """Hashable identity of a table's scheme including its PREF chain."""
    chain = tuple(
        (referenced, predicate.normalised())
        for referenced, predicate in config.chain_to_seed(table)
    )
    scheme = config.scheme_of(table)
    return (scheme.kind.value, getattr(scheme, "columns", ()), chain)
