"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subclasses are grouped by the
subsystem that raises them (catalog, storage, partitioning, query, SQL,
design) to make targeted handling possible without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CatalogError(ReproError):
    """A schema, column, or constraint definition is invalid or unknown."""


class DuplicateObjectError(CatalogError):
    """An object (table, column, constraint) with this name already exists."""


class UnknownObjectError(CatalogError):
    """A referenced object (table, column, constraint) does not exist."""


class StorageError(ReproError):
    """A table or partition store was used inconsistently."""


class RowShapeError(StorageError):
    """A row does not match the arity or types of its table schema."""


class PartitioningError(ReproError):
    """A partitioning scheme or configuration is invalid or inapplicable."""


class InvalidConfigurationError(PartitioningError):
    """A partitioning configuration is structurally invalid.

    Raised for cyclic PREF chains, PREF references to unpartitioned or
    unknown tables, or mismatched partition counts.
    """


class BulkLoadError(PartitioningError):
    """A bulk-load batch could not be applied to a partitioned table."""


class QueryError(ReproError):
    """A logical plan is malformed or cannot be executed."""


class PlanningError(QueryError):
    """A plan references unknown tables/columns or has inconsistent shape."""


class ExecutionError(QueryError):
    """A runtime failure while executing a (distributed) plan."""


class SqlError(ReproError):
    """The SQL front end rejected a statement."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenised or parsed."""


class DesignError(ReproError):
    """An automated partitioning-design algorithm received invalid input."""


class ServeError(ReproError):
    """The concurrent query-serving layer rejected or failed a request."""


class AdmissionError(ServeError):
    """Admission control refused the query (queue full or server closed)."""


class QueryTimeoutError(ServeError):
    """The query exceeded its admission deadline before a worker ran it."""
