"""Benchmark workloads: TPC-H (uniform) and TPC-DS (skewed)."""
