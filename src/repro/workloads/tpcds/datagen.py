"""A dsdgen-like TPC-DS data generator with Zipf-skewed foreign keys.

The paper chose TPC-DS as "a complex schema with skewed data"; here the
skew is explicit: fact-table references to item, customer and the
demographics dimensions follow a Zipf distribution, so join-key histograms
are heavy-tailed (which is what makes the sampled redundancy estimates of
Figure 13 noticeably worse on TPC-DS than on uniform TPC-H).
"""

from __future__ import annotations

import bisect
import itertools
import random

from repro.storage.table import Database
from repro.workloads.tpcds.schema import BASE_ROWS, tpcds_schema

ZIPF_EXPONENT = 1.05


class ZipfSampler:
    """Draws 1..n with probability proportional to 1/rank^a (seeded)."""

    def __init__(self, n: int, rng: random.Random, a: float = ZIPF_EXPONENT) -> None:
        weights = [1.0 / (rank**a) for rank in range(1, n + 1)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        self._rng = rng
        # Shuffle the rank->key mapping so popular keys are spread out.
        self._keys = list(range(1, n + 1))
        rng.shuffle(self._keys)

    def sample(self) -> int:
        point = self._rng.random() * self._total
        rank = bisect.bisect_left(self._cumulative, point)
        return self._keys[min(rank, len(self._keys) - 1)]


def scaled_rows(scale_factor: float) -> dict[str, int]:
    """Row counts for *scale_factor* (all tables scale, preserving ratios)."""
    return {
        table: max(3, int(base * scale_factor)) for table, base in BASE_ROWS.items()
    }


def generate_tpcds(scale_factor: float = 0.001, seed: int = 0) -> Database:
    """Generate a skewed TPC-DS database (deterministic per seed)."""
    rng = random.Random(seed)
    counts = scaled_rows(scale_factor)
    database = Database(tpcds_schema())

    # -- dimensions ------------------------------------------------------------
    def load_dim(name: str, attrs: int) -> int:
        count = counts[name]
        rows = [
            (key,) + tuple(f"{name[:4]}_{key}_{i}" for i in range(attrs))
            for key in range(1, count + 1)
        ]
        database.load(name, rows)
        return count

    n_date = load_dim("date_dim", 3)
    n_time = load_dim("time_dim", 2)
    n_item = load_dim("item", 3)
    n_store = load_dim("store", 2)
    load_dim("call_center", 1)
    load_dim("catalog_page", 1)
    load_dim("web_site", 1)
    load_dim("web_page", 1)
    n_warehouse = load_dim("warehouse", 2)
    load_dim("promotion", 1)
    load_dim("reason", 1)
    load_dim("ship_mode", 1)
    n_income = load_dim("income_band", 1)
    n_addr = load_dim("customer_address", 2)
    n_cdemo = load_dim("customer_demographics", 3)

    n_hdemo = counts["household_demographics"]
    database.load(
        "household_demographics",
        [
            (
                key,
                1 + rng.randrange(n_income),
                rng.choice(("1001-5000", "501-1000", ">10000", "Unknown")),
                rng.randrange(10),
            )
            for key in range(1, n_hdemo + 1)
        ],
    )

    n_customer = counts["customer"]
    database.load(
        "customer",
        [
            (
                key,
                1 + rng.randrange(n_cdemo),
                1 + rng.randrange(n_hdemo),
                1 + rng.randrange(n_addr),
                f"Customer_{key}",
            )
            for key in range(1, n_customer + 1)
        ],
    )

    # -- skew samplers ------------------------------------------------------------
    item_zipf = ZipfSampler(n_item, rng)
    customer_zipf = ZipfSampler(n_customer, rng)
    cdemo_zipf = ZipfSampler(n_cdemo, rng)
    hdemo_zipf = ZipfSampler(n_hdemo, rng)
    addr_zipf = ZipfSampler(n_addr, rng)

    sizes = {
        name: counts[name]
        for name in (
            "call_center",
            "catalog_page",
            "web_site",
            "web_page",
            "promotion",
            "reason",
            "ship_mode",
        )
    }

    def udim(name: str) -> int:
        return 1 + rng.randrange(sizes[name])

    # -- store channel ---------------------------------------------------------------
    store_sales = []
    ss_keys = []
    ticket = 0
    remaining = counts["store_sales"]
    while remaining > 0:
        ticket += 1
        lines = min(remaining, 1 + rng.randrange(12))
        # Kept for RNG-stream stability: datasets are deterministic per seed.
        _items = rng.sample(range(1, n_item + 1), min(lines, n_item))
        for _line in range(lines):
            item = item_zipf.sample()
            store_sales.append(
                (
                    1 + rng.randrange(n_date),
                    1 + rng.randrange(n_time),
                    item,
                    customer_zipf.sample(),
                    cdemo_zipf.sample(),
                    hdemo_zipf.sample(),
                    addr_zipf.sample(),
                    1 + rng.randrange(n_store),
                    udim("promotion"),
                    ticket,
                    1 + rng.randrange(100),
                    round(rng.uniform(1.0, 300.0), 2),
                )
            )
        remaining -= lines
    # Deduplicate (ticket, item) collisions to respect the primary key.
    seen_ss = set()
    unique_ss = []
    for row in store_sales:
        key = (row[9], row[2])
        if key not in seen_ss:
            seen_ss.add(key)
            unique_ss.append(row)
            ss_keys.append(key)
    database.load("store_sales", unique_ss)

    returns = []
    seen_sr = set()
    for _ in range(counts["store_returns"]):
        ticket_number, item = rng.choice(ss_keys)
        if (ticket_number, item) in seen_sr:
            continue
        seen_sr.add((ticket_number, item))
        returns.append(
            (
                1 + rng.randrange(n_date),
                item,
                customer_zipf.sample(),
                cdemo_zipf.sample(),
                1 + rng.randrange(n_store),
                udim("reason"),
                ticket_number,
                round(rng.uniform(1.0, 300.0), 2),
            )
        )
    database.load("store_returns", returns)

    # -- catalog channel -------------------------------------------------------------
    catalog_sales = []
    cs_keys = []
    seen_cs = set()
    order = 0
    remaining = counts["catalog_sales"]
    while remaining > 0:
        order += 1
        lines = min(remaining, 1 + rng.randrange(10))
        for _line in range(lines):
            item = item_zipf.sample()
            if (order, item) in seen_cs:
                continue
            seen_cs.add((order, item))
            catalog_sales.append(
                (
                    1 + rng.randrange(n_date),
                    1 + rng.randrange(n_time),
                    item,
                    customer_zipf.sample(),
                    cdemo_zipf.sample(),
                    hdemo_zipf.sample(),
                    addr_zipf.sample(),
                    udim("call_center"),
                    udim("catalog_page"),
                    udim("ship_mode"),
                    1 + rng.randrange(n_warehouse),
                    udim("promotion"),
                    order,
                    1 + rng.randrange(100),
                    round(rng.uniform(1.0, 300.0), 2),
                )
            )
            cs_keys.append((order, item))
        remaining -= lines
    database.load("catalog_sales", catalog_sales)

    seen_cr = set()
    catalog_returns = []
    for _ in range(counts["catalog_returns"]):
        order_number, item = rng.choice(cs_keys)
        if (order_number, item) in seen_cr:
            continue
        seen_cr.add((order_number, item))
        catalog_returns.append(
            (
                1 + rng.randrange(n_date),
                item,
                customer_zipf.sample(),
                udim("call_center"),
                udim("reason"),
                order_number,
                round(rng.uniform(1.0, 300.0), 2),
            )
        )
    database.load("catalog_returns", catalog_returns)

    # -- web channel ------------------------------------------------------------------
    web_sales = []
    ws_keys = []
    seen_ws = set()
    order = 0
    remaining = counts["web_sales"]
    while remaining > 0:
        order += 1
        lines = min(remaining, 1 + rng.randrange(8))
        for _line in range(lines):
            item = item_zipf.sample()
            if (order, item) in seen_ws:
                continue
            seen_ws.add((order, item))
            web_sales.append(
                (
                    1 + rng.randrange(n_date),
                    1 + rng.randrange(n_time),
                    item,
                    customer_zipf.sample(),
                    addr_zipf.sample(),
                    hdemo_zipf.sample(),
                    udim("web_site"),
                    udim("web_page"),
                    udim("ship_mode"),
                    1 + rng.randrange(n_warehouse),
                    udim("promotion"),
                    order,
                    1 + rng.randrange(100),
                    round(rng.uniform(1.0, 300.0), 2),
                )
            )
            ws_keys.append((order, item))
        remaining -= lines
    database.load("web_sales", web_sales)

    seen_wr = set()
    web_returns = []
    for _ in range(counts["web_returns"]):
        order_number, item = rng.choice(ws_keys)
        if (order_number, item) in seen_wr:
            continue
        seen_wr.add((order_number, item))
        web_returns.append(
            (
                1 + rng.randrange(n_date),
                item,
                customer_zipf.sample(),
                cdemo_zipf.sample(),
                addr_zipf.sample(),
                udim("reason"),
                udim("web_page"),
                order_number,
                round(rng.uniform(1.0, 300.0), 2),
            )
        )
    database.load("web_returns", web_returns)

    # -- inventory -------------------------------------------------------------------
    # The (date, item, warehouse) key space shrinks cubically at small
    # scale factors; cap the target so generation terminates and the key
    # constraint stays satisfiable.
    key_space = n_date * n_item * n_warehouse
    inventory_target = min(counts["inventory"], int(0.6 * key_space))
    seen_inv = set()
    inventory = []
    for _ in range(inventory_target):
        key = (
            1 + rng.randrange(n_date),
            item_zipf.sample(),
            1 + rng.randrange(n_warehouse),
        )
        if key in seen_inv:
            continue
        seen_inv.add(key)
        inventory.append(key + (rng.randrange(1000),))
    database.load("inventory", inventory)
    return database
