"""Join graphs of the 99 TPC-DS queries.

Each query is described by the set of equi-join edges its SPJA blocks use —
exactly the input the workload-driven design algorithm consumes (paper
Section 4).  The edge sets follow the table usage of the official TPC-DS
query set; correlated sub-queries are flattened into their join edges, and
pure single-table queries contribute no edges (they do not constrain the
partitioning design).
"""

from __future__ import annotations

from repro.design.workload import QuerySpec
from repro.partitioning.predicate import JoinPredicate

#: Shorthand -> join predicate between two TPC-DS tables.
EDGES: dict[str, JoinPredicate] = {
    # store_sales
    "ss_d": JoinPredicate.equi("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
    "ss_t": JoinPredicate.equi("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk"),
    "ss_i": JoinPredicate.equi("store_sales", "ss_item_sk", "item", "i_item_sk"),
    "ss_c": JoinPredicate.equi("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
    "ss_cd": JoinPredicate.equi("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk"),
    "ss_hd": JoinPredicate.equi("store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk"),
    "ss_ca": JoinPredicate.equi("store_sales", "ss_addr_sk", "customer_address", "ca_address_sk"),
    "ss_s": JoinPredicate.equi("store_sales", "ss_store_sk", "store", "s_store_sk"),
    "ss_p": JoinPredicate.equi("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
    # store_returns
    "sr_d": JoinPredicate.equi("store_returns", "sr_returned_date_sk", "date_dim", "d_date_sk"),
    "sr_i": JoinPredicate.equi("store_returns", "sr_item_sk", "item", "i_item_sk"),
    "sr_c": JoinPredicate.equi("store_returns", "sr_customer_sk", "customer", "c_customer_sk"),
    "sr_cd": JoinPredicate.equi("store_returns", "sr_cdemo_sk", "customer_demographics", "cd_demo_sk"),
    "sr_s": JoinPredicate.equi("store_returns", "sr_store_sk", "store", "s_store_sk"),
    "sr_r": JoinPredicate.equi("store_returns", "sr_reason_sk", "reason", "r_reason_sk"),
    "sr_ss": JoinPredicate(
        "store_returns", ("sr_ticket_number", "sr_item_sk"),
        "store_sales", ("ss_ticket_number", "ss_item_sk"),
    ),
    # catalog_sales
    "cs_d": JoinPredicate.equi("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
    "cs_t": JoinPredicate.equi("catalog_sales", "cs_sold_time_sk", "time_dim", "t_time_sk"),
    "cs_i": JoinPredicate.equi("catalog_sales", "cs_item_sk", "item", "i_item_sk"),
    "cs_c": JoinPredicate.equi("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"),
    "cs_cd": JoinPredicate.equi("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics", "cd_demo_sk"),
    "cs_hd": JoinPredicate.equi("catalog_sales", "cs_bill_hdemo_sk", "household_demographics", "hd_demo_sk"),
    "cs_ca": JoinPredicate.equi("catalog_sales", "cs_bill_addr_sk", "customer_address", "ca_address_sk"),
    "cs_cc": JoinPredicate.equi("catalog_sales", "cs_call_center_sk", "call_center", "cc_call_center_sk"),
    "cs_cp": JoinPredicate.equi("catalog_sales", "cs_catalog_page_sk", "catalog_page", "cp_catalog_page_sk"),
    "cs_sm": JoinPredicate.equi("catalog_sales", "cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"),
    "cs_w": JoinPredicate.equi("catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk"),
    "cs_p": JoinPredicate.equi("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk"),
    # catalog_returns
    "cr_d": JoinPredicate.equi("catalog_returns", "cr_returned_date_sk", "date_dim", "d_date_sk"),
    "cr_i": JoinPredicate.equi("catalog_returns", "cr_item_sk", "item", "i_item_sk"),
    "cr_c": JoinPredicate.equi("catalog_returns", "cr_returning_customer_sk", "customer", "c_customer_sk"),
    "cr_cc": JoinPredicate.equi("catalog_returns", "cr_call_center_sk", "call_center", "cc_call_center_sk"),
    "cr_r": JoinPredicate.equi("catalog_returns", "cr_reason_sk", "reason", "r_reason_sk"),
    "cr_cs": JoinPredicate(
        "catalog_returns", ("cr_order_number", "cr_item_sk"),
        "catalog_sales", ("cs_order_number", "cs_item_sk"),
    ),
    # web_sales
    "ws_d": JoinPredicate.equi("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk"),
    "ws_t": JoinPredicate.equi("web_sales", "ws_sold_time_sk", "time_dim", "t_time_sk"),
    "ws_i": JoinPredicate.equi("web_sales", "ws_item_sk", "item", "i_item_sk"),
    "ws_c": JoinPredicate.equi("web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk"),
    "ws_ca": JoinPredicate.equi("web_sales", "ws_bill_addr_sk", "customer_address", "ca_address_sk"),
    "ws_hd": JoinPredicate.equi("web_sales", "ws_ship_hdemo_sk", "household_demographics", "hd_demo_sk"),
    "ws_web": JoinPredicate.equi("web_sales", "ws_web_site_sk", "web_site", "web_site_sk"),
    "ws_wp": JoinPredicate.equi("web_sales", "ws_web_page_sk", "web_page", "wp_web_page_sk"),
    "ws_sm": JoinPredicate.equi("web_sales", "ws_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"),
    "ws_w": JoinPredicate.equi("web_sales", "ws_warehouse_sk", "warehouse", "w_warehouse_sk"),
    "ws_p": JoinPredicate.equi("web_sales", "ws_promo_sk", "promotion", "p_promo_sk"),
    # web_returns
    "wr_d": JoinPredicate.equi("web_returns", "wr_returned_date_sk", "date_dim", "d_date_sk"),
    "wr_i": JoinPredicate.equi("web_returns", "wr_item_sk", "item", "i_item_sk"),
    "wr_c": JoinPredicate.equi("web_returns", "wr_returning_customer_sk", "customer", "c_customer_sk"),
    "wr_cd": JoinPredicate.equi("web_returns", "wr_refunded_cdemo_sk", "customer_demographics", "cd_demo_sk"),
    "wr_ca": JoinPredicate.equi("web_returns", "wr_refunded_addr_sk", "customer_address", "ca_address_sk"),
    "wr_r": JoinPredicate.equi("web_returns", "wr_reason_sk", "reason", "r_reason_sk"),
    "wr_wp": JoinPredicate.equi("web_returns", "wr_web_page_sk", "web_page", "wp_web_page_sk"),
    "wr_ws": JoinPredicate(
        "web_returns", ("wr_order_number", "wr_item_sk"),
        "web_sales", ("ws_order_number", "ws_item_sk"),
    ),
    # inventory
    "inv_d": JoinPredicate.equi("inventory", "inv_date_sk", "date_dim", "d_date_sk"),
    "inv_i": JoinPredicate.equi("inventory", "inv_item_sk", "item", "i_item_sk"),
    "inv_w": JoinPredicate.equi("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk"),
    # customer snowflake
    "c_cd": JoinPredicate.equi("customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"),
    "c_hd": JoinPredicate.equi("customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk"),
    "c_ca": JoinPredicate.equi("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
    "hd_ib": JoinPredicate.equi("household_demographics", "hd_income_band_sk", "income_band", "ib_income_band_sk"),
}

#: Query number -> SPJA blocks, each a tuple of edge shorthands.
QUERY_BLOCKS: dict[int, tuple[tuple[str, ...], ...]] = {
    1: (('sr_d', 'sr_s', 'sr_c'),),
    2: (('ws_d',), ('cs_d',)),
    3: (('ss_d', 'ss_i'),),
    4: (('ss_d', 'ss_c'), ('cs_d', 'cs_c'), ('ws_d', 'ws_c')),
    5: (('ss_d', 'ss_s', 'sr_d', 'sr_s'), ('cs_d', 'cs_cp', 'cr_d'), ('ws_d', 'ws_web', 'wr_d')),
    6: (('ss_d', 'ss_i', 'ss_c', 'c_ca'),),
    7: (('ss_d', 'ss_i', 'ss_cd', 'ss_p'),),
    8: (('ss_d', 'ss_s', 'ss_c', 'c_ca'),),
    9: (),
    10: (('c_cd', 'c_ca'), ('ss_d', 'ss_c'), ('ws_d', 'ws_c'), ('cs_d', 'cs_c')),
    11: (('ss_d', 'ss_c'), ('ws_d', 'ws_c')),
    12: (('ws_d', 'ws_i'),),
    13: (('ss_d', 'ss_s', 'ss_cd', 'ss_hd', 'ss_ca'),),
    14: (('ss_d', 'ss_i'), ('cs_d', 'cs_i'), ('ws_d', 'ws_i')),
    15: (('cs_d', 'cs_c', 'c_ca'),),
    16: (('cs_d', 'cs_cc', 'cs_sm', 'cs_w', 'cr_cs'),),
    17: (('ss_d', 'ss_i', 'ss_s', 'sr_ss', 'sr_d', 'cs_d', 'cs_i'),),
    18: (('cs_d', 'cs_i', 'cs_cd', 'cs_c', 'c_ca'),),
    19: (('ss_d', 'ss_i', 'ss_c', 'ss_s', 'c_ca'),),
    20: (('cs_d', 'cs_i'),),
    21: (('inv_d', 'inv_i', 'inv_w'),),
    22: (('inv_d', 'inv_i', 'inv_w'),),
    23: (('ss_d', 'ss_i', 'ss_c'), ('cs_d', 'cs_c')),
    24: (('ss_i', 'ss_s', 'ss_c', 'sr_ss', 'c_ca'),),
    25: (('ss_d', 'ss_i', 'ss_s', 'sr_ss', 'sr_d', 'cs_d'),),
    26: (('cs_d', 'cs_i', 'cs_cd', 'cs_p'),),
    27: (('ss_d', 'ss_i', 'ss_cd', 'ss_s'),),
    28: (),
    29: (('ss_d', 'ss_i', 'ss_s', 'sr_ss', 'sr_d', 'cs_d'),),
    30: (('wr_d', 'wr_c', 'c_ca'),),
    31: (('ss_d', 'ss_ca'), ('ws_d', 'ws_ca')),
    32: (('cs_d', 'cs_i'),),
    33: (('ss_d', 'ss_i', 'ss_ca'), ('cs_d', 'cs_i', 'cs_ca'), ('ws_d', 'ws_i', 'ws_ca')),
    34: (('ss_d', 'ss_s', 'ss_hd', 'ss_c'),),
    35: (('c_ca', 'c_cd'), ('ss_d', 'ss_c'), ('ws_d', 'ws_c'), ('cs_d', 'cs_c')),
    36: (('ss_d', 'ss_i', 'ss_s'),),
    37: (('inv_d', 'inv_i', 'cs_i'),),
    38: (('ss_d', 'ss_c'), ('cs_d', 'cs_c'), ('ws_d', 'ws_c')),
    39: (('inv_d', 'inv_i', 'inv_w'),),
    40: (('cs_d', 'cs_i', 'cs_w', 'cr_cs'),),
    41: (),
    42: (('ss_d', 'ss_i'),),
    43: (('ss_d', 'ss_s'),),
    44: (('ss_i',),),
    45: (('ws_d', 'ws_i', 'ws_c', 'c_ca'),),
    46: (('ss_d', 'ss_s', 'ss_hd', 'ss_ca', 'ss_c', 'c_ca'),),
    47: (('ss_d', 'ss_i', 'ss_s'),),
    48: (('ss_d', 'ss_s', 'ss_cd', 'ss_ca'),),
    49: (('ws_d', 'wr_ws'), ('cs_d', 'cr_cs'), ('ss_d', 'sr_ss')),
    50: (('ss_d', 'ss_s', 'sr_ss', 'sr_d'),),
    51: (('ws_d', 'ws_i'), ('ss_d', 'ss_i')),
    52: (('ss_d', 'ss_i'),),
    53: (('ss_d', 'ss_i', 'ss_s'),),
    54: (('cs_d', 'cs_i', 'cs_c'), ('c_ca',), ('ss_d', 'ss_c')),
    55: (('ss_d', 'ss_i'),),
    56: (('ss_d', 'ss_i', 'ss_ca'), ('cs_d', 'cs_i', 'cs_ca'), ('ws_d', 'ws_i', 'ws_ca')),
    57: (('cs_d', 'cs_i', 'cs_cc'),),
    58: (('ss_d', 'ss_i'), ('cs_d', 'cs_i'), ('ws_d', 'ws_i')),
    59: (('ss_d', 'ss_s'),),
    60: (('ss_d', 'ss_i', 'ss_ca'), ('cs_d', 'cs_i', 'cs_ca'), ('ws_d', 'ws_i', 'ws_ca')),
    61: (('ss_d', 'ss_i', 'ss_c', 'ss_s', 'ss_p', 'c_ca'),),
    62: (('ws_d', 'ws_sm', 'ws_web', 'ws_w'),),
    63: (('ss_d', 'ss_i', 'ss_s'),),
    64: (('ss_d', 'ss_i', 'ss_s', 'ss_c', 'ss_p', 'sr_ss', 'c_cd', 'c_hd', 'c_ca', 'hd_ib', 'cs_i'),),
    65: (('ss_d', 'ss_i', 'ss_s'),),
    66: (('ws_d', 'ws_t', 'ws_sm', 'ws_w'), ('cs_d', 'cs_t', 'cs_sm', 'cs_w')),
    67: (('ss_d', 'ss_i', 'ss_s'),),
    68: (('ss_d', 'ss_s', 'ss_hd', 'ss_ca', 'ss_c', 'c_ca'),),
    69: (('c_cd', 'c_ca'), ('ss_d', 'ss_c'), ('ws_d', 'ws_c'), ('cs_d', 'cs_c')),
    70: (('ss_d', 'ss_s'),),
    71: (('ss_d', 'ss_i', 'ss_t'), ('ws_d', 'ws_i', 'ws_t'), ('cs_d', 'cs_i', 'cs_t')),
    72: (('cs_d', 'cs_i', 'cs_cd', 'cs_hd', 'cs_p', 'inv_i', 'inv_d', 'inv_w'),),
    73: (('ss_d', 'ss_s', 'ss_hd', 'ss_c'),),
    74: (('ss_d', 'ss_c'), ('ws_d', 'ws_c')),
    75: (('cs_d', 'cs_i', 'cr_cs'), ('ss_d', 'ss_i', 'sr_ss'), ('ws_d', 'ws_i', 'wr_ws')),
    76: (('ss_d', 'ss_i'), ('ws_d', 'ws_i'), ('cs_d', 'cs_i')),
    77: (('ss_d', 'ss_s', 'sr_d', 'sr_s'), ('cs_d', 'cs_cc', 'cr_d', 'cr_cc'), ('ws_d', 'ws_wp', 'wr_d', 'wr_wp')),
    78: (('ws_d', 'ws_i', 'ws_c', 'wr_ws'), ('ss_d', 'ss_i', 'ss_c', 'sr_ss'), ('cs_d', 'cs_i', 'cs_c', 'cr_cs')),
    79: (('ss_d', 'ss_s', 'ss_hd', 'ss_c'),),
    80: (('ss_d', 'ss_i', 'ss_s', 'ss_p', 'sr_ss'), ('cs_d', 'cs_i', 'cs_cp', 'cs_p', 'cr_cs'), ('ws_d', 'ws_i', 'ws_web', 'ws_p', 'wr_ws')),
    81: (('cr_d', 'cr_c', 'c_ca'),),
    82: (('inv_d', 'inv_i', 'ss_i'),),
    83: (('sr_d', 'sr_i'), ('cr_d', 'cr_i'), ('wr_d', 'wr_i')),
    84: (('c_ca', 'c_cd', 'c_hd', 'hd_ib', 'sr_cd'),),
    85: (('ws_d', 'ws_wp', 'wr_ws', 'wr_r', 'wr_cd', 'wr_ca'),),
    86: (('ws_d', 'ws_i'),),
    87: (('ss_d', 'ss_c'), ('cs_d', 'cs_c'), ('ws_d', 'ws_c')),
    88: (('ss_t', 'ss_hd', 'ss_s'),),
    89: (('ss_d', 'ss_i', 'ss_s'),),
    90: (('ws_t', 'ws_hd', 'ws_wp'),),
    91: (('cr_d', 'cr_cc', 'cr_c', 'c_cd', 'c_hd', 'c_ca'),),
    92: (('ws_d', 'ws_i'),),
    93: (('sr_ss', 'sr_r'),),
    94: (('ws_d', 'ws_ca', 'ws_web', 'wr_ws'),),
    95: (('ws_d', 'ws_ca', 'ws_web', 'wr_ws'),),
    96: (('ss_t', 'ss_hd', 'ss_s'),),
    97: (('ss_d', 'ss_c'), ('cs_d', 'cs_c')),
    98: (('ss_d', 'ss_i'),),
    99: (('cs_d', 'cs_w', 'cs_sm', 'cs_cc'),),
}


#: Flat edge view (all blocks of a query combined), kept for convenience.
QUERY_EDGES: dict[int, tuple[str, ...]] = {
    number: tuple(dict.fromkeys(e for block in blocks for e in block))
    for number, blocks in QUERY_BLOCKS.items()
}


def tpcds_workload() -> list[QuerySpec]:
    """The 99 TPC-DS queries as workload specs for the WD algorithm.

    Queries that union several per-channel SPJA blocks contribute one spec
    per block (the paper separates SPJA sub-queries before counting its
    165 connected components).
    """
    specs = []
    for number, blocks in QUERY_BLOCKS.items():
        if len(blocks) <= 1:
            predicates = [EDGES[name] for block in blocks for name in block]
            specs.append(QuerySpec.make(f"q{number}", predicates))
            continue
        for index, block in enumerate(blocks, start=1):
            predicates = [EDGES[name] for name in block]
            specs.append(QuerySpec.make(f"q{number}_b{index}", predicates))
    return specs
