"""The TPC-DS schema: 24 tables (7 facts, 17 dimensions) with FKs.

Columns are reduced to surrogate keys plus a few measures — the design
algorithms consume the schema graph, table sizes and join-key histograms,
none of which need the full 400+ column catalog.  The referential
constraints below are the principal TPC-DS relationships, including the
composite returns->sales foreign keys.
"""

from __future__ import annotations

from repro.catalog.column import DataType
from repro.catalog.schema import DatabaseSchema

#: Row counts at the paper's scale factor 10 (per the TPC-DS
#: specification; several dimensions — date_dim, time_dim, the
#: demographics tables — are fixed-size regardless of scale, which is why
#: the ratios here differ from SF 1).  ``scaled_rows`` scales these down
#: uniformly so a small in-memory database preserves the SF 10 shape.
BASE_ROWS = {
    "call_center": 24,
    "catalog_page": 12_000,
    "customer": 650_000,
    "customer_address": 325_000,
    "customer_demographics": 1_920_800,
    "date_dim": 73_049,
    "household_demographics": 7_200,
    "income_band": 20,
    "item": 102_000,
    "promotion": 500,
    "reason": 45,
    "ship_mode": 20,
    "store": 102,
    "time_dim": 86_400,
    "warehouse": 10,
    "web_page": 200,
    "web_site": 42,
    "inventory": 133_110_000,
    "store_sales": 28_800_000,
    "store_returns": 2_880_000,
    "catalog_sales": 14_400_000,
    "catalog_returns": 1_440_000,
    "web_sales": 7_200_000,
    "web_returns": 720_000,
}

#: The seven fact tables (used by the "individual stars" baselines).
FACT_TABLES = (
    "store_sales",
    "store_returns",
    "catalog_sales",
    "catalog_returns",
    "web_sales",
    "web_returns",
    "inventory",
)

#: Tables the paper excludes and replicates (fewer than 1000 rows each).
SMALL_TABLES = ("call_center", "income_band", "reason", "ship_mode", "store",
                "warehouse", "web_page", "web_site", "promotion")

I = DataType.INTEGER
F = DataType.FLOAT
V = DataType.VARCHAR


def _dim(schema: DatabaseSchema, name: str, key: str, attrs: list[str]) -> None:
    columns = [(key, I)] + [(attr, V) for attr in attrs]
    schema.create_table(name, columns, primary_key=[key])


def tpcds_schema() -> DatabaseSchema:
    """Build the 24-table TPC-DS schema with referential constraints."""
    schema = DatabaseSchema()

    # -- dimensions ---------------------------------------------------------
    _dim(schema, "date_dim", "d_date_sk", ["d_year", "d_moy", "d_day_name"])
    _dim(schema, "time_dim", "t_time_sk", ["t_hour", "t_shift"])
    _dim(schema, "item", "i_item_sk", ["i_brand", "i_category", "i_class"])
    _dim(schema, "store", "s_store_sk", ["s_store_name", "s_state"])
    _dim(schema, "call_center", "cc_call_center_sk", ["cc_name"])
    _dim(schema, "catalog_page", "cp_catalog_page_sk", ["cp_type"])
    _dim(schema, "web_site", "web_site_sk", ["web_name"])
    _dim(schema, "web_page", "wp_web_page_sk", ["wp_type"])
    _dim(schema, "warehouse", "w_warehouse_sk", ["w_name", "w_state"])
    _dim(schema, "promotion", "p_promo_sk", ["p_channel"])
    _dim(schema, "reason", "r_reason_sk", ["r_desc"])
    _dim(schema, "ship_mode", "sm_ship_mode_sk", ["sm_type"])
    _dim(schema, "income_band", "ib_income_band_sk", ["ib_bracket"])
    _dim(schema, "customer_address", "ca_address_sk", ["ca_state", "ca_city"])
    _dim(
        schema,
        "customer_demographics",
        "cd_demo_sk",
        ["cd_gender", "cd_marital_status", "cd_education_status"],
    )
    schema.create_table(
        "household_demographics",
        [
            ("hd_demo_sk", I),
            ("hd_income_band_sk", I),
            ("hd_buy_potential", V),
            ("hd_dep_count", I),
        ],
        primary_key=["hd_demo_sk"],
    )
    schema.create_table(
        "customer",
        [
            ("c_customer_sk", I),
            ("c_current_cdemo_sk", I),
            ("c_current_hdemo_sk", I),
            ("c_current_addr_sk", I),
            ("c_name", V),
        ],
        primary_key=["c_customer_sk"],
    )

    # -- fact tables --------------------------------------------------------------
    schema.create_table(
        "store_sales",
        [
            ("ss_sold_date_sk", I),
            ("ss_sold_time_sk", I),
            ("ss_item_sk", I),
            ("ss_customer_sk", I),
            ("ss_cdemo_sk", I),
            ("ss_hdemo_sk", I),
            ("ss_addr_sk", I),
            ("ss_store_sk", I),
            ("ss_promo_sk", I),
            ("ss_ticket_number", I),
            ("ss_quantity", I),
            ("ss_net_paid", F),
        ],
        primary_key=["ss_ticket_number", "ss_item_sk"],
    )
    schema.create_table(
        "store_returns",
        [
            ("sr_returned_date_sk", I),
            ("sr_item_sk", I),
            ("sr_customer_sk", I),
            ("sr_cdemo_sk", I),
            ("sr_store_sk", I),
            ("sr_reason_sk", I),
            ("sr_ticket_number", I),
            ("sr_return_amt", F),
        ],
        primary_key=["sr_ticket_number", "sr_item_sk"],
    )
    schema.create_table(
        "catalog_sales",
        [
            ("cs_sold_date_sk", I),
            ("cs_sold_time_sk", I),
            ("cs_item_sk", I),
            ("cs_bill_customer_sk", I),
            ("cs_bill_cdemo_sk", I),
            ("cs_bill_hdemo_sk", I),
            ("cs_bill_addr_sk", I),
            ("cs_call_center_sk", I),
            ("cs_catalog_page_sk", I),
            ("cs_ship_mode_sk", I),
            ("cs_warehouse_sk", I),
            ("cs_promo_sk", I),
            ("cs_order_number", I),
            ("cs_quantity", I),
            ("cs_net_paid", F),
        ],
        primary_key=["cs_order_number", "cs_item_sk"],
    )
    schema.create_table(
        "catalog_returns",
        [
            ("cr_returned_date_sk", I),
            ("cr_item_sk", I),
            ("cr_returning_customer_sk", I),
            ("cr_call_center_sk", I),
            ("cr_reason_sk", I),
            ("cr_order_number", I),
            ("cr_return_amount", F),
        ],
        primary_key=["cr_order_number", "cr_item_sk"],
    )
    schema.create_table(
        "web_sales",
        [
            ("ws_sold_date_sk", I),
            ("ws_sold_time_sk", I),
            ("ws_item_sk", I),
            ("ws_bill_customer_sk", I),
            ("ws_bill_addr_sk", I),
            ("ws_ship_hdemo_sk", I),
            ("ws_web_site_sk", I),
            ("ws_web_page_sk", I),
            ("ws_ship_mode_sk", I),
            ("ws_warehouse_sk", I),
            ("ws_promo_sk", I),
            ("ws_order_number", I),
            ("ws_quantity", I),
            ("ws_net_paid", F),
        ],
        primary_key=["ws_order_number", "ws_item_sk"],
    )
    schema.create_table(
        "web_returns",
        [
            ("wr_returned_date_sk", I),
            ("wr_item_sk", I),
            ("wr_returning_customer_sk", I),
            ("wr_refunded_cdemo_sk", I),
            ("wr_refunded_addr_sk", I),
            ("wr_reason_sk", I),
            ("wr_web_page_sk", I),
            ("wr_order_number", I),
            ("wr_return_amt", F),
        ],
        primary_key=["wr_order_number", "wr_item_sk"],
    )
    schema.create_table(
        "inventory",
        [
            ("inv_date_sk", I),
            ("inv_item_sk", I),
            ("inv_warehouse_sk", I),
            ("inv_quantity_on_hand", I),
        ],
        primary_key=["inv_date_sk", "inv_item_sk", "inv_warehouse_sk"],
    )

    # -- foreign keys -----------------------------------------------------------
    fk = schema.add_foreign_key
    fk("fk_c_cd", "customer", ["c_current_cdemo_sk"], "customer_demographics", ["cd_demo_sk"])
    fk("fk_c_hd", "customer", ["c_current_hdemo_sk"], "household_demographics", ["hd_demo_sk"])
    fk("fk_c_ca", "customer", ["c_current_addr_sk"], "customer_address", ["ca_address_sk"])
    fk("fk_hd_ib", "household_demographics", ["hd_income_band_sk"], "income_band", ["ib_income_band_sk"])

    fk("fk_ss_d", "store_sales", ["ss_sold_date_sk"], "date_dim", ["d_date_sk"])
    fk("fk_ss_t", "store_sales", ["ss_sold_time_sk"], "time_dim", ["t_time_sk"])
    fk("fk_ss_i", "store_sales", ["ss_item_sk"], "item", ["i_item_sk"])
    fk("fk_ss_c", "store_sales", ["ss_customer_sk"], "customer", ["c_customer_sk"])
    fk("fk_ss_cd", "store_sales", ["ss_cdemo_sk"], "customer_demographics", ["cd_demo_sk"])
    fk("fk_ss_hd", "store_sales", ["ss_hdemo_sk"], "household_demographics", ["hd_demo_sk"])
    fk("fk_ss_ca", "store_sales", ["ss_addr_sk"], "customer_address", ["ca_address_sk"])
    fk("fk_ss_s", "store_sales", ["ss_store_sk"], "store", ["s_store_sk"])
    fk("fk_ss_p", "store_sales", ["ss_promo_sk"], "promotion", ["p_promo_sk"])

    fk("fk_sr_d", "store_returns", ["sr_returned_date_sk"], "date_dim", ["d_date_sk"])
    fk("fk_sr_i", "store_returns", ["sr_item_sk"], "item", ["i_item_sk"])
    fk("fk_sr_c", "store_returns", ["sr_customer_sk"], "customer", ["c_customer_sk"])
    fk("fk_sr_cd", "store_returns", ["sr_cdemo_sk"], "customer_demographics", ["cd_demo_sk"])
    fk("fk_sr_s", "store_returns", ["sr_store_sk"], "store", ["s_store_sk"])
    fk("fk_sr_r", "store_returns", ["sr_reason_sk"], "reason", ["r_reason_sk"])
    fk(
        "fk_sr_ss",
        "store_returns",
        ["sr_ticket_number", "sr_item_sk"],
        "store_sales",
        ["ss_ticket_number", "ss_item_sk"],
    )

    fk("fk_cs_d", "catalog_sales", ["cs_sold_date_sk"], "date_dim", ["d_date_sk"])
    fk("fk_cs_t", "catalog_sales", ["cs_sold_time_sk"], "time_dim", ["t_time_sk"])
    fk("fk_cs_i", "catalog_sales", ["cs_item_sk"], "item", ["i_item_sk"])
    fk("fk_cs_c", "catalog_sales", ["cs_bill_customer_sk"], "customer", ["c_customer_sk"])
    fk("fk_cs_cd", "catalog_sales", ["cs_bill_cdemo_sk"], "customer_demographics", ["cd_demo_sk"])
    fk("fk_cs_hd", "catalog_sales", ["cs_bill_hdemo_sk"], "household_demographics", ["hd_demo_sk"])
    fk("fk_cs_ca", "catalog_sales", ["cs_bill_addr_sk"], "customer_address", ["ca_address_sk"])
    fk("fk_cs_cc", "catalog_sales", ["cs_call_center_sk"], "call_center", ["cc_call_center_sk"])
    fk("fk_cs_cp", "catalog_sales", ["cs_catalog_page_sk"], "catalog_page", ["cp_catalog_page_sk"])
    fk("fk_cs_sm", "catalog_sales", ["cs_ship_mode_sk"], "ship_mode", ["sm_ship_mode_sk"])
    fk("fk_cs_w", "catalog_sales", ["cs_warehouse_sk"], "warehouse", ["w_warehouse_sk"])
    fk("fk_cs_p", "catalog_sales", ["cs_promo_sk"], "promotion", ["p_promo_sk"])

    fk("fk_cr_d", "catalog_returns", ["cr_returned_date_sk"], "date_dim", ["d_date_sk"])
    fk("fk_cr_i", "catalog_returns", ["cr_item_sk"], "item", ["i_item_sk"])
    fk("fk_cr_c", "catalog_returns", ["cr_returning_customer_sk"], "customer", ["c_customer_sk"])
    fk("fk_cr_cc", "catalog_returns", ["cr_call_center_sk"], "call_center", ["cc_call_center_sk"])
    fk("fk_cr_r", "catalog_returns", ["cr_reason_sk"], "reason", ["r_reason_sk"])
    fk(
        "fk_cr_cs",
        "catalog_returns",
        ["cr_order_number", "cr_item_sk"],
        "catalog_sales",
        ["cs_order_number", "cs_item_sk"],
    )

    fk("fk_ws_d", "web_sales", ["ws_sold_date_sk"], "date_dim", ["d_date_sk"])
    fk("fk_ws_t", "web_sales", ["ws_sold_time_sk"], "time_dim", ["t_time_sk"])
    fk("fk_ws_i", "web_sales", ["ws_item_sk"], "item", ["i_item_sk"])
    fk("fk_ws_c", "web_sales", ["ws_bill_customer_sk"], "customer", ["c_customer_sk"])
    fk("fk_ws_ca", "web_sales", ["ws_bill_addr_sk"], "customer_address", ["ca_address_sk"])
    fk("fk_ws_hd", "web_sales", ["ws_ship_hdemo_sk"], "household_demographics", ["hd_demo_sk"])
    fk("fk_ws_web", "web_sales", ["ws_web_site_sk"], "web_site", ["web_site_sk"])
    fk("fk_ws_wp", "web_sales", ["ws_web_page_sk"], "web_page", ["wp_web_page_sk"])
    fk("fk_ws_sm", "web_sales", ["ws_ship_mode_sk"], "ship_mode", ["sm_ship_mode_sk"])
    fk("fk_ws_w", "web_sales", ["ws_warehouse_sk"], "warehouse", ["w_warehouse_sk"])
    fk("fk_ws_p", "web_sales", ["ws_promo_sk"], "promotion", ["p_promo_sk"])

    fk("fk_wr_d", "web_returns", ["wr_returned_date_sk"], "date_dim", ["d_date_sk"])
    fk("fk_wr_i", "web_returns", ["wr_item_sk"], "item", ["i_item_sk"])
    fk("fk_wr_c", "web_returns", ["wr_returning_customer_sk"], "customer", ["c_customer_sk"])
    fk("fk_wr_cd", "web_returns", ["wr_refunded_cdemo_sk"], "customer_demographics", ["cd_demo_sk"])
    fk("fk_wr_ca", "web_returns", ["wr_refunded_addr_sk"], "customer_address", ["ca_address_sk"])
    fk("fk_wr_r", "web_returns", ["wr_reason_sk"], "reason", ["r_reason_sk"])
    fk("fk_wr_wp", "web_returns", ["wr_web_page_sk"], "web_page", ["wp_web_page_sk"])
    fk(
        "fk_wr_ws",
        "web_returns",
        ["wr_order_number", "wr_item_sk"],
        "web_sales",
        ["ws_order_number", "ws_item_sk"],
    )

    fk("fk_inv_d", "inventory", ["inv_date_sk"], "date_dim", ["d_date_sk"])
    fk("fk_inv_i", "inventory", ["inv_item_sk"], "item", ["i_item_sk"])
    fk("fk_inv_w", "inventory", ["inv_warehouse_sk"], "warehouse", ["w_warehouse_sk"])
    return schema
