"""TPC-DS: 24-table schema, skewed data generator, 99 query join graphs."""

from repro.workloads.tpcds.datagen import ZipfSampler, generate_tpcds, scaled_rows
from repro.workloads.tpcds.queries import EDGES, QUERY_BLOCKS, QUERY_EDGES, tpcds_workload
from repro.workloads.tpcds.schema import (
    BASE_ROWS,
    FACT_TABLES,
    SMALL_TABLES,
    tpcds_schema,
)

__all__ = [
    "BASE_ROWS",
    "EDGES",
    "FACT_TABLES",
    "QUERY_BLOCKS",
    "QUERY_EDGES",
    "SMALL_TABLES",
    "ZipfSampler",
    "generate_tpcds",
    "scaled_rows",
    "tpcds_schema",
    "tpcds_workload",
]
