"""TPC-H: schema, seeded data generator, and the 22 benchmark queries."""

from repro.workloads.tpch.datagen import generate_tpch, scaled_rows
from repro.workloads.tpch.queries import (
    ALL_QUERIES,
    RUNTIME_EXCLUDED,
    runtime_queries,
)
from repro.workloads.tpch.schema import BASE_ROWS, SMALL_TABLES, tpch_schema

__all__ = [
    "ALL_QUERIES",
    "BASE_ROWS",
    "RUNTIME_EXCLUDED",
    "SMALL_TABLES",
    "generate_tpch",
    "runtime_queries",
    "scaled_rows",
    "tpch_schema",
]
