"""The TPC-H schema (8 tables) with its referential constraints.

Columns are the subset every TPC-H query in this repository touches; dates
are stored as integer day offsets from 1992-01-01 (day 0) so comparisons
and arithmetic stay cheap.
"""

from __future__ import annotations

from repro.catalog.column import DataType
from repro.catalog.schema import DatabaseSchema

#: Base row counts at scale factor 1.0 (lineitem is ~4 lines per order).
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Day offset of 1998-12-01 from 1992-01-01 (used by Q1's interval).
DAY_19981201 = 2526
#: Latest order date (1998-08-02).
MAX_ORDER_DAY = 2405


def tpch_schema() -> DatabaseSchema:
    """Build the TPC-H schema with primary and foreign keys."""
    schema = DatabaseSchema()
    integer, flt, varchar = DataType.INTEGER, DataType.FLOAT, DataType.VARCHAR
    date = DataType.DATE

    schema.create_table(
        "region",
        [("r_regionkey", integer), ("r_name", varchar)],
        primary_key=["r_regionkey"],
    )
    schema.create_table(
        "nation",
        [
            ("n_nationkey", integer),
            ("n_name", varchar),
            ("n_regionkey", integer),
        ],
        primary_key=["n_nationkey"],
    )
    schema.create_table(
        "supplier",
        [
            ("s_suppkey", integer),
            ("s_name", varchar),
            ("s_nationkey", integer),
            ("s_acctbal", flt),
        ],
        primary_key=["s_suppkey"],
    )
    schema.create_table(
        "customer",
        [
            ("c_custkey", integer),
            ("c_name", varchar),
            ("c_nationkey", integer),
            ("c_mktsegment", varchar),
            ("c_acctbal", flt),
            ("c_phone", varchar),
        ],
        primary_key=["c_custkey"],
    )
    schema.create_table(
        "part",
        [
            ("p_partkey", integer),
            ("p_name", varchar),
            ("p_mfgr", varchar),
            ("p_brand", varchar),
            ("p_type", varchar),
            ("p_size", integer),
            ("p_container", varchar),
            ("p_retailprice", flt),
        ],
        primary_key=["p_partkey"],
    )
    schema.create_table(
        "partsupp",
        [
            ("ps_partkey", integer),
            ("ps_suppkey", integer),
            ("ps_availqty", integer),
            ("ps_supplycost", flt),
        ],
        primary_key=["ps_partkey", "ps_suppkey"],
    )
    schema.create_table(
        "orders",
        [
            ("o_orderkey", integer),
            ("o_custkey", integer),
            ("o_orderstatus", varchar),
            ("o_totalprice", flt),
            ("o_orderdate", date),
            ("o_orderpriority", varchar),
            ("o_shippriority", integer),
        ],
        primary_key=["o_orderkey"],
    )
    schema.create_table(
        "lineitem",
        [
            ("l_orderkey", integer),
            ("l_linenumber", integer),
            ("l_partkey", integer),
            ("l_suppkey", integer),
            ("l_quantity", flt),
            ("l_extendedprice", flt),
            ("l_discount", flt),
            ("l_tax", flt),
            ("l_returnflag", varchar),
            ("l_linestatus", varchar),
            ("l_shipdate", date),
            ("l_commitdate", date),
            ("l_receiptdate", date),
            ("l_shipinstruct", varchar),
            ("l_shipmode", varchar),
        ],
        primary_key=["l_orderkey", "l_linenumber"],
    )

    schema.add_foreign_key(
        "fk_nation_region", "nation", ["n_regionkey"], "region", ["r_regionkey"]
    )
    schema.add_foreign_key(
        "fk_supplier_nation", "supplier", ["s_nationkey"], "nation", ["n_nationkey"]
    )
    schema.add_foreign_key(
        "fk_customer_nation", "customer", ["c_nationkey"], "nation", ["n_nationkey"]
    )
    schema.add_foreign_key(
        "fk_partsupp_part", "partsupp", ["ps_partkey"], "part", ["p_partkey"]
    )
    schema.add_foreign_key(
        "fk_partsupp_supplier",
        "partsupp",
        ["ps_suppkey"],
        "supplier",
        ["s_suppkey"],
    )
    schema.add_foreign_key(
        "fk_orders_customer", "orders", ["o_custkey"], "customer", ["c_custkey"]
    )
    schema.add_foreign_key(
        "fk_lineitem_orders", "lineitem", ["l_orderkey"], "orders", ["o_orderkey"]
    )
    schema.add_foreign_key(
        "fk_lineitem_partsupp",
        "lineitem",
        ["l_partkey", "l_suppkey"],
        "partsupp",
        ["ps_partkey", "ps_suppkey"],
    )
    return schema


#: Tables the paper replicates for the SD/WD variants (Section 5.1).
SMALL_TABLES = ("nation", "region", "supplier")
