"""The 22 TPC-H queries as SPJA logical plans.

Queries are faithful to each TPC-H query's *join graph*, filters and
aggregation structure — which is what drives partitioning behaviour — while
string pattern matching and correlated sub-queries are approximated by
categorical equality filters and semi-/anti-joins (the paper itself
restricts its rewrites to SPJA blocks and rewrites Q13's outer join).
Dates are integer day offsets from 1992-01-01.
"""

from __future__ import annotations

from typing import Callable

from repro.query.builder import Query
from repro.query.expressions import InList, and_, col, lit, or_
from repro.query.plan import PlanNode


def _l() -> Query:
    return Query.scan("lineitem", alias="l")


def _o() -> Query:
    return Query.scan("orders", alias="o")


def _c() -> Query:
    return Query.scan("customer", alias="c")


def _p() -> Query:
    return Query.scan("part", alias="p")


def _ps() -> Query:
    return Query.scan("partsupp", alias="ps")


def _s() -> Query:
    return Query.scan("supplier", alias="s")


def _n(alias: str = "n") -> Query:
    return Query.scan("nation", alias=alias)


def _r() -> Query:
    return Query.scan("region", alias="r")


def _revenue() -> object:
    return col("l.l_extendedprice") * (lit(1.0) - col("l.l_discount"))


def q1() -> PlanNode:
    """Pricing summary report: big lineitem scan + grouped aggregation."""
    return (
        _l()
        .where(col("l.l_shipdate") <= lit(2526 - 90))
        .aggregate(
            group_by=["l.l_returnflag", "l.l_linestatus"],
            aggregates=[
                ("sum", col("l.l_quantity"), "sum_qty"),
                ("sum", col("l.l_extendedprice"), "sum_base_price"),
                ("sum", _revenue(), "sum_disc_price"),
                ("avg", col("l.l_quantity"), "avg_qty"),
                ("avg", col("l.l_discount"), "avg_disc"),
                ("count", None, "count_order"),
            ],
        )
        .order_by(["l.l_returnflag", "l.l_linestatus"])
        .plan()
    )


def q2() -> PlanNode:
    """Minimum-cost supplier: part/partsupp/supplier/nation/region joins."""
    return (
        _p()
        .where(col("p.p_size") == lit(15))
        .join(_ps(), on=[("p.p_partkey", "ps.ps_partkey")])
        .join(_s(), on=[("ps.ps_suppkey", "s.s_suppkey")])
        .join(_n(), on=[("s.s_nationkey", "n.n_nationkey")])
        .join(_r(), on=[("n.n_regionkey", "r.r_regionkey")])
        .where(col("r.r_name") == lit("EUROPE"))
        .aggregate(
            group_by=["p.p_partkey", "p.p_mfgr"],
            aggregates=[
                ("min", col("ps.ps_supplycost"), "min_cost"),
                ("max", col("s.s_acctbal"), "best_acctbal"),
            ],
        )
        .order_by([("best_acctbal", False), ("p.p_partkey", True)], limit=100)
        .plan()
    )


def q3() -> PlanNode:
    """Shipping priority: customer/orders/lineitem."""
    return (
        _c()
        .where(col("c.c_mktsegment") == lit("BUILDING"))
        .join(_o(), on=[("c.c_custkey", "o.o_custkey")])
        .where(col("o.o_orderdate") < lit(1170))
        .join(_l(), on=[("o.o_orderkey", "l.l_orderkey")])
        .where(col("l.l_shipdate") > lit(1170))
        .aggregate(
            group_by=["l.l_orderkey", "o.o_orderdate", "o.o_shippriority"],
            aggregates=[("sum", _revenue(), "revenue")],
        )
        .order_by([("revenue", False), ("o.o_orderdate", True), ("l.l_orderkey", True)], limit=10)
        .plan()
    )


def q4() -> PlanNode:
    """Order priority checking: orders semi-join late lineitems."""
    late = _l().where(col("l.l_commitdate") < col("l.l_receiptdate"))
    return (
        _o()
        .where(
            and_(
                col("o.o_orderdate") >= lit(730),
                col("o.o_orderdate") < lit(730 + 92),
            )
        )
        .semi_join(late, on=[("o.o_orderkey", "l.l_orderkey")])
        .aggregate(
            group_by=["o.o_orderpriority"],
            aggregates=[("count", None, "order_count")],
        )
        .order_by(["o.o_orderpriority"])
        .plan()
    )


def q5() -> PlanNode:
    """Local supplier volume: six-way join with region filter."""
    return (
        _c()
        .join(_o(), on=[("c.c_custkey", "o.o_custkey")])
        .where(
            and_(
                col("o.o_orderdate") >= lit(730),
                col("o.o_orderdate") < lit(730 + 365),
            )
        )
        .join(_l(), on=[("o.o_orderkey", "l.l_orderkey")])
        .join(
            _s(),
            on=[
                ("l.l_suppkey", "s.s_suppkey"),
                ("c.c_nationkey", "s.s_nationkey"),
            ],
        )
        .join(_n(), on=[("s.s_nationkey", "n.n_nationkey")])
        .join(_r(), on=[("n.n_regionkey", "r.r_regionkey")])
        .where(col("r.r_name") == lit("ASIA"))
        .aggregate(
            group_by=["n.n_name"],
            aggregates=[("sum", _revenue(), "revenue")],
        )
        .order_by([("revenue", False)])
        .plan()
    )


def q6() -> PlanNode:
    """Forecast revenue change: pure lineitem scan."""
    return (
        _l()
        .where(
            and_(
                col("l.l_shipdate") >= lit(730),
                col("l.l_shipdate") < lit(730 + 365),
                col("l.l_discount") >= lit(0.05),
                col("l.l_discount") <= lit(0.07),
                col("l.l_quantity") < lit(24.0),
            )
        )
        .aggregate(
            aggregates=[
                ("sum", col("l.l_extendedprice") * col("l.l_discount"), "revenue")
            ]
        )
        .plan()
    )


def q7() -> PlanNode:
    """Volume shipping between two nations."""
    return (
        _s()
        .join(_l(), on=[("s.s_suppkey", "l.l_suppkey")])
        .join(_o(), on=[("l.l_orderkey", "o.o_orderkey")])
        .join(_c(), on=[("o.o_custkey", "c.c_custkey")])
        .join(_n("n1"), on=[("s.s_nationkey", "n1.n_nationkey")])
        .join(_n("n2"), on=[("c.c_nationkey", "n2.n_nationkey")])
        .where(
            or_(
                and_(
                    col("n1.n_name") == lit("FRANCE"),
                    col("n2.n_name") == lit("GERMANY"),
                ),
                and_(
                    col("n1.n_name") == lit("GERMANY"),
                    col("n2.n_name") == lit("FRANCE"),
                ),
            )
        )
        .aggregate(
            group_by=["n1.n_name", "n2.n_name"],
            aggregates=[("sum", _revenue(), "volume")],
        )
        .order_by(["n1.n_name", "n2.n_name"])
        .plan()
    )


def q8() -> PlanNode:
    """National market share: eight-table join."""
    return (
        _p()
        .where(col("p.p_mfgr") == lit("Manufacturer#3"))
        .join(_l(), on=[("p.p_partkey", "l.l_partkey")])
        .join(_s(), on=[("l.l_suppkey", "s.s_suppkey")])
        .join(_o(), on=[("l.l_orderkey", "o.o_orderkey")])
        .join(_c(), on=[("o.o_custkey", "c.c_custkey")])
        .join(_n("n1"), on=[("c.c_nationkey", "n1.n_nationkey")])
        .join(_r(), on=[("n1.n_regionkey", "r.r_regionkey")])
        .where(col("r.r_name") == lit("AMERICA"))
        .join(_n("n2"), on=[("s.s_nationkey", "n2.n_nationkey")])
        .aggregate(
            group_by=["n2.n_name"],
            aggregates=[("sum", _revenue(), "volume")],
        )
        .order_by(["n2.n_name"])
        .plan()
    )


def q9() -> PlanNode:
    """Product-type profit: the partsupp-heavy six-way join."""
    profit = _revenue() - col("ps.ps_supplycost") * col("l.l_quantity")
    return (
        _p()
        .where(col("p.p_mfgr") == lit("Manufacturer#1"))
        .join(_l(), on=[("p.p_partkey", "l.l_partkey")])
        .join(
            _ps(),
            on=[
                ("l.l_partkey", "ps.ps_partkey"),
                ("l.l_suppkey", "ps.ps_suppkey"),
            ],
        )
        .join(_s(), on=[("l.l_suppkey", "s.s_suppkey")])
        .join(_o(), on=[("l.l_orderkey", "o.o_orderkey")])
        .join(_n(), on=[("s.s_nationkey", "n.n_nationkey")])
        .aggregate(
            group_by=["n.n_name"],
            aggregates=[("sum", profit, "sum_profit")],
        )
        .order_by(["n.n_name"])
        .plan()
    )


def q10() -> PlanNode:
    """Returned item reporting."""
    return (
        _c()
        .join(_o(), on=[("c.c_custkey", "o.o_custkey")])
        .where(
            and_(
                col("o.o_orderdate") >= lit(640),
                col("o.o_orderdate") < lit(640 + 92),
            )
        )
        .join(_l(), on=[("o.o_orderkey", "l.l_orderkey")])
        .where(col("l.l_returnflag") == lit("R"))
        .join(_n(), on=[("c.c_nationkey", "n.n_nationkey")])
        .aggregate(
            group_by=["c.c_custkey", "c.c_name", "n.n_name"],
            aggregates=[("sum", _revenue(), "revenue")],
        )
        .order_by([("revenue", False), ("c.c_custkey", True)], limit=20)
        .plan()
    )


def q11() -> PlanNode:
    """Important stock identification."""
    value = col("ps.ps_supplycost") * col("ps.ps_availqty")
    return (
        _ps()
        .join(_s(), on=[("ps.ps_suppkey", "s.s_suppkey")])
        .join(_n(), on=[("s.s_nationkey", "n.n_nationkey")])
        .where(col("n.n_name") == lit("GERMANY"))
        .aggregate(
            group_by=["ps.ps_partkey"],
            aggregates=[("sum", value, "value")],
        )
        .order_by([("value", False), ("ps.ps_partkey", True)], limit=100)
        .plan()
    )


def q12() -> PlanNode:
    """Shipping modes and order priority."""
    return (
        _o()
        .join(_l(), on=[("o.o_orderkey", "l.l_orderkey")])
        .where(
            and_(
                InList(col("l.l_shipmode"), ("MAIL", "SHIP")),
                col("l.l_commitdate") < col("l.l_receiptdate"),
                col("l.l_shipdate") < col("l.l_commitdate"),
                col("l.l_receiptdate") >= lit(730),
                col("l.l_receiptdate") < lit(730 + 365),
            )
        )
        .aggregate(
            group_by=["l.l_shipmode"],
            aggregates=[("count", None, "line_count")],
        )
        .order_by(["l.l_shipmode"])
        .plan()
    )


def q13() -> PlanNode:
    """Customer distribution: left outer join + two-level aggregation."""
    return (
        _c()
        .left_join(_o(), on=[("c.c_custkey", "o.o_custkey")])
        .aggregate(
            group_by=["c.c_custkey"],
            aggregates=[("count", col("o.o_orderkey"), "c_count")],
        )
        .aggregate(
            group_by=["c_count"],
            aggregates=[("count", None, "custdist")],
        )
        .order_by([("custdist", False), ("c_count", False)])
        .plan()
    )


def q14() -> PlanNode:
    """Promotion effect."""
    return (
        _l()
        .where(
            and_(
                col("l.l_shipdate") >= lit(850),
                col("l.l_shipdate") < lit(850 + 31),
            )
        )
        .join(_p(), on=[("l.l_partkey", "p.p_partkey")])
        .aggregate(
            group_by=["p.p_mfgr"],
            aggregates=[("sum", _revenue(), "revenue")],
        )
        .order_by(["p.p_mfgr"])
        .plan()
    )


def q15() -> PlanNode:
    """Top supplier: join against an aggregated lineitem sub-block."""
    revenue_by_supplier = (
        _l()
        .where(
            and_(
                col("l.l_shipdate") >= lit(1000),
                col("l.l_shipdate") < lit(1000 + 92),
            )
        )
        .aggregate(
            group_by=["l.l_suppkey"],
            aggregates=[("sum", _revenue(), "total_revenue")],
        )
    )
    return (
        _s()
        .join(revenue_by_supplier, on=[("s.s_suppkey", "l.l_suppkey")])
        .order_by([("total_revenue", False), ("s.s_suppkey", True)], limit=1)
        .plan()
    )


def q16() -> PlanNode:
    """Parts/supplier relationship: count distinct suppliers."""
    return (
        _ps()
        .join(_p(), on=[("ps.ps_partkey", "p.p_partkey")])
        .where(
            and_(
                col("p.p_brand") != lit("Brand#45"),
                InList(col("p.p_size"), (9, 14, 19, 23, 36, 45, 3, 49)),
            )
        )
        .aggregate(
            group_by=["p.p_brand", "p.p_size"],
            aggregates=[("count_distinct", col("ps.ps_suppkey"), "supplier_cnt")],
        )
        .order_by([("supplier_cnt", False), ("p.p_brand", True), ("p.p_size", True)], limit=40)
        .plan()
    )


def q17() -> PlanNode:
    """Small-quantity-order revenue."""
    return (
        _l()
        .join(_p(), on=[("l.l_partkey", "p.p_partkey")])
        .where(
            and_(
                col("p.p_brand") == lit("Brand#23"),
                col("p.p_container") == lit("MED BOX"),
                col("l.l_quantity") < lit(10.0),
            )
        )
        .aggregate(
            aggregates=[
                ("sum", col("l.l_extendedprice"), "avg_yearly"),
                ("count", None, "n"),
            ]
        )
        .plan()
    )


def q18() -> PlanNode:
    """Large volume customers."""
    return (
        _c()
        .join(_o(), on=[("c.c_custkey", "o.o_custkey")])
        .join(_l(), on=[("o.o_orderkey", "l.l_orderkey")])
        .aggregate(
            group_by=["c.c_name", "c.c_custkey", "o.o_orderkey", "o.o_orderdate"],
            aggregates=[("sum", col("l.l_quantity"), "total_qty")],
        )
        .order_by([("total_qty", False), ("o.o_orderkey", True)], limit=100)
        .plan()
    )


def q19() -> PlanNode:
    """Discounted revenue: the original's three-bracket disjunction."""

    def bracket(brand: str, low: float, high: float, size: int):
        return and_(
            col("p.p_brand") == lit(brand),
            col("l.l_quantity") >= lit(low),
            col("l.l_quantity") <= lit(high),
            col("p.p_size") <= lit(size),
        )

    return (
        _l()
        .join(_p(), on=[("l.l_partkey", "p.p_partkey")])
        .where(
            and_(
                or_(
                    bracket("Brand#12", 1.0, 11.0, 5),
                    bracket("Brand#23", 10.0, 20.0, 10),
                    bracket("Brand#34", 20.0, 30.0, 15),
                ),
                InList(col("l.l_shipmode"), ("AIR", "REG AIR")),
                col("l.l_shipinstruct") == lit("DELIVER IN PERSON"),
            )
        )
        .aggregate(aggregates=[("sum", _revenue(), "revenue")])
        .plan()
    )


def q20() -> PlanNode:
    """Potential part promotion: supplier semi-join chain."""
    promo_parts = _p().where(col("p.p_mfgr") == lit("Manufacturer#4"))
    stocked = _ps().semi_join(promo_parts, on=[("ps.ps_partkey", "p.p_partkey")])
    return (
        _s()
        .semi_join(stocked, on=[("s.s_suppkey", "ps.ps_suppkey")])
        .join(_n(), on=[("s.s_nationkey", "n.n_nationkey")])
        .where(col("n.n_name") == lit("CANADA"))
        .aggregate(aggregates=[("count", None, "supplier_count")])
        .plan()
    )


def q21() -> PlanNode:
    """Suppliers who kept orders waiting."""
    return (
        _s()
        .join(_l(), on=[("s.s_suppkey", "l.l_suppkey")])
        .where(col("l.l_receiptdate") > col("l.l_commitdate"))
        .join(_o(), on=[("l.l_orderkey", "o.o_orderkey")])
        .where(col("o.o_orderstatus") == lit("F"))
        .join(_n(), on=[("s.s_nationkey", "n.n_nationkey")])
        .where(col("n.n_name") == lit("SAUDI ARABIA"))
        .aggregate(
            group_by=["s.s_name"],
            aggregates=[("count", None, "numwait")],
        )
        .order_by([("numwait", False), ("s.s_name", True)], limit=100)
        .plan()
    )


def q22() -> PlanNode:
    """Global sales opportunity: customers without orders (anti join)."""
    return (
        _c()
        .where(col("c.c_acctbal") > lit(0.0))
        .anti_join(_o(), on=[("c.c_custkey", "o.o_custkey")])
        .aggregate(
            group_by=["c.c_nationkey"],
            aggregates=[
                ("count", None, "numcust"),
                ("sum", col("c.c_acctbal"), "totacctbal"),
            ],
        )
        .order_by(["c.c_nationkey"])
        .plan()
    )


#: All 22 queries by name.
ALL_QUERIES: dict[str, Callable[[], PlanNode]] = {
    f"Q{i}": fn
    for i, fn in enumerate(
        (
            q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11,
            q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22,
        ),
        start=1,
    )
}

#: Queries excluded from the paper's runtime totals (Figures 7/8): 13 and
#: 22 did not finish within an hour on the paper's MySQL-based testbed.
RUNTIME_EXCLUDED = ("Q13", "Q22")


def runtime_queries() -> dict[str, PlanNode]:
    """The 20 queries of Figures 7/8 as built plans."""
    return {
        name: fn()
        for name, fn in ALL_QUERIES.items()
        if name not in RUNTIME_EXCLUDED
    }
