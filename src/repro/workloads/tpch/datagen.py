"""A dbgen-like TPC-H data generator (seeded, pure Python).

Faithful to the distributions the partitioning experiments depend on:
uniform foreign-key references, ~4 lineitems per order, each part supplied
by 4 suppliers, and one third of customers without orders (which exercises
the PREF orphan path and TPC-H Q22's anti join).  Absolute values
(prices, names) are simplified — the design algorithms and the executor
only care about join keys, dates, and a handful of categorical columns.
"""

from __future__ import annotations

import random

from repro.storage.table import Database
from repro.workloads.tpch.schema import (
    BASE_ROWS,
    MAX_ORDER_DAY,
    tpch_schema,
)

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
SHIP_INSTRUCTIONS = [
    "COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN",
]
BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]
TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]
CONTAINERS = [
    f"{a} {b}"
    for a in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for b in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]
SUPPLIERS_PER_PART = 4


def scaled_rows(scale_factor: float) -> dict[str, int]:
    """Target row counts for *scale_factor* (lineitem is approximate)."""
    counts = {}
    for table, base in BASE_ROWS.items():
        if table in ("region", "nation"):
            counts[table] = base
        else:
            counts[table] = max(1, int(base * scale_factor))
    return counts


def generate_tpch(scale_factor: float = 0.01, seed: int = 0) -> Database:
    """Generate a TPC-H database at *scale_factor* (deterministic)."""
    rng = random.Random(seed)
    counts = scaled_rows(scale_factor)
    database = Database(tpch_schema())

    database.load(
        "region", [(key, name) for key, name in enumerate(REGIONS)]
    )
    database.load(
        "nation",
        [(key, name, region) for key, (name, region) in enumerate(NATIONS)],
    )

    supplier_count = counts["supplier"]
    database.load(
        "supplier",
        [
            (
                key,
                f"Supplier#{key:09d}",
                rng.randrange(len(NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for key in range(1, supplier_count + 1)
        ],
    )

    customer_count = counts["customer"]
    database.load(
        "customer",
        [
            (
                key,
                f"Customer#{key:09d}",
                rng.randrange(len(NATIONS)),
                rng.choice(SEGMENTS),
                round(rng.uniform(-999.99, 9999.99), 2),
                f"{10 + key % 25}-{key % 1000:03d}-{key % 10000:04d}",
            )
            for key in range(1, customer_count + 1)
        ],
    )

    part_count = counts["part"]
    database.load(
        "part",
        [
            (
                key,
                f"part {key}",
                f"Manufacturer#{1 + key % 5}",
                rng.choice(BRANDS),
                rng.choice(TYPES),
                1 + rng.randrange(50),
                rng.choice(CONTAINERS),
                round(900 + (key % 1000) + key / 10.0, 2),
            )
            for key in range(1, part_count + 1)
        ],
    )

    # Each part has SUPPLIERS_PER_PART suppliers, dbgen's offset pattern.
    partsupp_rows = []
    for part_key in range(1, part_count + 1):
        for i in range(SUPPLIERS_PER_PART):
            supp_key = 1 + (
                part_key + i * (supplier_count // SUPPLIERS_PER_PART or 1)
            ) % supplier_count
            partsupp_rows.append(
                (
                    part_key,
                    supp_key,
                    1 + rng.randrange(9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                )
            )
    # Deduplicate the rare (partkey, suppkey) collisions from the modulo.
    seen: set[tuple[int, int]] = set()
    unique_partsupp = []
    for row in partsupp_rows:
        key = (row[0], row[1])
        if key not in seen:
            seen.add(key)
            unique_partsupp.append(row)
    database.load("partsupp", unique_partsupp)
    partsupp_keys = [row[:2] for row in unique_partsupp]

    # One third of customers place no orders (dbgen skips custkey % 3 == 0).
    ordering_customers = [
        key for key in range(1, customer_count + 1) if key % 3 != 0
    ] or [1]
    order_count = counts["orders"]
    order_rows = []
    order_dates = {}
    for key in range(1, order_count + 1):
        order_date = rng.randrange(MAX_ORDER_DAY + 1)
        order_dates[key] = order_date
        order_rows.append(
            (
                key,
                rng.choice(ordering_customers),
                rng.choice("OFP"),
                0.0,  # filled from lineitems below
                order_date,
                rng.choice(PRIORITIES),
                0,
            )
        )
    lineitem_rows = []
    totals = {}
    target_lines = counts["lineitem"]
    per_order = max(1, round(target_lines / order_count))
    for order_key in range(1, order_count + 1):
        lines = rng.randrange(1, 2 * per_order + 1)
        order_date = order_dates[order_key]
        total = 0.0
        for line_number in range(1, lines + 1):
            part_key, supp_key = rng.choice(partsupp_keys)
            quantity = float(1 + rng.randrange(50))
            extended = round(quantity * (900 + part_key % 1000) / 10.0, 2)
            discount = rng.randrange(11) / 100.0
            tax = rng.randrange(9) / 100.0
            ship_date = order_date + 1 + rng.randrange(121)
            commit_date = order_date + 30 + rng.randrange(61)
            receipt_date = ship_date + 1 + rng.randrange(30)
            status = "F" if ship_date <= MAX_ORDER_DAY else "O"
            returnflag = (
                rng.choice("AR") if receipt_date <= MAX_ORDER_DAY - 30 else "N"
            )
            lineitem_rows.append(
                (
                    order_key,
                    line_number,
                    part_key,
                    supp_key,
                    quantity,
                    extended,
                    discount,
                    tax,
                    returnflag,
                    status,
                    ship_date,
                    commit_date,
                    receipt_date,
                    rng.choice(SHIP_INSTRUCTIONS),
                    rng.choice(SHIP_MODES),
                )
            )
            total += extended * (1 - discount) * (1 + tax)
        totals[order_key] = round(total, 2)
    order_rows = [
        row[:3] + (totals.get(row[0], 0.0),) + row[4:] for row in order_rows
    ]
    database.load("orders", order_rows)
    database.load("lineitem", lineitem_rows)
    return database
