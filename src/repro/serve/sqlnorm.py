"""SQL text normalisation for the serving layer's cache keys.

Two submissions of the "same" query rarely arrive byte-identical: clients
vary whitespace, line breaks and keyword capitalisation.  The plan and
result caches key on a canonical rendering of the *token stream* instead
of the raw text, so those cosmetic differences collapse onto one cache
entry while anything semantically distinct (different literals, different
identifiers) stays distinct.

The lexer already lowercases keywords; identifiers keep their case
because the planner resolves them case-sensitively.  String literals are
re-quoted and numbers keep their source spelling — ``1.50`` and ``1.5``
are different keys, which only costs a duplicate cache entry, never a
wrong answer.
"""

from __future__ import annotations

from repro.sql.lexer import Token, TokenType, tokenize


def _render(token: Token) -> str:
    if token.type is TokenType.STRING:
        return f"'{token.value}'"
    return token.value


def normalize_sql(text: str) -> str:
    """The canonical cache key of *text* (whitespace/case-insensitive).

    Raises:
        SqlSyntaxError: If the text cannot be tokenised; callers should
            let the parse path report the error instead of caching it.
    """
    return " ".join(
        _render(token)
        for token in tokenize(text)
        if token.type is not TokenType.END
    )
