"""Admission-control primitives: tickets and the readers-writer lock.

The server applies *queue-based load leveling*: a bounded FIFO queue in
front of a fixed pool of executor workers sized to the engine backend.
Overflow is rejected at submit time (fail fast, callers can back off);
queued work carries an optional deadline and is rejected — not run — if
no worker picks it up in time, so a backed-up server sheds load instead
of serving arbitrarily stale latencies.

Queries run under the read side of a writer-priority readers-writer
lock; bulk loads, updates and migrations take the write side.  That
gives every query a stable snapshot (partition caches and epochs cannot
move mid-query) without serialising reads against each other.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.errors import ServeError
from repro.query.executor import QueryResult


class Ticket:
    """A submitted query: a one-shot future the server completes.

    Attributes (populated on completion):
        cache_hit: ``"result"``, ``"plan"``, or None — which cache
            served the query.
        queue_wait: Seconds spent queued before a worker picked it up.
        service_seconds: Seconds spent executing (0.0 for cache hits
            and rejected queries).
        latency: Submit-to-completion wall clock, in seconds.
    """

    def __init__(
        self,
        query_id: int,
        session_id: int,
        query: object,
        analyze: bool = False,
        query_name: str | None = None,
        deadline: float | None = None,
    ) -> None:
        self.query_id = query_id
        self.session_id = session_id
        self.query = query
        self.analyze = analyze
        self.query_name = query_name
        self.submitted_at = time.monotonic()
        self.deadline = deadline
        self.cache_hit: str | None = None
        self.queue_wait = 0.0
        self.service_seconds = 0.0
        self.latency = 0.0
        self.error: BaseException | None = None
        self._result: QueryResult | None = None
        self._done = threading.Event()

    def done(self) -> bool:
        """True once the server completed (or rejected) this query."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until completion and return the result.

        Raises:
            ServeError: If the query was rejected, timed out in the
                queue, or *timeout* elapsed before completion.
            Exception: Whatever the executor raised, re-raised here.
        """
        if not self._done.wait(timeout):
            raise ServeError(
                f"query {self.query_id} not completed within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        assert self._result is not None
        return self._result

    def _complete(
        self,
        result: QueryResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        self._result = result
        self.error = error
        self.latency = time.monotonic() - self.submitted_at
        self._done.set()


class ReadWriteLock:
    """A writer-priority readers-writer lock.

    Many readers (queries) may hold the lock concurrently; a writer
    (bulk load / migration) waits for readers to drain and excludes
    everything.  Waiting writers block new readers, so a steady query
    stream cannot starve writes.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()
