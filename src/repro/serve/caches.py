"""Bounded, table-dependent caches for the serving layer.

Both server caches are instances of one structure: an LRU map from a
normalised-SQL key to an entry that records which base tables it was
computed from.  A reverse index (table -> keys) makes epoch invalidation
O(dependent entries): when a write bumps a table's epoch the server drops
exactly the entries that read that table, never the whole cache.

* The **plan cache** stores ``(logical plan, annotated plan, tables)``.
  Re-executing a cached annotation skips parsing, planning and the
  rewriter; the physical compile still runs per execution because
  physical operators hold per-run state.  Annotations are data-dependent
  only under predicate transfer (Bloom filters embed table contents),
  but entries are epoch-invalidated uniformly — a dropped plan costs one
  re-plan, a stale Bloom filter would cost wrong answers.
* The **result cache** stores the finished rows.  Entries are only
  served while every dependent table's epoch is unchanged, enforced by
  invalidation (not by revalidation on read — the regression "teeth"
  test relies on invalidation being the load-bearing mechanism).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generic, Hashable, TypeVar

V = TypeVar("V")


@dataclass
class CacheStats:
    """Monotonic counters mirrored into the server's metrics registry."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass
class _Entry(Generic[V]):
    value: V
    tables: frozenset[str]
    epochs: dict[str, int] = field(default_factory=dict)


class TableDependentCache(Generic[V]):
    """A thread-safe LRU cache whose entries depend on base tables.

    ``capacity`` bounds the entry count; insertion beyond it evicts the
    least-recently-used entry.  ``invalidate_table`` drops every entry
    whose dependency set contains the table.  A capacity of 0 disables
    the cache (every ``get`` misses, every ``put`` is a no-op).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, _Entry[V]] = OrderedDict()
        self._dependents: dict[str, set[Hashable]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> V | None:
        """The cached value for *key*, refreshing its recency; or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def peek_epochs(self, key: Hashable) -> dict[str, int] | None:
        """The epoch snapshot recorded with *key* (introspection only)."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else dict(entry.epochs)

    def put(
        self,
        key: Hashable,
        value: V,
        tables: frozenset[str],
        epochs: dict[str, int] | None = None,
    ) -> None:
        """Insert *key* -> *value*, depending on *tables*."""
        if self.capacity == 0:
            return
        with self._lock:
            existing = self._entries.pop(key, None)
            if existing is not None:
                self._unindex(key, existing.tables)
            self._entries[key] = _Entry(value, tables, dict(epochs or {}))
            for table in tables:
                self._dependents.setdefault(table, set()).add(key)
            while len(self._entries) > self.capacity:
                victim, entry = self._entries.popitem(last=False)
                self._unindex(victim, entry.tables)
                self.stats.evictions += 1

    def invalidate_table(self, table: str) -> int:
        """Drop every entry that depends on *table*; returns the count."""
        with self._lock:
            keys = self._dependents.pop(table, None)
            if not keys:
                return 0
            dropped = 0
            for key in keys:
                entry = self._entries.pop(key, None)
                if entry is None:
                    continue
                self._unindex(key, entry.tables, skip=table)
                dropped += 1
            self.stats.invalidations += dropped
            return dropped

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self._dependents.clear()

    def _unindex(
        self, key: Hashable, tables: frozenset[str], skip: str | None = None
    ) -> None:
        for table in tables:
            if table == skip:
                continue
            keys = self._dependents.get(table)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._dependents[table]
