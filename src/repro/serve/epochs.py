"""Per-table epoch tracking: the serving layer's invalidation clock.

Every mutation admitted through the server (bulk load, insert, update,
delete, migration) bumps the epoch of each table whose *contents* can
have changed — the written table plus every table reachable through PREF
references, because referenced-side inserts propagate copies into
referencing tables and flip their hasS bits (see
:meth:`~repro.partitioning.bulk_loader.BulkLoader._propagate`).  Cache
entries record the tables they depend on; a bump drops every dependent
entry, the same discipline :meth:`Partition.invalidate_caches` applies to
the storage-level columnar caches.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import PrefScheme


class EpochTracker:
    """Monotonic per-table epochs with PREF-closure write amplification."""

    def __init__(self, config: PartitioningConfig) -> None:
        self._lock = threading.Lock()
        self._epochs: dict[str, int] = {table: 0 for table in config.tables}
        #: referenced table -> directly referencing PREF tables.
        referencing: dict[str, list[str]] = {}
        for table in config.tables:
            scheme = config.scheme_of(table)
            if isinstance(scheme, PrefScheme):
                referencing.setdefault(scheme.referenced_table, []).append(
                    table
                )
        #: table -> every table whose contents a write to it can touch
        #: (itself plus transitive referencers).
        self._closure: dict[str, frozenset[str]] = {}
        for table in config.tables:
            seen: set[str] = set()
            frontier = [table]
            while frontier:
                current = frontier.pop()
                if current in seen:
                    continue
                seen.add(current)
                frontier.extend(referencing.get(current, ()))
            self._closure[table] = frozenset(seen)

    def closure(self, table: str) -> frozenset[str]:
        """Tables affected by a write to *table* (including itself)."""
        return self._closure.get(table, frozenset((table,)))

    def current(self, table: str) -> int:
        """The current epoch of *table* (0 if never written)."""
        with self._lock:
            return self._epochs.get(table, 0)

    def snapshot(self, tables: Iterable[str]) -> dict[str, int]:
        """Current epochs of *tables*, as one consistent reading."""
        with self._lock:
            return {table: self._epochs.get(table, 0) for table in tables}

    def bump(self, tables: Iterable[str]) -> frozenset[str]:
        """Advance the epoch of every table affected by writing *tables*.

        Returns the full affected set (write closure) so callers can
        invalidate dependent cache entries.
        """
        affected: set[str] = set()
        for table in tables:
            affected |= self.closure(table)
        with self._lock:
            for table in affected:
                self._epochs[table] = self._epochs.get(table, 0) + 1
        return frozenset(affected)
