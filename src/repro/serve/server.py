"""The concurrent query-serving front end over a simulated cluster.

``ClusterServer`` turns the one-query-at-a-time :class:`SimulatedCluster`
into a sustained-QPS serving layer::

    cluster = SimulatedCluster.partition(database, config)
    with cluster.serve(queue_depth=128) as server:
        session = server.session("app")
        ticket = session.submit("SELECT COUNT(*) AS n FROM orders o")
        print(ticket.result().rows)
        server.load({"orders": new_rows})       # bumps epochs, drops
        print(session.execute(                  # dependent cache entries
            "SELECT COUNT(*) AS n FROM orders o").rows)

Architecture (one PR-sized subsystem, four cooperating parts):

1. **Sessions** hand out tickets for concurrent SQL (or logical-plan)
   submissions; a ticket is a one-shot future completed by a worker.
2. **Admission control** — a bounded FIFO queue feeding ``max_inflight``
   worker threads sized to the engine backend's worker count.  Overflow
   is rejected at submit; queued queries past their deadline are
   rejected when popped (queue-based load leveling).
3. **Plan cache** — normalised SQL text -> (logical plan, annotated
   plan).  Parse + plan + rewrite run once; re-executions compile the
   cached annotation (physical operators are per-run state).
4. **Result cache** — normalised SQL text -> finished rows, invalidated
   by per-table epochs: every admitted write bumps the epochs of its
   PREF write-closure and drops dependent entries, mirroring the
   ``Partition.invalidate_caches()`` discipline at the serving layer.

Queries execute under the read side of a writer-priority RW lock and
writes under the write side, so a query never observes a half-applied
bulk load and a cached entry is never installed concurrently with the
write that would invalidate it.

Every counter and latency histogram flows through one
:class:`~repro.obs.metrics.MetricsRegistry` (``server.metrics``);
:meth:`ClusterServer.metrics_summary` reduces it to p50/p99 latencies,
queue-depth quantiles and cache hit rates for benchmarks and dashboards.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import AdmissionError, QueryTimeoutError
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.query.executor import QueryResult
from repro.query.plan import PlanNode, referenced_tables
from repro.serve.admission import ReadWriteLock, Ticket
from repro.serve.caches import TableDependentCache
from repro.serve.epochs import EpochTracker
from repro.serve.sqlnorm import normalize_sql
from repro.sql.planner import sql_to_plan, strip_explain

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.cluster.cluster import SimulatedCluster

#: Default bound of the admission queue.
DEFAULT_QUEUE_DEPTH = 128

_CLOSE = object()  # worker-shutdown sentinel


class _PlannedQuery:
    """A plan-cache entry: everything execution needs except compiling."""

    __slots__ = ("plan", "annotated", "tables")

    def __init__(self, plan: PlanNode, annotated, tables: frozenset[str]):
        self.plan = plan
        self.annotated = annotated
        self.tables = tables


class Session:
    """A client connection: a submission handle bound to one server.

    Sessions are cheap, thread-safe, and exist so concurrent clients are
    distinguishable in traces and metrics; they hold no query state
    beyond their counters.
    """

    def __init__(self, server: "ClusterServer", session_id: int, name: str):
        self.server = server
        self.session_id = session_id
        self.name = name
        self.submitted = 0
        self.completed = 0

    def submit(
        self,
        query: str | PlanNode,
        analyze: bool = False,
        query_name: str | None = None,
    ) -> Ticket:
        """Submit a query for asynchronous execution (see server.submit)."""
        return self.server.submit(
            query, analyze=analyze, query_name=query_name, session=self
        )

    def execute(
        self,
        query: str | PlanNode,
        analyze: bool = False,
        query_name: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Submit and block for the result."""
        return self.submit(
            query, analyze=analyze, query_name=query_name
        ).result(timeout)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"Session({self.name!r}, id={self.session_id})"


class ClusterServer:
    """A thread-based serving layer over one :class:`SimulatedCluster`.

    Args:
        cluster: The cluster to serve; its executor and backend are
            shared by all workers (the engine's per-query state is
            per-execution, so concurrent executions are independent).
        max_inflight: Executor worker threads — the maximum number of
            queries in execution at once.  Defaults to the engine
            backend's worker count, the paper-appropriate sizing: more
            in-flight queries than engine workers only adds queueing
            inside the engine.
        queue_depth: Bound of the admission queue (None for unbounded).
            A full queue rejects new submissions with
            :class:`~repro.errors.AdmissionError`.
        queue_timeout: Per-query deadline in seconds, measured from
            submission; a query still queued past it is rejected with
            :class:`~repro.errors.QueryTimeoutError` instead of run.
            None disables deadlines.
        plan_cache_size: Entry bound of the plan cache (0 disables).
        result_cache_size: Entry bound of the result cache (0 disables).
        metrics: Registry to record into (default: a fresh one).
    """

    def __init__(
        self,
        cluster: "SimulatedCluster",
        max_inflight: int | None = None,
        queue_depth: int | None = DEFAULT_QUEUE_DEPTH,
        queue_timeout: float | None = None,
        plan_cache_size: int = 256,
        result_cache_size: int = 512,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_inflight is None:
            max_inflight = getattr(cluster.backend, "max_workers", None) or (
                os.cpu_count() or 4
            )
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_timeout is not None and queue_timeout <= 0:
            raise ValueError(
                f"queue_timeout must be positive, got {queue_timeout}"
            )
        self.cluster = cluster
        self.max_inflight = max_inflight
        self.queue_timeout = queue_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.epochs = EpochTracker(cluster.config)
        self.plan_cache: TableDependentCache[_PlannedQuery] = (
            TableDependentCache(plan_cache_size)
        )
        self.result_cache: TableDependentCache[QueryResult] = (
            TableDependentCache(result_cache_size)
        )
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth or 0)
        self._lock = ReadWriteLock()
        self._state_lock = threading.Lock()
        self._workers: list[threading.Thread] = []
        self._started = False
        self._closed = False
        self._query_ids = itertools.count(1)
        self._session_ids = itertools.count(1)
        self._default_session: Session | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterServer":
        """Spawn the worker pool (idempotent)."""
        with self._state_lock:
            if self._closed:
                raise AdmissionError("server is closed")
            if self._started:
                return self
            self._started = True
            for index in range(self.max_inflight):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        return self

    def close(self) -> None:
        """Drain queued queries, stop the workers (idempotent).

        Queries already admitted are completed; new submissions are
        rejected.  The cluster itself stays open (callers own it).
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if started:
            # FIFO guarantees every admitted ticket is popped before the
            # sentinels, so close() is a graceful drain.
            for _ in self._workers:
                self._queue.put(_CLOSE)
            for worker in self._workers:
                worker.join()
        while True:  # belt and braces: complete anything left behind
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, Ticket):
                item._complete(error=AdmissionError("server closed"))

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions and submission -------------------------------------------

    def session(self, name: str | None = None) -> Session:
        """Open a new session."""
        session_id = next(self._session_ids)
        self.metrics.inc("serve.sessions")
        return Session(self, session_id, name or f"session-{session_id}")

    def _default(self) -> Session:
        with self._state_lock:
            if self._default_session is None:
                self._default_session = Session(self, 0, "default")
        return self._default_session

    def submit(
        self,
        query: str | PlanNode,
        analyze: bool = False,
        query_name: str | None = None,
        session: Session | None = None,
    ) -> Ticket:
        """Admit *query* (SQL text or a logical plan) for execution.

        Returns a :class:`~repro.serve.admission.Ticket` immediately;
        ``ticket.result()`` blocks for the outcome.

        Raises:
            AdmissionError: If the server is closed or the admission
                queue is full (fail-fast overflow rejection).
        """
        if self._closed:
            raise AdmissionError("server is closed")
        if not self._started:
            self.start()
        if session is None:
            session = self._default()
        deadline = (
            time.monotonic() + self.queue_timeout
            if self.queue_timeout is not None
            else None
        )
        ticket = Ticket(
            next(self._query_ids),
            session.session_id,
            query,
            analyze=analyze,
            query_name=query_name,
            deadline=deadline,
        )
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            self.metrics.inc("serve.admission.rejected")
            raise AdmissionError(
                f"admission queue full ({self._queue.maxsize} queued); "
                "retry with backoff"
            ) from None
        session.submitted += 1
        self.metrics.inc("serve.submitted")
        self.metrics.observe(
            "serve.queue_depth", self._queue.qsize(), DEPTH_BUCKETS
        )
        return ticket

    def execute(
        self,
        query: str | PlanNode,
        analyze: bool = False,
        query_name: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Submit on the default session and block for the result."""
        return self.submit(
            query, analyze=analyze, query_name=query_name
        ).result(timeout)

    # -- writes ------------------------------------------------------------

    def load(
        self,
        batches: dict[str, Sequence[Sequence]],
        maintain_referencing: bool = True,
    ):
        """Bulk-load one batch per table (exclusive; bumps epochs)."""
        return self._write(
            batches.keys(),
            lambda: self.cluster.loader.load(
                batches, maintain_referencing=maintain_referencing
            ),
        )

    def insert(
        self,
        table: str,
        rows: Iterable[Sequence],
        maintain_referencing: bool = True,
    ):
        """Insert rows into *table* (exclusive; bumps epochs)."""
        return self._write(
            (table,),
            lambda: self.cluster.loader.insert(
                table, rows, maintain_referencing=maintain_referencing
            ),
        )

    def delete(self, table: str, where: Callable) -> int:
        """Delete matching rows from *table* (exclusive; bumps epochs)."""
        return self._write(
            (table,), lambda: self.cluster.loader.delete(table, where)
        )

    def update(self, table: str, where: Callable, apply: Callable) -> int:
        """Update matching rows of *table* (exclusive; bumps epochs)."""
        return self._write(
            (table,), lambda: self.cluster.loader.update(table, where, apply)
        )

    def invalidate(self, tables: Iterable[str]) -> frozenset[str]:
        """Manually bump epochs for *tables* (e.g. after an external
        migration touched the partitioned database directly)."""
        with self._lock.write():
            return self._bump(tables)

    def migrate(self, new_config):
        """Repartition the served cluster online under *new_config*.

        Runs :meth:`SimulatedCluster.repartition` under the write side of
        the readers-writer lock: every in-flight query drains first, and
        no new query starts against a half-migrated store — readers see
        either the old or the new placement, never a mix.  Both caches
        are cleared wholesale (cached annotations/plans reference the old
        partitioned tables, so epoch bumps alone would not be enough) and
        the epoch tracker is rebuilt for the new configuration's PREF
        closure.  Returns the migration plan.
        """
        started = time.monotonic()
        with self._lock.write():
            plan = self.cluster.repartition(new_config)
            self.epochs = EpochTracker(new_config)
            self.plan_cache.clear()
            self.result_cache.clear()
        self.metrics.inc("serve.migrations")
        self.metrics.observe(
            "time.serve.migration_seconds",
            time.monotonic() - started,
            LATENCY_BUCKETS,
        )
        return plan

    def _write(self, tables: Iterable[str], apply: Callable):
        tables = tuple(tables)
        started = time.monotonic()
        with self._lock.write():
            outcome = apply()
            self._bump(tables)
        self.metrics.inc("serve.writes")
        self.metrics.observe(
            "time.serve.write_seconds",
            time.monotonic() - started,
            LATENCY_BUCKETS,
        )
        return outcome

    def _bump(self, tables: Iterable[str]) -> frozenset[str]:
        """Advance epochs of the write closure and drop dependents.

        Called under the write lock: no query is in flight, so no stale
        entry can be installed concurrently (workers insert into the
        caches while still holding the read lock).
        """
        affected = self.epochs.bump(tables)
        dropped_plans = dropped_results = 0
        for table in affected:
            dropped_plans += self.plan_cache.invalidate_table(table)
            dropped_results += self.result_cache.invalidate_table(table)
        if dropped_plans:
            self.metrics.inc("serve.plan_cache.invalidations", dropped_plans)
        if dropped_results:
            self.metrics.inc(
                "serve.result_cache.invalidations", dropped_results
            )
        return affected

    # -- execution ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                return
            self._serve_one(item)

    def _serve_one(self, ticket: Ticket) -> None:
        now = time.monotonic()
        ticket.queue_wait = now - ticket.submitted_at
        self.metrics.observe(
            "time.serve.queue_wait_seconds", ticket.queue_wait, LATENCY_BUCKETS
        )
        if ticket.deadline is not None and now > ticket.deadline:
            self.metrics.inc("serve.admission.timeouts")
            ticket._complete(
                error=QueryTimeoutError(
                    f"query {ticket.query_id} queued for "
                    f"{ticket.queue_wait:.3f}s, past its "
                    f"{self.queue_timeout}s deadline"
                )
            )
            return
        started = time.monotonic()
        try:
            with self._lock.read():
                result, cache_hit = self._run(ticket)
        except BaseException as error:  # noqa: BLE001 - completes the ticket
            self.metrics.inc("serve.errors")
            ticket._complete(error=error)
            return
        ticket.service_seconds = time.monotonic() - started
        ticket.cache_hit = cache_hit
        ticket._complete(result=result)
        self.metrics.inc("serve.completed")
        self.metrics.observe(
            "time.serve.service_seconds",
            ticket.service_seconds,
            LATENCY_BUCKETS,
        )
        self.metrics.observe(
            "time.serve.latency_seconds", ticket.latency, LATENCY_BUCKETS
        )

    def _run(self, ticket: Ticket) -> tuple[QueryResult, str | None]:
        """Execute one admitted query (read lock held by the caller)."""
        query = ticket.query
        executor = self.cluster.executor
        if isinstance(query, PlanNode):
            # Logical plans have no canonical text form: execute
            # uncached (the session layer is primarily a SQL front end).
            annotated = executor.annotate(query)
            return (
                executor.execute_annotated(
                    annotated,
                    analyze=ticket.analyze,
                    query_name=ticket.query_name,
                ),
                None,
            )
        mode, body = strip_explain(query)
        if mode is not None:
            # EXPLAIN [ANALYZE] renders plan text; never cached.
            return self.cluster.sql(query), None
        key = normalize_sql(body)
        if not ticket.analyze:
            cached = self.result_cache.get(key)
            if cached is not None:
                self.metrics.inc("serve.result_cache.hits")
                # Share the immutable payload, copy the mutable row list.
                return replace(cached, rows=list(cached.rows)), "result"
            self.metrics.inc("serve.result_cache.misses")
        planned = self.plan_cache.get(key)
        plan_hit = planned is not None
        if planned is None:
            self.metrics.inc("serve.plan_cache.misses")
            plan = sql_to_plan(body, self.cluster.database.schema)
            tables = referenced_tables(plan)
            planned = _PlannedQuery(plan, executor.annotate(plan), tables)
            self.plan_cache.put(
                key, planned, tables, self.epochs.snapshot(tables)
            )
        else:
            self.metrics.inc("serve.plan_cache.hits")
        result = executor.execute_annotated(
            planned.annotated,
            analyze=ticket.analyze,
            query_name=ticket.query_name,
        )
        if not ticket.analyze:
            # Cache a snapshot with its own row list: the caller owns the
            # returned result and may mutate result.rows.
            self.result_cache.put(
                key,
                replace(result, rows=list(result.rows)),
                planned.tables,
                self.epochs.snapshot(planned.tables),
            )
        return result, ("plan" if plan_hit else None)

    # -- reporting ---------------------------------------------------------

    def metrics_summary(self) -> dict:
        """Serving health at a glance: throughput counters, cache hit
        rates, and latency/queue quantiles estimated from the registry's
        fixed-bucket histograms."""
        counters = self.metrics.counters

        def histogram(name: str):
            return self.metrics.histograms.get(name)

        def quantiles(name: str) -> dict:
            h = histogram(name)
            if h is None or h.count == 0:
                return {"count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0}
            return {
                "count": h.count,
                "p50": h.quantile(0.5),
                "p99": h.quantile(0.99),
                "mean": h.total / h.count,
            }

        return {
            "submitted": int(counters.get("serve.submitted", 0)),
            "completed": int(counters.get("serve.completed", 0)),
            "errors": int(counters.get("serve.errors", 0)),
            "writes": int(counters.get("serve.writes", 0)),
            "admission": {
                "rejected": int(counters.get("serve.admission.rejected", 0)),
                "timeouts": int(counters.get("serve.admission.timeouts", 0)),
                "queue_depth": quantiles("serve.queue_depth"),
            },
            "plan_cache": {
                "entries": len(self.plan_cache),
                "hits": self.plan_cache.stats.hits,
                "misses": self.plan_cache.stats.misses,
                "hit_rate": self.plan_cache.stats.hit_rate(),
                "evictions": self.plan_cache.stats.evictions,
                "invalidations": self.plan_cache.stats.invalidations,
            },
            "result_cache": {
                "entries": len(self.result_cache),
                "hits": self.result_cache.stats.hits,
                "misses": self.result_cache.stats.misses,
                "hit_rate": self.result_cache.stats.hit_rate(),
                "evictions": self.result_cache.stats.evictions,
                "invalidations": self.result_cache.stats.invalidations,
            },
            "latency": quantiles("time.serve.latency_seconds"),
            "queue_wait": quantiles("time.serve.queue_wait_seconds"),
            "service": quantiles("time.serve.service_seconds"),
        }

    def render_metrics(self) -> str:
        """The summary as an aligned text block (for logs and bench
        reports)."""
        summary = self.metrics_summary()

        def ms(value: float) -> str:
            return f"{value * 1000:.2f}ms"

        latency = summary["latency"]
        wait = summary["queue_wait"]
        plan = summary["plan_cache"]
        result = summary["result_cache"]
        admission = summary["admission"]
        lines = [
            "serving summary",
            f"  queries    submitted={summary['submitted']} "
            f"completed={summary['completed']} errors={summary['errors']} "
            f"writes={summary['writes']}",
            f"  admission  rejected={admission['rejected']} "
            f"timeouts={admission['timeouts']} "
            f"queue p50={admission['queue_depth']['p50']:.0f} "
            f"p99={admission['queue_depth']['p99']:.0f}",
            f"  latency    p50={ms(latency['p50'])} p99={ms(latency['p99'])} "
            f"mean={ms(latency['mean'])} (n={latency['count']})",
            f"  queue wait p50={ms(wait['p50'])} p99={ms(wait['p99'])}",
            f"  plan cache hit_rate={plan['hit_rate']:.1%} "
            f"hits={plan['hits']} misses={plan['misses']} "
            f"evictions={plan['evictions']} "
            f"invalidations={plan['invalidations']}",
            f"  result cache hit_rate={result['hit_rate']:.1%} "
            f"hits={result['hits']} misses={result['misses']} "
            f"evictions={result['evictions']} "
            f"invalidations={result['invalidations']}",
        ]
        return "\n".join(lines)
