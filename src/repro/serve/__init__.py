"""repro.serve — the concurrent query-serving layer.

A thread-based server front end over :class:`~repro.cluster.SimulatedCluster`:
sessions for concurrent SQL submission, bounded-queue admission control,
a plan cache keyed on normalised SQL, and an epoch-invalidated result
cache.  See :mod:`repro.serve.server` for the architecture overview.
"""

from repro.errors import AdmissionError, QueryTimeoutError, ServeError
from repro.serve.admission import ReadWriteLock, Ticket
from repro.serve.caches import CacheStats, TableDependentCache
from repro.serve.epochs import EpochTracker
from repro.serve.server import (
    DEFAULT_QUEUE_DEPTH,
    ClusterServer,
    Session,
)
from repro.serve.sqlnorm import normalize_sql

__all__ = [
    "AdmissionError",
    "CacheStats",
    "ClusterServer",
    "DEFAULT_QUEUE_DEPTH",
    "EpochTracker",
    "QueryTimeoutError",
    "ReadWriteLock",
    "ServeError",
    "Session",
    "TableDependentCache",
    "Ticket",
    "normalize_sql",
]
