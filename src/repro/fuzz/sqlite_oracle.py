"""Second, external reference: translate the case IR to SQL for sqlite3.

The stdlib ``sqlite3`` engine has had its NULL semantics battle-tested
for decades, which makes it the ideal cross-check for the hand-written
oracle — if both agree with each other and with the engine, the odds of
a shared misunderstanding of three-valued logic are small.

Translation notes (where sqlite differs from naive Python evaluation):

* ``/`` is integer division in sqlite for two integers, so every IR
  division is emitted as ``CAST(l AS REAL) / r`` to match Python's
  ``truediv``; division by zero then yields NULL on both sides.
* Booleans are stored as 1/0; the differ compares ``True == 1``.
* Semi/anti joins become correlated ``EXISTS`` / ``NOT EXISTS``.
* Column names are globally unique per query (alias-qualified), so the
  generated SQL never needs range variables — every reference is a
  double-quoted name like ``"a0.fk_t1"``.
"""

from __future__ import annotations

import sqlite3

Row = tuple

_TYPE_AFFINITY = {
    "integer": "INTEGER",
    "float": "REAL",
    "varchar": "TEXT",
    "boolean": "INTEGER",
}

_AGG_SQL = {
    "sum": "SUM",
    "avg": "AVG",
    "min": "MIN",
    "max": "MAX",
}


class SqlTranslationError(Exception):
    """The query IR has no faithful SQL rendering."""


def run_sqlite(
    schemas: dict[str, list[tuple[str, str]]],
    tables: dict[str, tuple[list[str], list[Row]]],
    query: dict,
) -> list[Row]:
    """Evaluate *query* in an in-memory sqlite database.

    Args:
        schemas: ``{table: [(column, dtype), ...]}``.
        tables: Current content, ``{table: (columns, rows)}``.
        query: Query IR.

    Returns:
        Result rows (order unspecified).
    """
    sql = query_sql(query, schemas)
    connection = sqlite3.connect(":memory:")
    try:
        for name, columns in schemas.items():
            decls = ", ".join(
                f'{_quote(col)} {_TYPE_AFFINITY[dtype]}'
                for col, dtype in columns
            )
            connection.execute(f"CREATE TABLE {_quote(name)} ({decls})")
            _cols, rows = tables[name]
            if rows:
                marks = ", ".join("?" * len(columns))
                connection.executemany(
                    f"INSERT INTO {_quote(name)} VALUES ({marks})",
                    [tuple(row) for row in rows],
                )
        return [tuple(row) for row in connection.execute(sql)]
    finally:
        connection.close()


# -- query translation -----------------------------------------------------


def query_sql(node: dict, schemas: dict[str, list[tuple[str, str]]]) -> str:
    """Render query IR *node* as a single sqlite SELECT statement."""
    op = node["op"]
    if op == "scan":
        alias = node.get("alias") or node["table"]
        try:
            columns = schemas[node["table"]]
        except KeyError:
            raise SqlTranslationError(
                f"unknown table {node['table']!r}"
            ) from None
        qualified = ", ".join(
            f"{_quote(col)} AS {_quote(f'{alias}.{col}')}"
            for col, _dtype in columns
        )
        return f"SELECT {qualified} FROM {_quote(node['table'])}"
    if op == "filter":
        return (
            f"SELECT * FROM ({query_sql(node['input'], schemas)}) "
            f"WHERE {_expr_sql(node['pred'])}"
        )
    if op == "project":
        distinct = "DISTINCT " if node.get("distinct") else ""
        outputs = ", ".join(
            f"{_expr_sql(expr)} AS {_quote(name)}"
            for name, expr in node["outputs"]
        )
        return (
            f"SELECT {distinct}{outputs} "
            f"FROM ({query_sql(node['input'], schemas)})"
        )
    if op == "join":
        return _join_sql(node, schemas)
    if op == "aggregate":
        return _aggregate_sql(node, schemas)
    if op == "order_by":
        # No LIMIT is ever generated; ordering is invisible to the
        # multiset comparison, so the node is a pass-through.
        return f"SELECT * FROM ({query_sql(node['input'], schemas)})"
    raise SqlTranslationError(f"unknown query IR op {op!r}")


def _join_sql(node: dict, schemas: dict) -> str:
    left = query_sql(node["left"], schemas)
    right = query_sql(node["right"], schemas)
    conds = [
        f"{_quote(l)} = {_quote(r)}" for l, r in node.get("on", ())
    ]
    if node.get("residual") is not None:
        conds.append(_expr_sql(node["residual"]))
    cond = " AND ".join(conds) if conds else "1"
    kind = node["kind"]
    if kind in ("inner", "cross"):
        return f"SELECT * FROM ({left}) JOIN ({right}) ON {cond}"
    if kind == "left_outer":
        return f"SELECT * FROM ({left}) LEFT JOIN ({right}) ON {cond}"
    if kind in ("semi", "anti"):
        exists = "EXISTS" if kind == "semi" else "NOT EXISTS"
        return (
            f"SELECT * FROM ({left}) WHERE {exists} "
            f"(SELECT 1 FROM ({right}) WHERE {cond})"
        )
    raise SqlTranslationError(f"unknown join kind {kind!r}")


def _aggregate_sql(node: dict, schemas: dict) -> str:
    group_by = list(node.get("group_by", ()))
    selects = [_quote(name) for name in group_by]
    for func, expr, name in node["aggs"]:
        if func == "count" and expr is None:
            selects.append(f"COUNT(*) AS {_quote(name)}")
        elif func == "count":
            selects.append(f"COUNT({_expr_sql(expr)}) AS {_quote(name)}")
        elif func == "count_distinct":
            selects.append(
                f"COUNT(DISTINCT {_expr_sql(expr)}) AS {_quote(name)}"
            )
        elif func in _AGG_SQL:
            selects.append(
                f"{_AGG_SQL[func]}({_expr_sql(expr)}) AS {_quote(name)}"
            )
        else:
            raise SqlTranslationError(f"unknown aggregate {func!r}")
    sql = (
        f"SELECT {', '.join(selects)} "
        f"FROM ({query_sql(node['input'], schemas)})"
    )
    if group_by:
        sql += " GROUP BY " + ", ".join(_quote(name) for name in group_by)
    return sql


# -- expression translation ------------------------------------------------


def _expr_sql(node: dict) -> str:
    kind = node["t"]
    if kind == "col":
        return _quote(node["name"])
    if kind == "lit":
        return _literal_sql(node["v"])
    if kind == "cmp":
        return f"({_expr_sql(node['l'])} {node['op']} {_expr_sql(node['r'])})"
    if kind == "arith":
        lhs, rhs, op = _expr_sql(node["l"]), _expr_sql(node["r"]), node["op"]
        if op == "/":
            # Match Python truediv; sqlite divides integers integrally.
            return f"(CAST({lhs} AS REAL) / {rhs})"
        return f"({lhs} {op} {rhs})"
    if kind in ("and", "or"):
        joiner = f" {kind.upper()} "
        return "(" + joiner.join(_expr_sql(a) for a in node["args"]) + ")"
    if kind == "not":
        return f"(NOT {_expr_sql(node['arg'])})"
    if kind == "isnull":
        test = "IS NOT NULL" if node.get("neg") else "IS NULL"
        return f"({_expr_sql(node['arg'])} {test})"
    if kind == "inlist":
        vals = node["vals"]
        if not vals:
            return "(1)" if node.get("neg") else "(0)"
        rendered = ", ".join(_literal_sql(v) for v in vals)
        test = "NOT IN" if node.get("neg") else "IN"
        return f"({_expr_sql(node['arg'])} {test} ({rendered}))"
    raise SqlTranslationError(f"unknown expression IR node {kind!r}")


def _literal_sql(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise SqlTranslationError(f"untranslatable literal {value!r}")


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'
