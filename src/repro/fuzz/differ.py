"""Row-set canonicalisation and comparison for the differential runner.

Two comparison strengths:

* **exact** — used between engine backends (serial vs thread vs process):
  the backends are required to produce *identical* row lists and
  canonical :class:`~repro.query.cost.ExecutionStats`.
* **tolerant multiset** — used against the oracles: row order is
  unspecified and floating-point aggregates may differ in the last ulp
  (two-phase partial merges sum in a different order than a naive
  single pass), so rows are sorted into a canonical order and floats
  compared with a tiny relative tolerance.  SQL type coercions are
  honoured: ``True == 1`` and ``1 == 1.0``.
"""

from __future__ import annotations

import math

from repro.engine.rows import _sort_key

Row = tuple


def canonical_rows(rows: list) -> list[Row]:
    """Rows as tuples, sorted into a total order (NULLs first)."""
    return sorted(
        (tuple(row) for row in rows),
        key=lambda row: tuple(_sort_key(value) for value in row),
    )


def values_equal(a: object, b: object, tolerance: bool = True) -> bool:
    """SQL-value equality; floats compared with tolerance when asked."""
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        # bool is an int subclass: True == 1, matching SQL storage.
        if tolerance and (isinstance(a, float) or isinstance(b, float)):
            return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
        return a == b
    return a == b


def rows_equal(a: list, b: list, tolerance: bool = True) -> bool:
    """Multiset equality of two row collections."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(canonical_rows(a), canonical_rows(b)):
        if len(row_a) != len(row_b):
            return False
        if not all(
            values_equal(va, vb, tolerance=tolerance)
            for va, vb in zip(row_a, row_b)
        ):
            return False
    return True


def diff_summary(label_a: str, a: list, label_b: str, b: list, limit: int = 3) -> str:
    """Human-readable first-differences summary for divergence reports."""
    ca, cb = canonical_rows(a), canonical_rows(b)
    lines = [f"{label_a}: {len(ca)} rows, {label_b}: {len(cb)} rows"]
    shown = 0
    for i in range(max(len(ca), len(cb))):
        row_a = ca[i] if i < len(ca) else "<missing>"
        row_b = cb[i] if i < len(cb) else "<missing>"
        if (
            row_a == "<missing>"
            or row_b == "<missing>"
            or len(row_a) != len(row_b)
            or not all(values_equal(x, y) for x, y in zip(row_a, row_b))
        ):
            lines.append(f"  row {i}: {label_a}={row_a!r} {label_b}={row_b!r}")
            shown += 1
            if shown >= limit:
                lines.append("  ...")
                break
    return "\n".join(lines)
