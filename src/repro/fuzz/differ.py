"""Row-set canonicalisation and comparison for the differential runner.

Two comparison strengths:

* **exact** — used between engine backends (serial vs thread vs process):
  the backends are required to produce *identical* row lists and
  canonical :class:`~repro.query.cost.ExecutionStats`.
* **tolerant multiset** — used against the oracles: row order is
  unspecified and floating-point aggregates may differ in the last ulp
  (two-phase partial merges sum in a different order than a naive
  single pass), so rows are sorted into a canonical order and floats
  compared with a tiny relative tolerance.  SQL type coercions are
  honoured: ``True == 1`` and ``1 == 1.0``.
"""

from __future__ import annotations

import math

from repro.engine.rows import _sort_key

Row = tuple


def canonical_rows(rows: list) -> list[Row]:
    """Rows as tuples, sorted into a total order (NULLs first)."""
    return sorted(
        (tuple(row) for row in rows),
        key=lambda row: tuple(_sort_key(value) for value in row),
    )


def values_equal(a: object, b: object, tolerance: bool = True) -> bool:
    """SQL-value equality; floats compared with tolerance when asked."""
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        # bool is an int subclass: True == 1, matching SQL storage.
        if tolerance and (isinstance(a, float) or isinstance(b, float)):
            return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
        return a == b
    return a == b


def rows_equal(a: list, b: list, tolerance: bool = True) -> bool:
    """Multiset equality of two row collections."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(canonical_rows(a), canonical_rows(b)):
        if len(row_a) != len(row_b):
            return False
        if not all(
            values_equal(va, vb, tolerance=tolerance)
            for va, vb in zip(row_a, row_b)
        ):
            return False
    return True


def span_trees_equal(a, b) -> bool:
    """Canonical (timing-free) equality of two query traces.

    *a*/*b* are :class:`~repro.obs.span.QueryTrace` objects: span-tree
    shape, row/shuffle/dup counters and merged metrics must match;
    wall times and worker identities are excluded by canonicalisation.
    """
    if a is None or b is None:
        return a is None and b is None
    return a.canonical() == b.canonical()


def span_tree_diff(label_a: str, a, label_b: str, b, limit: int = 5) -> str:
    """First-differences summary between two traces' span trees."""
    if a is None or b is None:
        return f"{label_a}: {'no trace' if a is None else 'trace'}, " \
               f"{label_b}: {'no trace' if b is None else 'trace'}"
    lines = []
    spans_a = {span.op_id: span for span in a.spans()}
    spans_b = {span.op_id: span for span in b.spans()}
    shown = 0
    for op_id in sorted(set(spans_a) | set(spans_b)):
        span_a, span_b = spans_a.get(op_id), spans_b.get(op_id)
        if span_a is None or span_b is None:
            lines.append(
                f"  op {op_id}: only in "
                f"{label_a if span_b is None else label_b}"
            )
        else:
            ca = span_a.canonical()[:-1]  # own fields, children compared
            cb = span_b.canonical()[:-1]  # via their own op_ids
            if ca == cb:
                continue
            lines.append(
                f"  op {op_id} ({span_a.label}): "
                f"{label_a} rows_out={span_a.rows_out} "
                f"shipped={span_a.rows_shipped} dup={span_a.dup_eliminated} "
                f"tasks={len(span_a.tasks)} vs "
                f"{label_b} rows_out={span_b.rows_out} "
                f"shipped={span_b.rows_shipped} dup={span_b.dup_eliminated} "
                f"tasks={len(span_b.tasks)}"
            )
        shown += 1
        if shown >= limit:
            lines.append("  ...")
            break
    if not lines and a.metrics.canonical() != b.metrics.canonical():
        lines.append("  merged metrics registries differ")
    return "\n".join([f"span trees diverge ({label_a} vs {label_b}):"] + lines)


def diff_summary(label_a: str, a: list, label_b: str, b: list, limit: int = 3) -> str:
    """Human-readable first-differences summary for divergence reports."""
    ca, cb = canonical_rows(a), canonical_rows(b)
    lines = [f"{label_a}: {len(ca)} rows, {label_b}: {len(cb)} rows"]
    shown = 0
    for i in range(max(len(ca), len(cb))):
        row_a = ca[i] if i < len(ca) else "<missing>"
        row_b = cb[i] if i < len(cb) else "<missing>"
        if (
            row_a == "<missing>"
            or row_b == "<missing>"
            or len(row_a) != len(row_b)
            or not all(values_equal(x, y) for x, y in zip(row_a, row_b))
        ):
            lines.append(f"  row {i}: {label_a}={row_a!r} {label_b}={row_b!r}")
            shown += 1
            if shown >= limit:
                lines.append("  ...")
                break
    return "\n".join(lines)
