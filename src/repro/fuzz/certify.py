"""Counterexample synthesis for static-certifier refutations.

A refutation from :func:`repro.query.certify.certify` is a *claim* that
the plan's distributed evaluation can disagree with the global result on
*some* database.  This module tries to make the claim concrete: starting
from the fuzz case the plan came from, it synthesizes a small family of
amplified databases (extra rows spreading keys across partitions,
partner-less NULL-key rows) and replays the query on each through the
distributed engine and the naive single-node oracle.  The first database
on which the two disagree is the confirmed counterexample attached to
the divergence/repro; if none disagrees, the refutation stays
unconfirmed (still a fuzz failure for rewriter-emitted plans — the
rewriter must only emit certifiable plans — but flagged separately).
"""

from __future__ import annotations

import copy

from repro.engine.backends import SerialBackend
from repro.fuzz import ir
from repro.fuzz.differ import rows_equal
from repro.fuzz.oracle import evaluate_query
from repro.partitioning.partitioner import partition_database
from repro.query.executor import Executor

#: How many fresh rows each amplification adds per table — enough to
#: reach every partition of the small fuzz clusters.
_SPREAD = 6


def _fresh_int(rows: list, position: int, step: int) -> int:
    values = [
        row[position]
        for row in rows
        if isinstance(row[position], int)
    ]
    base = max(values, default=0)
    return base + step


def _amplified_rows(table: dict, variant: str, partitions: int) -> list:
    """New rows for *table*: spread keys over partitions, or NULL keys.

    ``variant="spread"`` clones an existing row (or zero-fills) with
    fresh primary-key and integer values stepping across the hash space;
    ``variant="nulls"`` additionally NULLs every nullable non-key column
    — for PREF/foreign-key columns that manufactures partner-less rows
    and LEFT OUTER padding.
    """
    columns = table["columns"]
    pk = set(table.get("pk") or ())
    template: list = None
    if table["rows"]:
        template = list(table["rows"][0])
    new_rows = []
    for step in range(1, _SPREAD * max(1, partitions // 2) + 1):
        row = []
        for position, (name, dtype, nullable) in enumerate(columns):
            if dtype == "integer":
                if name in pk or template is None:
                    row.append(_fresh_int(table["rows"], position, step * 31 + position))
                elif variant == "nulls" and nullable and name not in pk:
                    row.append(None)
                else:
                    # Step non-key integers too: foreign keys then point
                    # at a mix of existing and missing partners.
                    base = template[position]
                    row.append(
                        (base if isinstance(base, int) else 0) + step
                        if step % 2
                        else base
                    )
            elif variant == "nulls" and nullable and name not in pk:
                row.append(None)
            elif template is not None:
                row.append(template[position])
            elif dtype == "boolean":
                row.append(False)
            else:
                row.append(f"cx{step}")
        new_rows.append(row)
    return new_rows


def amplify_case(case: dict) -> list[dict]:
    """Candidate databases for counterexample search, original first."""
    candidates = [case]
    partitions = case.get("partitions", 3)
    for variant in ("spread", "nulls"):
        amplified = copy.deepcopy(case)
        for table in amplified["tables"]:
            try:
                table["rows"].extend(
                    _amplified_rows(table, variant, partitions)
                )
            except Exception:  # noqa: BLE001 - exotic table: keep as-is
                continue
        candidates.append(amplified)
    both = copy.deepcopy(candidates[-1])
    for table in both["tables"]:
        try:
            table["rows"].extend(_amplified_rows(table, "spread", partitions))
        except Exception:  # noqa: BLE001
            continue
    candidates.append(both)
    return candidates


def replay_diverges(
    candidate: dict, query: dict, flags: dict | None = None
) -> bool:
    """Does the distributed engine disagree with the naive oracle here?

    Builds the candidate database fresh, partitions it, runs *query*
    through a serial-backend :class:`Executor` configured with *flags*
    (the rewriter options that produced the refuted plan), and compares
    multisets against :func:`evaluate_query`.  Any crash on one side
    only also counts as divergence.
    """
    flags = flags or {}
    database = ir.build_database(candidate)
    config = ir.build_config(candidate)
    config.validate(database.schema)
    partitioned = partition_database(database, config)
    executor = Executor(
        partitioned,
        optimizations=bool(flags.get("optimizations", True)),
        locality=bool(flags.get("locality", True)),
        predicate_transfer=bool(flags.get("predicate_transfer", False)),
        backend=SerialBackend(),
    )
    plan = ir.build_plan(query)
    tables = ir.case_tables(candidate)
    try:
        engine_rows = executor.execute(plan).rows
    except Exception:  # noqa: BLE001 - engine crash: divergence confirmed
        return True
    try:
        _columns, oracle_rows = evaluate_query(tables, query)
    except Exception:  # noqa: BLE001 - oracle crash: not a confirmation
        return False
    return not rows_equal(engine_rows, oracle_rows)


def confirm_refutation(
    case: dict, query: dict, flags: dict | None = None
) -> dict | None:
    """Search for a database on which the refuted plan provably diverges.

    Returns a self-contained single-query case (replayable through
    ``python -m repro.fuzz --replay``) whose engine rows differ from the
    naive oracle, or ``None`` if no candidate diverged.
    """
    for candidate in amplify_case(case):
        try:
            diverges = replay_diverges(candidate, query, flags)
        except Exception:  # noqa: BLE001 - candidate invalid (e.g. pk clash)
            continue
        if diverges:
            confirmed = copy.deepcopy(candidate)
            confirmed["queries"] = [copy.deepcopy(query)]
            confirmed["loads"] = {}
            if flags:
                confirmed["variant"] = dict(flags)
            return confirmed
    return None
