"""Naive single-node ground truth, written directly against the case IR.

This evaluator deliberately shares **no code** with the engine: nested
loops, explicit three-valued logic, hand-rolled aggregates.  Agreement
with the engine is therefore evidence that both implement SQL semantics,
not that they share a bug.  (A second, external reference — ``sqlite3``
— cross-checks this oracle in turn; see :mod:`repro.fuzz.sqlite_oracle`.)

Rows are returned as plain tuples; ordering is unspecified (the differ
compares multisets).
"""

from __future__ import annotations

Row = tuple
Relation = tuple[list[str], list[Row]]


class OracleError(Exception):
    """The oracle could not evaluate the query (bad IR, unknown column)."""


def evaluate_query(
    tables: dict[str, tuple[list[str], list[Row]]], node: dict
) -> Relation:
    """Evaluate query IR *node* against *tables* ``{name: (columns, rows)}``."""
    op = node["op"]
    if op == "scan":
        try:
            columns, rows = tables[node["table"]]
        except KeyError:
            raise OracleError(f"unknown table {node['table']!r}") from None
        alias = node.get("alias") or node["table"]
        return [f"{alias}.{name}" for name in columns], list(rows)
    if op == "filter":
        columns, rows = evaluate_query(tables, node["input"])
        pred = node["pred"]
        kept = [
            row
            for row in rows
            if _eval_bool(pred, columns, row) is True
        ]
        return columns, kept
    if op == "project":
        columns, rows = evaluate_query(tables, node["input"])
        out_columns = [name for name, _ in node["outputs"]]
        exprs = [expr for _, expr in node["outputs"]]
        out = [
            tuple(_eval_value(expr, columns, row) for expr in exprs)
            for row in rows
        ]
        if node.get("distinct"):
            out = list(dict.fromkeys(out))
        return out_columns, out
    if op == "join":
        return _join(tables, node)
    if op == "aggregate":
        return _aggregate(tables, node)
    if op == "order_by":
        # Ordering is not observable through the multiset comparison, and
        # the generator never emits LIMIT; pass rows through unchanged.
        if any(len(key) > 2 for key in node["keys"]):
            raise OracleError("LIMIT is not supported by the oracle")
        return evaluate_query(tables, node["input"])
    raise OracleError(f"unknown query IR op {op!r}")


# -- joins -----------------------------------------------------------------


def _join(tables: dict, node: dict) -> Relation:
    left_columns, left_rows = evaluate_query(tables, node["left"])
    right_columns, right_rows = evaluate_query(tables, node["right"])
    combined = left_columns + right_columns
    on = [tuple(pair) for pair in node.get("on", ())]
    residual = node.get("residual")
    kind = node["kind"]

    left_pos = [_position(left_columns, l) for l, _ in on]
    right_pos = [_position(right_columns, r) for _, r in on]

    def matches(lrow: Row, rrow: Row) -> bool:
        for lp, rp in zip(left_pos, right_pos):
            lval, rval = lrow[lp], rrow[rp]
            if lval is None or rval is None or lval != rval:
                return False  # NULL keys never match
        if residual is not None:
            return _eval_bool(residual, combined, lrow + rrow) is True
        return True

    if kind in ("semi", "anti"):
        expect = kind == "semi"
        return left_columns, [
            lrow
            for lrow in left_rows
            if any(matches(lrow, rrow) for rrow in right_rows) == expect
        ]
    out: list[Row] = []
    pad = (None,) * len(right_columns)
    for lrow in left_rows:
        hit = False
        for rrow in right_rows:
            if matches(lrow, rrow):
                out.append(lrow + rrow)
                hit = True
        if kind == "left_outer" and not hit:
            out.append(lrow + pad)
    return combined, out


# -- aggregation -----------------------------------------------------------


def _aggregate(tables: dict, node: dict) -> Relation:
    columns, rows = evaluate_query(tables, node["input"])
    group_by = list(node.get("group_by", ()))
    group_pos = [_position(columns, name) for name in group_by]
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        groups.setdefault(tuple(row[p] for p in group_pos), []).append(row)
    if not groups and not group_by:
        groups[()] = []  # scalar aggregate over empty input: one row
    out_columns = group_by + [name for _f, _e, name in node["aggs"]]
    out = []
    for key, members in groups.items():
        values = tuple(
            _agg_one(func, expr, columns, members)
            for func, expr, _name in node["aggs"]
        )
        out.append(key + values)
    return out_columns, out


def _agg_one(func: str, expr: dict | None, columns: list[str], rows: list[Row]):
    if func == "count" and expr is None:
        return len(rows)
    inputs = [_eval_value(expr, columns, row) for row in rows]
    non_null = [v for v in inputs if v is not None]
    if func == "count":
        return len(non_null)
    if func == "count_distinct":
        return len(set(non_null))
    if func == "sum":
        return sum(non_null) if non_null else None
    if func == "avg":
        return sum(non_null) / len(non_null) if non_null else None
    if func == "min":
        return min(non_null) if non_null else None
    if func == "max":
        return max(non_null) if non_null else None
    raise OracleError(f"unknown aggregate {func!r}")


# -- expressions -----------------------------------------------------------


def _position(columns: list[str], name: str) -> int:
    if name in columns:
        return columns.index(name)
    suffix = "." + name
    hits = [i for i, c in enumerate(columns) if c.endswith(suffix)]
    if len(hits) != 1:
        raise OracleError(f"cannot resolve column {name!r} in {columns}")
    return hits[0]


def _eval_value(node: dict, columns: list[str], row: Row):
    """Evaluate a value expression; ``None`` is SQL NULL."""
    kind = node["t"]
    if kind == "col":
        return row[_position(columns, node["name"])]
    if kind == "lit":
        return node["v"]
    if kind == "arith":
        lhs = _eval_value(node["l"], columns, row)
        if lhs is None:
            return None
        rhs = _eval_value(node["r"], columns, row)
        if rhs is None:
            return None
        op = node["op"]
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return None if rhs == 0 else lhs / rhs
        raise OracleError(f"unknown arithmetic op {op!r}")
    # Boolean sub-expressions can appear in value position (projections).
    return _eval_bool(node, columns, row)


def _eval_bool(node: dict, columns: list[str], row: Row):
    """Evaluate a predicate under three-valued logic: True/False/None."""
    kind = node["t"]
    if kind == "cmp":
        lhs = _eval_value(node["l"], columns, row)
        if lhs is None:
            return None
        rhs = _eval_value(node["r"], columns, row)
        if rhs is None:
            return None
        op = node["op"]
        if op == "=":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        raise OracleError(f"unknown comparison op {op!r}")
    if kind == "and":
        unknown = False
        for arg in node["args"]:
            value = _eval_bool(arg, columns, row)
            if value is None:
                unknown = True
            elif not value:
                return False
        return None if unknown else True
    if kind == "or":
        unknown = False
        for arg in node["args"]:
            value = _eval_bool(arg, columns, row)
            if value is None:
                unknown = True
            elif value:
                return True
        return None if unknown else False
    if kind == "not":
        value = _eval_bool(node["arg"], columns, row)
        return None if value is None else not value
    if kind == "isnull":
        is_null = _eval_value(node["arg"], columns, row) is None
        return not is_null if node.get("neg") else is_null
    if kind == "inlist":
        value = _eval_value(node["arg"], columns, row)
        vals = node["vals"]
        has_null = any(v is None for v in vals)
        non_null = [v for v in vals if v is not None]
        if value is None:
            result = None if (non_null or has_null) else False
        elif any(value == v for v in non_null):
            result = True
        else:
            result = None if has_null else False
        if node.get("neg"):
            return None if result is None else not result
        return result
    if kind in ("col", "lit", "arith"):
        # A bare value in boolean position (shrinker may produce these).
        return _eval_value(node, columns, row)
    raise OracleError(f"unknown expression IR node {kind!r}")
