"""The differential runner: one case in, one (optional) divergence out.

For every case the runner:

1. builds the unpartitioned database and partitioning configuration,
   partitions, and checks :func:`check_pref_invariants` (``exact=True``);
2. executes every query on the serial backend (the reference) and on
   each requested additional backend, requiring *identical* rows and
   canonical :class:`ExecutionStats`;
3. re-executes on a rewriter-ablation variant (random
   ``optimizations``/``locality`` flags) and compares rows — the
   rewritten and naive plans must agree;
4. cross-checks rows against :class:`LocalExecutor`, the naive IR
   oracle, and sqlite3 (tolerant multiset comparison);
5. if the case has bulk-load batches, applies them through
   :class:`BulkLoader`, re-checks invariants (``exact=False`` — stale
   round-robin copies of formerly partner-less tuples are legal), and
   repeats step 2–4 in the ``after_load`` phase.

The first check to fail produces a :class:`Divergence`; ``None`` means
the case passed everything.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from repro.engine.backends import Backend, SerialBackend, make_backend
from repro.fuzz import ir
from repro.fuzz.differ import (
    diff_summary,
    rows_equal,
    span_tree_diff,
    span_trees_equal,
)
from repro.fuzz.generator import generate_case
from repro.fuzz.oracle import OracleError, evaluate_query
from repro.fuzz.sqlite_oracle import SqlTranslationError, run_sqlite
from repro.partitioning.bulk_loader import BulkLoader
from repro.partitioning.invariants import InvariantViolation, check_pref_invariants
from repro.partitioning.partitioner import partition_database
from repro.query.executor import Executor
from repro.query.local_executor import LocalExecutor

DEFAULT_BACKENDS = ("serial", "thread", "process")

#: Reused pools: thread/process backends are safely shareable between
#: executors and cases (the process backend forks per query anyway).
_SHARED: dict[str, Backend] = {}


def _backend_for(spec: str) -> Backend:
    if spec == "serial":
        return SerialBackend()
    if spec not in _SHARED:
        _SHARED[spec] = make_backend(spec, max_workers=2)
    return _SHARED[spec]


@dataclass
class Divergence:
    """One observed disagreement (or crash, or invariant violation)."""

    kind: str
    detail: str
    phase: str = "initial"
    query_index: int | None = None
    #: Structured attachment (e.g. a certifier refutation plus its
    #: confirmed counterexample case), carried into saved repros.
    payload: dict | None = None

    def describe(self) -> str:
        where = f" [phase={self.phase}"
        if self.query_index is not None:
            where += f", query={self.query_index}"
        where += "]"
        return f"{self.kind}{where}: {self.detail}"


def run_case(
    case: dict,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    check_sqlite: bool = True,
    check_certify: bool = True,
) -> Divergence | None:
    """Run one case through every check; None means fully consistent."""
    try:
        database = ir.build_database(case)
        config = ir.build_config(case)
        config.validate(database.schema)
    except Exception as exc:  # noqa: BLE001 - classified for the shrinker
        return Divergence(f"invalid_case:{type(exc).__name__}", str(exc))
    try:
        partitioned = partition_database(database, config)
    except Exception as exc:  # noqa: BLE001
        return Divergence(f"error:partition:{type(exc).__name__}", str(exc))
    try:
        check_pref_invariants(partitioned, config, exact=True)
    except InvariantViolation as exc:
        return Divergence("invariant", str(exc), phase="initial")

    reference = Executor(partitioned, backend=SerialBackend())
    others = [
        (spec, Executor(partitioned, backend=_backend_for(spec)))
        for spec in backends
        if spec != "serial"
    ]
    variant = case.get("variant")
    variant_executor = (
        Executor(
            partitioned,
            optimizations=bool(variant.get("optimizations", True)),
            locality=bool(variant.get("locality", True)),
            predicate_transfer=bool(variant.get("predicate_transfer", False)),
            backend=SerialBackend(),
        )
        if variant is not None
        else None
    )
    tables = ir.case_tables(case)
    schemas = {
        table["name"]: [(name, dtype) for name, dtype, _null in table["columns"]]
        for table in case["tables"]
    }

    phases: list[tuple[str, dict | None]] = [("initial", None)]
    if case.get("loads"):
        phases.append(("after_load", case["loads"]))

    for phase, loads in phases:
        if loads:
            loader = BulkLoader(partitioned, config)
            batches = {
                name: [tuple(row) for row in rows]
                for name, rows in loads.items()
            }
            try:
                loader.load(batches)
                check_pref_invariants(partitioned, config, exact=False)
            except InvariantViolation as exc:
                return Divergence("invariant", str(exc), phase=phase)
            except Exception as exc:  # noqa: BLE001
                return Divergence(
                    f"error:load:{type(exc).__name__}", str(exc), phase=phase
                )
            for name, rows in batches.items():
                database.load(name, rows)
                tables[name][1].extend(rows)
        for index, query in enumerate(case["queries"]):
            divergence = _check_query(
                query,
                index,
                phase,
                reference,
                others,
                variant_executor,
                database,
                tables,
                schemas,
                check_sqlite,
                partitioned=partitioned if check_certify else None,
                case=case,
            )
            if divergence is not None:
                return divergence
    return None


def _trace_dumps(serial_trace, other_trace, spec: str) -> str:
    """Both backends' full JSON traces, for the divergence report."""
    import json

    from repro.obs.explain import trace_to_json

    return (
        f"serial trace: {json.dumps(trace_to_json(serial_trace), sort_keys=True)}\n"
        f"{spec} trace: {json.dumps(trace_to_json(other_trace), sort_keys=True)}"
    )


#: Divergence kinds that mean "the distributed result is wrong" — the
#: kinds a statically certified plan must never produce.
_RESULT_KINDS = frozenset(
    {"backend_rows", "rewrite_rows", "local_rows", "oracle_rows"}
)


def _check_query(
    query: dict,
    index: int,
    phase: str,
    reference: Executor,
    others: list[tuple[str, Executor]],
    variant_executor: Executor | None,
    database,
    tables: dict,
    schemas: dict,
    check_sqlite: bool,
    partitioned=None,
    case: dict | None = None,
) -> Divergence | None:
    certified = False
    if partitioned is not None:
        certify_divergence, certified = _certify_query(
            query, index, phase, reference, variant_executor,
            partitioned, case, tables,
        )
        if certify_divergence is not None:
            return certify_divergence
    divergence = _check_query_dynamic(
        query, index, phase, reference, others, variant_executor,
        database, tables, schemas, check_sqlite,
    )
    if (
        divergence is not None
        and certified
        and divergence.kind in _RESULT_KINDS
    ):
        # The second oracle's hard promise: a certified plan never
        # diverges.  Seeing both means the certifier (or the engine) has
        # a soundness bug — escalate the kind so it is triaged as such.
        divergence.detail += (
            "\n[certify] CONTRADICTION: this plan was statically "
            "certified, yet its results diverged"
        )
        divergence.kind = f"certify_contradiction:{divergence.kind}"
    return divergence


def _certify_query(
    query: dict,
    index: int,
    phase: str,
    reference: Executor,
    variant_executor: Executor | None,
    partitioned,
    case: dict | None,
    tables: dict,
) -> tuple[Divergence | None, bool]:
    """Run the static certifier over the default and variant plans.

    Returns ``(divergence, certified)``: a refutation becomes a
    ``certify_refuted`` divergence when its synthesized counterexample
    demonstrably diverges on the naive oracle, or ``certify_unconfirmed``
    otherwise (the rewriter must only emit certifiable plans, so both
    are failures); ``certified`` is True when every checked plan got a
    certificate.
    """
    import copy as _copy

    from repro.fuzz.certify import confirm_refutation
    from repro.query.certify import certify

    targets: list[tuple[str, Executor, dict]] = [("default", reference, {})]
    if variant_executor is not None:
        targets.append(
            (
                "variant",
                variant_executor,
                {
                    "optimizations": variant_executor.rewriter.optimizations,
                    "locality": variant_executor.rewriter.locality,
                    "predicate_transfer": variant_executor.predicate_transfer,
                },
            )
        )
    for label, executor, flags in targets:
        try:
            annotated = executor.annotate(ir.build_plan(query))
        except Exception as exc:  # noqa: BLE001
            return (
                Divergence(
                    f"error:annotate:{type(exc).__name__}",
                    f"{label} plan: {exc}",
                    phase,
                    index,
                ),
                False,
            )
        try:
            result = certify(annotated, partitioned)
        except Exception as exc:  # noqa: BLE001
            return (
                Divergence(
                    f"error:certify:{type(exc).__name__}",
                    f"{label} plan: {exc}",
                    phase,
                    index,
                ),
                False,
            )
        if result.certified:
            continue
        refutation = result.refutation
        payload = {
            "plan": label,
            "flags": flags,
            "refutation": {
                "check": refutation.check,
                "reason": refutation.reason,
                "path": list(refutation.path),
            },
        }
        counterexample = None
        if case is not None:
            # Fold applied load batches in so the search starts from the
            # table contents the refuted plan actually saw.
            effective = _copy.deepcopy(case)
            effective["loads"] = {}
            for table in effective["tables"]:
                current = tables.get(table["name"])
                if current is not None:
                    table["rows"] = [list(row) for row in current[1]]
            counterexample = confirm_refutation(effective, query, flags)
        if counterexample is not None:
            payload["counterexample"] = counterexample
            return (
                Divergence(
                    "certify_refuted",
                    f"{label} plan statically refuted; the synthesized "
                    "counterexample diverges on the naive oracle\n"
                    + result.render(),
                    phase,
                    index,
                    payload=payload,
                ),
                False,
            )
        return (
            Divergence(
                "certify_unconfirmed",
                f"{label} plan statically refuted (no diverging "
                "counterexample found; the rewriter must emit "
                "certifiable plans)\n" + result.render(),
                phase,
                index,
                payload=payload,
            ),
            False,
        )
    return None, True


def _check_query_dynamic(
    query: dict,
    index: int,
    phase: str,
    reference: Executor,
    others: list[tuple[str, Executor]],
    variant_executor: Executor | None,
    database,
    tables: dict,
    schemas: dict,
    check_sqlite: bool,
) -> Divergence | None:
    try:
        plan = ir.build_plan(query)
    except Exception as exc:  # noqa: BLE001
        return Divergence(
            f"error:plan:{type(exc).__name__}", str(exc), phase, index
        )
    try:
        expected = reference.execute(plan, analyze=True)
    except Exception as exc:  # noqa: BLE001
        return Divergence(
            f"error:execute:{type(exc).__name__}", str(exc), phase, index
        )
    expected_stats = expected.stats.canonical()
    for spec, executor in others:
        try:
            result = executor.execute(ir.build_plan(query), analyze=True)
        except Exception as exc:  # noqa: BLE001
            return Divergence(
                f"error:execute:{type(exc).__name__}",
                f"backend {spec}: {exc}",
                phase,
                index,
            )
        if result.rows != expected.rows:
            return Divergence(
                "backend_rows",
                f"backend {spec} rows differ from serial\n"
                + diff_summary("serial", expected.rows, spec, result.rows),
                phase,
                index,
            )
        if result.stats.canonical() != expected_stats:
            return Divergence(
                "backend_stats",
                f"backend {spec} stats {result.stats.canonical()!r} != "
                f"serial {expected_stats!r}",
                phase,
                index,
            )
        if not span_trees_equal(result.trace, expected.trace):
            return Divergence(
                "backend_trace",
                f"backend {spec} span tree differs from serial\n"
                + span_tree_diff("serial", expected.trace, spec, result.trace)
                + "\n"
                + _trace_dumps(expected.trace, result.trace, spec),
                phase,
                index,
            )
    if variant_executor is not None:
        try:
            varied = variant_executor.execute(ir.build_plan(query))
        except Exception as exc:  # noqa: BLE001
            return Divergence(
                f"error:execute:{type(exc).__name__}",
                f"rewrite variant: {exc}",
                phase,
                index,
            )
        if not rows_equal(varied.rows, expected.rows):
            return Divergence(
                "rewrite_rows",
                "rewriter-ablation variant rows differ\n"
                + diff_summary("default", expected.rows, "variant", varied.rows),
                phase,
                index,
            )
    try:
        local = LocalExecutor(database).execute(ir.build_plan(query))
    except Exception as exc:  # noqa: BLE001
        return Divergence(
            f"error:local:{type(exc).__name__}", str(exc), phase, index
        )
    if not rows_equal(local.rows, expected.rows):
        return Divergence(
            "local_rows",
            "LocalExecutor rows differ from distributed result\n"
            + diff_summary("local", local.rows, "engine", expected.rows),
            phase,
            index,
        )
    try:
        _columns, oracle_rows = evaluate_query(tables, query)
    except OracleError as exc:
        return Divergence(f"error:oracle:{type(exc).__name__}", str(exc), phase, index)
    if not rows_equal(oracle_rows, expected.rows):
        return Divergence(
            "oracle_rows",
            "naive oracle rows differ from engine result\n"
            + diff_summary("oracle", oracle_rows, "engine", expected.rows),
            phase,
            index,
        )
    if check_sqlite:
        try:
            sqlite_rows = run_sqlite(schemas, tables, query)
        except (SqlTranslationError, sqlite3.Error) as exc:
            return Divergence(
                f"error:sqlite:{type(exc).__name__}", str(exc), phase, index
            )
        if not rows_equal(sqlite_rows, oracle_rows):
            return Divergence(
                "sqlite_rows",
                "sqlite3 rows differ from naive oracle\n"
                + diff_summary("sqlite", sqlite_rows, "oracle", oracle_rows),
                phase,
                index,
            )
    return None


@dataclass
class FuzzReport:
    """Outcome of a fuzz run."""

    seed: int
    cases_requested: int
    cases_run: int = 0
    queries_run: int = 0
    divergence: Divergence | None = None
    failing_case: dict | None = None
    shrunk_case: dict | None = None
    repro_path: str | None = None
    shrink_attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK: {self.cases_run} cases ({self.queries_run} query "
                f"executions) with zero divergences, seed {self.seed}"
            )
        lines = [
            f"FAIL after {self.cases_run} cases (seed {self.seed}):",
            self.divergence.describe(),
        ]
        if self.shrunk_case is not None:
            lines.append(
                f"minimised repro ({self.shrink_attempts} shrink runs)"
                + (f" written to {self.repro_path}" if self.repro_path else "")
            )
        elif self.repro_path:
            lines.append(f"repro written to {self.repro_path}")
        return "\n".join(lines)


def run_fuzz(
    cases: int,
    seed: int,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    check_sqlite: bool = True,
    shrink_divergent: bool = True,
    out: str | None = None,
    max_shrink: int = 250,
    progress=None,
    variant_overrides: dict | None = None,
    check_certify: bool = True,
) -> FuzzReport:
    """Generate and run *cases* cases; stop (and shrink) on the first failure.

    ``variant_overrides`` pins variant-executor flags across every case
    (e.g. ``{"predicate_transfer": True}`` for a dedicated on/off sweep)
    on top of the generator's per-case random choices.
    ``check_certify`` runs the static certifier as a second oracle on
    every plan (kill switch: ``False`` disables it).
    """
    from repro.fuzz.shrinker import shrink

    report = FuzzReport(seed=seed, cases_requested=cases)
    for index in range(cases):
        case = generate_case(seed, index)
        if variant_overrides:
            case.setdefault("variant", {}).update(variant_overrides)
        divergence = run_case(
            case,
            backends=backends,
            check_sqlite=check_sqlite,
            check_certify=check_certify,
        )
        report.cases_run += 1
        report.queries_run += len(case["queries"]) * (2 if case["loads"] else 1)
        if divergence is None:
            if progress is not None:
                progress(index + 1, cases)
            continue
        report.divergence = divergence
        report.failing_case = case
        if shrink_divergent:
            kind = divergence.kind
            attempts = [0]

            def still_fails(candidate: dict) -> bool:
                attempts[0] += 1
                found = run_case(
                    candidate,
                    backends=backends,
                    check_sqlite=check_sqlite,
                    check_certify=check_certify,
                )
                return found is not None and found.kind == kind

            report.shrunk_case = shrink(case, still_fails, max_attempts=max_shrink)
            report.shrink_attempts = attempts[0]
            # Re-derive the divergence message (and, for certifier
            # refutations, the refutation payload + counterexample) from
            # the minimised case, so the repro carries both.
            final = run_case(
                report.shrunk_case,
                backends=backends,
                check_sqlite=check_sqlite,
                check_certify=check_certify,
            )
            if final is not None:
                report.divergence = final
        if out:
            saved = dict(report.shrunk_case or case)
            if report.divergence is not None and report.divergence.payload:
                saved["certify"] = report.divergence.payload
            ir.save_case(saved, out)
            report.repro_path = out
        break
    return report
