"""Differential fuzzing oracle for PREF query processing.

The fuzzer generates random schemas, partitioning configurations (PREF
chains included), NULL-bearing skewed data and SPJA queries; runs every
query on the serial, thread and process backends of the engine; and
cross-checks rows against three independent references — the
:class:`~repro.query.local_executor.LocalExecutor`, a naive evaluator
written directly against the case IR, and ``sqlite3``.  PREF invariants
(:func:`~repro.partitioning.invariants.check_pref_invariants`) are checked
after the initial partitioning and after every bulk load.

Any divergence is minimised by a delta-debugging shrinker and written out
as a replayable JSON repro: ``python -m repro.fuzz --replay repro.json``.
"""

from repro.fuzz.generator import generate_case
from repro.fuzz.ir import build_config, build_database, build_plan, case_tables
from repro.fuzz.runner import Divergence, FuzzReport, run_case, run_fuzz
from repro.fuzz.shrinker import shrink

__all__ = [
    "Divergence",
    "FuzzReport",
    "build_config",
    "build_database",
    "build_plan",
    "case_tables",
    "generate_case",
    "run_case",
    "run_fuzz",
    "shrink",
]
