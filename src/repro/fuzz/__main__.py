"""``python -m repro.fuzz`` — the differential fuzzing oracle CLI.

Runs seeded random cases through the serial/thread/process backends and
the single-node oracles (LocalExecutor, naive IR evaluator, sqlite3),
checking PREF invariants after every partition and bulk-load step.  On
the first divergence the case is minimised and written to a replayable
JSON repro; the exit status is 1.

Examples::

    python -m repro.fuzz --cases 500 --seed 0
    python -m repro.fuzz --seed 7 --cases 50 --backends serial,thread
    python -m repro.fuzz --replay fuzz-repro.json
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.ir import load_case
from repro.fuzz.runner import DEFAULT_BACKENDS, run_case, run_fuzz


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of PREF query processing",
    )
    parser.add_argument(
        "--cases", type=int, default=200, help="number of cases to run"
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--backends",
        default=",".join(DEFAULT_BACKENDS),
        help="comma-separated engine backends (serial is always the reference)",
    )
    parser.add_argument(
        "--no-sqlite",
        action="store_true",
        help="skip the sqlite3 cross-check",
    )
    parser.add_argument(
        "--no-certify",
        action="store_true",
        help="skip the static parallel-correctness certifier oracle",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="write the raw failing case without minimising it",
    )
    parser.add_argument(
        "--max-shrink",
        type=int,
        default=250,
        help="attempt budget for the shrinker",
    )
    parser.add_argument(
        "--out",
        default="fuzz-repro.json",
        help="path for the (minimised) repro on failure",
    )
    parser.add_argument(
        "--replay",
        metavar="PATH",
        help="re-run a repro file instead of generating cases",
    )
    parser.add_argument(
        "--predicate-transfer",
        choices=("auto", "on", "off"),
        default="auto",
        help="variant-executor Bloom transfer: random per case (auto), "
        "forced on, or forced off",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    args = parser.parse_args(argv)
    backends = tuple(
        spec.strip() for spec in args.backends.split(",") if spec.strip()
    )
    if "serial" not in backends:
        backends = ("serial",) + backends

    if args.replay:
        case = load_case(args.replay)
        divergence = run_case(
            case,
            backends=backends,
            check_sqlite=not args.no_sqlite,
            check_certify=not args.no_certify,
        )
        if divergence is None:
            print(f"replay {args.replay}: no divergence")
            return 0
        print(f"replay {args.replay}: {divergence.describe()}")
        return 1

    def progress(done: int, total: int) -> None:
        if not args.quiet and done % 50 == 0:
            print(f"  {done}/{total} cases clean", file=sys.stderr)

    overrides = None
    if args.predicate_transfer != "auto":
        overrides = {"predicate_transfer": args.predicate_transfer == "on"}

    report = run_fuzz(
        args.cases,
        args.seed,
        backends=backends,
        check_sqlite=not args.no_sqlite,
        shrink_divergent=not args.no_shrink,
        out=args.out,
        max_shrink=args.max_shrink,
        progress=progress,
        variant_overrides=overrides,
        check_certify=not args.no_certify,
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
