"""The fuzzer's case IR: a JSON-serialisable description of one test case.

A *case* is a plain dict (so it can be written to disk as a replayable
repro and shrunk structurally) describing:

* ``tables`` — schemas plus base rows,
* ``config`` — one partitioning-scheme descriptor per table,
* ``queries`` — logical plans as nested ``{"op": ...}`` dicts,
* ``loads`` — optional incremental batches applied via the bulk loader,
* ``variant`` — rewriter ablation flags for an extra comparison run.

This module compiles the IR into the engine's native objects
(:class:`~repro.storage.table.Database`,
:class:`~repro.partitioning.config.PartitioningConfig`, plan nodes and
expressions).  The naive oracle (:mod:`repro.fuzz.oracle`) and the SQL
translation (:mod:`repro.fuzz.sqlite_oracle`) interpret the *same* IR
independently, which is what makes the comparison differential.

Expression IR nodes (``{"t": ...}``):

``col``(name) · ``lit``(v) · ``cmp``(op, l, r) · ``arith``(op, l, r) ·
``and``/``or``(args) · ``not``(arg) · ``isnull``(arg, neg) ·
``inlist``(arg, vals, neg)

Query IR nodes (``{"op": ...}``):

``scan``(table, alias) · ``filter``(input, pred) ·
``project``(input, outputs, distinct) · ``join``(left, right, kind, on,
residual) · ``aggregate``(input, group_by, aggs) · ``order_by``(input,
keys)
"""

from __future__ import annotations

import json

from repro.catalog.column import Column, DataType
from repro.catalog.schema import DatabaseSchema
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.predicate import JoinPredicate
from repro.partitioning.scheme import (
    HashScheme,
    PrefScheme,
    RangeScheme,
    ReplicatedScheme,
    RoundRobinScheme,
)
from repro.query.expressions import (
    Arithmetic,
    BooleanOp,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Negation,
    col,
)
from repro.query.plan import (
    Aggregate,
    AggregateSpec,
    Filter,
    Join,
    JoinKind,
    OrderBy,
    PlanNode,
    Project,
    Scan,
)
from repro.storage.table import Database

_DTYPES = {
    "integer": DataType.INTEGER,
    "float": DataType.FLOAT,
    "varchar": DataType.VARCHAR,
    "boolean": DataType.BOOLEAN,
}


# -- schema / data / config ------------------------------------------------


def build_schema(case: dict) -> DatabaseSchema:
    """The catalog schema described by ``case["tables"]``."""
    schema = DatabaseSchema()
    for table in case["tables"]:
        columns = [
            Column(name, _DTYPES[dtype], nullable=bool(nullable))
            for name, dtype, nullable in table["columns"]
        ]
        schema.create_table(table["name"], columns, table.get("pk", ()))
    return schema


def build_database(case: dict) -> Database:
    """A fresh unpartitioned database holding the case's base rows."""
    database = Database(build_schema(case))
    for table in case["tables"]:
        database.load(table["name"], [tuple(row) for row in table["rows"]])
    return database


def build_config(case: dict) -> PartitioningConfig:
    """The partitioning configuration described by ``case["config"]``."""
    count = case["partitions"]
    config = PartitioningConfig(count)
    for table, desc in case["config"].items():
        kind = desc["kind"]
        if kind == "hash":
            scheme = HashScheme(tuple(desc["columns"]), count)
        elif kind == "range":
            scheme = RangeScheme(desc["column"], tuple(desc["boundaries"]))
        elif kind == "round_robin":
            scheme = RoundRobinScheme(count)
        elif kind == "replicated":
            scheme = ReplicatedScheme(count)
        elif kind == "pref":
            (ref_col, target_col), *rest = desc["on"]
            assert not rest, "composite PREF predicates not generated"
            scheme = PrefScheme(
                desc["referenced"],
                JoinPredicate.equi(
                    table, ref_col, desc["referenced"], target_col
                ),
            )
        else:  # pragma: no cover - generator never emits other kinds
            raise ValueError(f"unknown scheme kind {kind!r}")
        config.add(table, scheme)
    return config


def case_tables(case: dict) -> dict[str, tuple[list[str], list[tuple]]]:
    """Current logical content per table: ``{name: (columns, rows)}``.

    This is the mutable table state the naive and sqlite oracles evaluate
    against; the runner appends load batches to it as it applies them to
    the partitioned database.
    """
    return {
        table["name"]: (
            [name for name, _dtype, _null in table["columns"]],
            [tuple(row) for row in table["rows"]],
        )
        for table in case["tables"]
    }


def column_types(case: dict) -> dict[str, dict[str, str]]:
    """Column dtype names per table: ``{table: {column: dtype}}``."""
    return {
        table["name"]: {
            name: dtype for name, dtype, _null in table["columns"]
        }
        for table in case["tables"]
    }


# -- expressions -----------------------------------------------------------


def expr_from_ir(node: dict) -> Expression:
    """Compile an expression IR node into the engine expression tree."""
    kind = node["t"]
    if kind == "col":
        return col(node["name"])
    if kind == "lit":
        return Literal(node["v"])
    if kind == "cmp":
        return Comparison(
            node["op"], expr_from_ir(node["l"]), expr_from_ir(node["r"])
        )
    if kind == "arith":
        return Arithmetic(
            node["op"], expr_from_ir(node["l"]), expr_from_ir(node["r"])
        )
    if kind in ("and", "or"):
        return BooleanOp(
            kind, tuple(expr_from_ir(arg) for arg in node["args"])
        )
    if kind == "not":
        return Negation(expr_from_ir(node["arg"]))
    if kind == "isnull":
        return IsNull(expr_from_ir(node["arg"]), negated=node.get("neg", False))
    if kind == "inlist":
        return InList(
            expr_from_ir(node["arg"]),
            tuple(node["vals"]),
            negated=node.get("neg", False),
        )
    raise ValueError(f"unknown expression IR node {kind!r}")


# -- plans -----------------------------------------------------------------

_JOIN_KINDS = {
    "inner": JoinKind.INNER,
    "left_outer": JoinKind.LEFT_OUTER,
    "semi": JoinKind.SEMI,
    "anti": JoinKind.ANTI,
    "cross": JoinKind.CROSS,
}


def build_plan(node: dict) -> PlanNode:
    """Compile a query IR node into the engine's logical plan."""
    op = node["op"]
    if op == "scan":
        return Scan(node["table"], alias=node.get("alias"))
    if op == "filter":
        return Filter(build_plan(node["input"]), expr_from_ir(node["pred"]))
    if op == "project":
        return Project(
            build_plan(node["input"]),
            tuple(
                (name, expr_from_ir(expr)) for name, expr in node["outputs"]
            ),
            distinct=node.get("distinct", False),
        )
    if op == "join":
        residual = node.get("residual")
        return Join(
            build_plan(node["left"]),
            build_plan(node["right"]),
            on=tuple((l, r) for l, r in node.get("on", ())),
            kind=_JOIN_KINDS[node["kind"]],
            residual=expr_from_ir(residual) if residual is not None else None,
        )
    if op == "aggregate":
        return Aggregate(
            build_plan(node["input"]),
            group_by=tuple(node.get("group_by", ())),
            aggregates=tuple(
                AggregateSpec(
                    func, expr_from_ir(expr) if expr is not None else None, name
                )
                for func, expr, name in node["aggs"]
            ),
        )
    if op == "order_by":
        return OrderBy(
            build_plan(node["input"]),
            keys=tuple((column, bool(asc)) for column, asc in node["keys"]),
        )
    raise ValueError(f"unknown query IR node {op!r}")


# -- persistence -----------------------------------------------------------


def save_case(case: dict, path: str) -> None:
    """Write *case* as a replayable JSON repro file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_case(path: str) -> dict:
    """Read a repro file written by :func:`save_case`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
