"""Delta-debugging shrinker for divergent fuzz cases.

Given a failing case and a ``still_fails(candidate)`` predicate (the
runner re-run, pinned to the original divergence kind), the shrinker
repeatedly tries structure-removing edits and keeps every edit that
preserves the failure, until a fixpoint or the attempt budget runs out:

1. drop all but one query (the failing one),
2. drop the bulk-load step, then individual load rows (ddmin),
3. drop tables no remaining query or PREF scheme needs, and simplify
   PREF schemes to plain hash,
4. ddmin the base rows of every table,
5. simplify the surviving query tree: drop filters / ORDER BY /
   DISTINCT / aggregate specs / group keys / join residuals, replace a
   join by its left input, shorten IN lists, replace AND/OR/NOT by an
   operand.

Candidates are deep-copied dicts, so the repro written at the end is a
standalone JSON file replayable with ``python -m repro.fuzz --replay``.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator


def shrink(
    case: dict,
    still_fails: Callable[[dict], bool],
    max_attempts: int = 250,
) -> dict:
    """Minimise *case* while ``still_fails`` keeps returning True."""
    budget = [max_attempts]

    def attempt(candidate: dict) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return still_fails(candidate)
        except Exception:  # noqa: BLE001 - malformed candidate: not a repro
            return False

    current = copy.deepcopy(case)
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for pass_fn in (
            _shrink_queries,
            _shrink_loads,
            _shrink_tables,
            _shrink_rows,
            _shrink_query_trees,
        ):
            reduced = pass_fn(current, attempt)
            if reduced is not None:
                current = reduced
                changed = True
    return current


# -- passes ----------------------------------------------------------------


def _shrink_queries(case: dict, attempt) -> dict | None:
    queries = case["queries"]
    if len(queries) <= 1:
        return None
    for query in queries:
        candidate = copy.deepcopy(case)
        candidate["queries"] = [copy.deepcopy(query)]
        if attempt(candidate):
            return candidate
    return None


def _shrink_loads(case: dict, attempt) -> dict | None:
    loads = case.get("loads") or {}
    if not loads:
        return None
    candidate = copy.deepcopy(case)
    candidate["loads"] = {}
    if attempt(candidate):
        return candidate
    improved = None
    for name in list(loads):
        candidate = copy.deepcopy(case if improved is None else improved)
        if name not in candidate["loads"]:
            continue
        del candidate["loads"][name]
        if attempt(candidate):
            improved = candidate
    if improved is not None:
        return improved
    for name, rows in loads.items():
        reduced = _ddmin(
            rows,
            lambda subset, _name=name: attempt(
                _with_load(case, _name, subset)
            ),
        )
        if len(reduced) < len(rows):
            return _with_load(case, name, reduced)
    return None


def _with_load(case: dict, name: str, rows: list) -> dict:
    candidate = copy.deepcopy(case)
    candidate["loads"][name] = copy.deepcopy(rows)
    return candidate


def _shrink_tables(case: dict, attempt) -> dict | None:
    needed = set()
    for query in case["queries"]:
        _scan_tables(query, needed)
    # Tables referenced by a PREF scheme of a table we keep must stay.
    improved = None
    for table in case["tables"]:
        name = table["name"]
        if name in needed:
            continue
        base = case if improved is None else improved
        if any(
            desc.get("kind") == "pref" and desc.get("referenced") == name
            for t, desc in base["config"].items()
            if t != name and any(bt["name"] == t for bt in base["tables"])
        ):
            continue
        candidate = copy.deepcopy(base)
        candidate["tables"] = [
            t for t in candidate["tables"] if t["name"] != name
        ]
        candidate["config"].pop(name, None)
        candidate.get("loads", {}).pop(name, None)
        if attempt(candidate):
            improved = candidate
    if improved is not None:
        return improved
    # Simplify PREF schemes to hash on the referencing column.
    for name, desc in case["config"].items():
        if desc.get("kind") != "pref":
            continue
        candidate = copy.deepcopy(case)
        candidate["config"][name] = {
            "kind": "hash",
            "columns": [desc["on"][0][0]],
        }
        if attempt(candidate):
            return candidate
    return None


def _scan_tables(node: dict, out: set) -> None:
    if node.get("op") == "scan":
        out.add(node["table"])
    for key in ("input", "left", "right"):
        child = node.get(key)
        if isinstance(child, dict):
            _scan_tables(child, out)


def _shrink_rows(case: dict, attempt) -> dict | None:
    for position, table in enumerate(case["tables"]):
        rows = table["rows"]
        if len(rows) <= 1:
            continue

        def check(subset, _position=position):
            candidate = copy.deepcopy(case)
            candidate["tables"][_position]["rows"] = copy.deepcopy(subset)
            return attempt(candidate)

        reduced = _ddmin(rows, check)
        if len(reduced) < len(rows):
            candidate = copy.deepcopy(case)
            candidate["tables"][position]["rows"] = copy.deepcopy(reduced)
            return candidate
    return None


def _shrink_query_trees(case: dict, attempt) -> dict | None:
    for position, query in enumerate(case["queries"]):
        for variant in _query_variants(query):
            candidate = copy.deepcopy(case)
            candidate["queries"][position] = copy.deepcopy(variant)
            if attempt(candidate):
                return candidate
    return None


# -- structural variants ---------------------------------------------------


def _query_variants(node: dict) -> Iterator[dict]:
    """One-edit simplifications of a query IR tree, shallowest first."""
    op = node["op"]
    if op == "filter":
        yield node["input"]
        for pred in _expr_variants(node["pred"]):
            yield {**node, "pred": pred}
        for child in _query_variants(node["input"]):
            yield {**node, "input": child}
    elif op == "order_by":
        yield node["input"]
        for child in _query_variants(node["input"]):
            yield {**node, "input": child}
    elif op == "project":
        yield node["input"]
        if node.get("distinct"):
            yield {**node, "distinct": False}
        if len(node["outputs"]) > 1:
            for i in range(len(node["outputs"])):
                outputs = node["outputs"][:i] + node["outputs"][i + 1 :]
                yield {**node, "outputs": outputs}
        for child in _query_variants(node["input"]):
            yield {**node, "input": child}
    elif op == "join":
        yield node["left"]
        if node["kind"] in ("inner", "cross"):
            yield node["right"]
        if node.get("residual") is not None:
            yield {**node, "residual": None}
            for residual in _expr_variants(node["residual"]):
                yield {**node, "residual": residual}
        if len(node.get("on", ())) > 1:
            for i in range(len(node["on"])):
                yield {**node, "on": node["on"][:i] + node["on"][i + 1 :]}
        for child in _query_variants(node["left"]):
            yield {**node, "left": child}
        for child in _query_variants(node["right"]):
            yield {**node, "right": child}
    elif op == "aggregate":
        yield node["input"]
        if len(node["aggs"]) > 1 or (node["aggs"] and node["group_by"]):
            for i in range(len(node["aggs"])):
                aggs = node["aggs"][:i] + node["aggs"][i + 1 :]
                if aggs or node["group_by"]:
                    yield {**node, "aggs": aggs}
        for i in range(len(node.get("group_by", ()))):
            group = list(node["group_by"])
            del group[i]
            yield {**node, "group_by": group}
        for child in _query_variants(node["input"]):
            yield {**node, "input": child}


def _expr_variants(node: dict) -> Iterator[dict]:
    """One-edit simplifications of an expression IR tree."""
    kind = node["t"]
    if kind in ("and", "or"):
        args = node["args"]
        for arg in args:
            yield arg
        if len(args) > 2:
            for i in range(len(args)):
                yield {**node, "args": args[:i] + args[i + 1 :]}
        for i, arg in enumerate(args):
            for variant in _expr_variants(arg):
                yield {**node, "args": args[:i] + [variant] + args[i + 1 :]}
    elif kind == "not":
        yield node["arg"]
        for variant in _expr_variants(node["arg"]):
            yield {**node, "arg": variant}
    elif kind == "inlist":
        if len(node["vals"]) > 1:
            for i in range(len(node["vals"])):
                vals = node["vals"][:i] + node["vals"][i + 1 :]
                yield {**node, "vals": vals}
        if node.get("neg"):
            yield {**node, "neg": False}
    elif kind == "cmp":
        for side in ("l", "r"):
            for variant in _expr_variants(node[side]):
                yield {**node, side: variant}
    elif kind == "arith":
        yield node["l"]
        yield node["r"]
        for side in ("l", "r"):
            for variant in _expr_variants(node[side]):
                yield {**node, side: variant}
    elif kind == "isnull":
        if node.get("neg"):
            yield {**node, "neg": False}


# -- ddmin -----------------------------------------------------------------


def _ddmin(items: list, check: Callable[[list], bool]) -> list:
    """Classic delta debugging: a 1-minimal sublist still passing *check*.

    ``check`` receives candidate sublists; the original list is assumed
    to pass.  Bounded by the caller's attempt budget (``check`` returns
    False once the budget is exhausted, which simply stops progress).
    """
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate and check(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current
