"""Seeded generation of random fuzz cases.

Everything is driven by one :class:`random.Random` seeded from the case
identity, so ``generate_case(seed, index)`` is fully deterministic — the
property the CI smoke job and the replayable repro format rely on.

The generator aims for *semantic* coverage rather than volume:

* schemas form FK chains/trees so PREF configurations are possible;
* data is small, skewed (repeated key values) and NULL-bearing, with
  dangling foreign keys mixed in;
* partitioning configurations combine PREF chains with every seed scheme
  (hash, range, round-robin, replicated);
* queries are SPJA trees: equi-joins along and across the reference
  edges (inner / left-outer / semi / anti, occasionally cross), residual
  theta predicates, filters with NULL literals, ``IN`` lists containing
  NULL, Kleene combinations, grouped and scalar aggregates, DISTINCT
  projections and ORDER BY — everything the three-valued-logic contract
  in :mod:`repro.query.expressions` covers;
* about half the cases bulk-load extra batches (including new referenced
  keys, which exercises locality propagation) and re-run every query.
"""

from __future__ import annotations

import random

_DATA_TYPES = ("integer", "float", "varchar", "boolean")

_INT_POOL = (0, 0, 0, 1, 1, 2, 3, 5, 8, 13, 21)
_FLOAT_POOL = (0.0, 0.5, 1.5, 2.25, -3.75, 10.0, 0.1)
_STR_POOL = ("a", "b", "c", "ab", "ba", "zz", "")

_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")
_THETA_OPS = ("!=", "<", "<=", ">", ">=")


def generate_case(seed: int, index: int = 0) -> dict:
    """Generate one deterministic fuzz case for ``(seed, index)``."""
    rng = random.Random(f"repro-fuzz/{seed}/{index}")
    tables, parents = _gen_tables(rng)
    partitions = rng.randint(2, 4)
    config = _gen_config(rng, tables, parents, partitions)
    case = {
        "seed": f"{seed}/{index}",
        "partitions": partitions,
        "tables": tables,
        "config": config,
        "queries": [],
        "loads": _gen_loads(rng, tables, parents),
        "variant": {
            "optimizations": rng.random() < 0.5,
            "locality": rng.random() < 0.5,
            "predicate_transfer": rng.random() < 0.5,
        },
    }
    for _ in range(rng.randint(1, 3)):
        case["queries"].append(_gen_query(rng, tables, parents))
    return case


# -- schema and data -------------------------------------------------------


def _gen_tables(rng: random.Random) -> tuple[list[dict], dict[str, str]]:
    """Tables with data, plus the FK edge map ``{child: parent}``."""
    count = rng.randint(2, 4)
    tables: list[dict] = []
    parents: dict[str, str] = {}
    ids_by_table: dict[str, list[int]] = {}
    for i in range(count):
        name = f"t{i}"
        columns: list[list] = [["id", "integer", False]]
        for d in range(rng.randint(1, 3)):
            dtype = rng.choice(_DATA_TYPES)
            columns.append([f"d{d}", dtype, rng.random() < 0.6])
        parent = None
        if i > 0 and rng.random() < 0.8:
            parent = f"t{rng.randrange(i)}"
            parents[name] = parent
            columns.append([f"fk_{parent}", "integer", True])
        ids = sorted(rng.sample(range(0, 60), rng.randint(4, 24)))
        ids_by_table[name] = ids
        rows = []
        for row_id in ids:
            row: list = [row_id]
            for col_name, dtype, nullable in columns[1:]:
                if col_name.startswith("fk_"):
                    row.append(_gen_fk(rng, ids_by_table[parent]))
                else:
                    row.append(_gen_value(rng, dtype, nullable))
            rows.append(row)
        tables.append(
            {"name": name, "columns": columns, "pk": ["id"], "rows": rows}
        )
    return tables, parents


def _gen_value(rng: random.Random, dtype: str, nullable: bool) -> object:
    if nullable and rng.random() < 0.25:
        return None
    if dtype == "integer":
        return rng.choice(_INT_POOL) if rng.random() < 0.8 else rng.randint(-5, 50)
    if dtype == "float":
        return rng.choice(_FLOAT_POOL)
    if dtype == "varchar":
        return rng.choice(_STR_POOL)
    return rng.random() < 0.5


def _gen_fk(rng: random.Random, parent_ids: list[int]) -> object:
    roll = rng.random()
    if roll < 0.15:
        return None  # NULL FK: partner-less by definition
    if roll < 0.30:
        return rng.randint(0, 70)  # possibly dangling
    return rng.choice(parent_ids)


# -- partitioning configuration --------------------------------------------


def _gen_config(
    rng: random.Random,
    tables: list[dict],
    parents: dict[str, str],
    partitions: int,
) -> dict:
    config: dict[str, dict] = {}
    for table in tables:
        name = table["name"]
        parent = parents.get(name)
        if (
            parent is not None
            and config[parent]["kind"] != "replicated"
            and rng.random() < 0.65
        ):
            config[name] = {
                "kind": "pref",
                "referenced": parent,
                "on": [[f"fk_{parent}", "id"]],
            }
            continue
        roll = rng.random()
        if roll < 0.45:
            columns = ["id"]
            if parent is not None and rng.random() < 0.3:
                columns = [f"fk_{parent}"]
            config[name] = {"kind": "hash", "columns": columns}
        elif roll < 0.65:
            config[name] = {
                "kind": "range",
                "column": "id",
                "boundaries": sorted(rng.sample(range(5, 55), partitions - 1)),
            }
        elif roll < 0.85:
            config[name] = {"kind": "round_robin"}
        else:
            config[name] = {"kind": "replicated"}
    return config


# -- incremental loads -----------------------------------------------------


def _gen_loads(
    rng: random.Random, tables: list[dict], parents: dict[str, str]
) -> dict:
    if rng.random() < 0.5:
        return {}
    loads: dict[str, list[list]] = {}
    fresh = iter(rng.sample(range(100, 400), 64))
    chosen = rng.sample(tables, rng.randint(1, min(2, len(tables))))
    loaded_ids: dict[str, list[int]] = {}
    base_ids = {
        t["name"]: [row[0] for row in t["rows"]] for t in tables
    }
    for table in sorted(chosen, key=lambda t: t["name"]):
        name = table["name"]
        parent = parents.get(name)
        rows = []
        for _ in range(rng.randint(1, 6)):
            row: list = [next(fresh)]
            for col_name, dtype, nullable in table["columns"][1:]:
                if col_name.startswith("fk_"):
                    # Mix of existing parents, freshly loaded parents
                    # (exercising locality propagation), NULLs, danglers.
                    pool = base_ids[parent] + loaded_ids.get(parent, [])
                    row.append(_gen_fk(rng, pool))
                else:
                    row.append(_gen_value(rng, dtype, nullable))
            rows.append(row)
        loads[name] = rows
        loaded_ids[name] = [row[0] for row in rows]
    return loads


# -- queries ---------------------------------------------------------------


def _gen_query(
    rng: random.Random, tables: list[dict], parents: dict[str, str]
) -> dict:
    counter = [0]

    def scan(table: dict) -> tuple[dict, list[tuple[str, str]]]:
        alias = f"a{counter[0]}"
        counter[0] += 1
        env = [
            (f"{alias}.{name}", dtype)
            for name, dtype, _null in table["columns"]
        ]
        node = {"op": "scan", "table": table["name"], "alias": alias}
        if rng.random() < 0.3:
            node = {"op": "filter", "input": node, "pred": _gen_pred(rng, env)}
        return node, env

    node, env = scan(rng.choice(tables))
    for _ in range(rng.randint(0, 2)):
        right_table = rng.choice(tables)
        right, right_env = scan(right_table)
        node, env = _gen_join(rng, node, env, right, right_env, right_table)
    if rng.random() < 0.65:
        node = {"op": "filter", "input": node, "pred": _gen_pred(rng, env)}
    node, env = _gen_finisher(rng, node, env)
    if env and rng.random() < 0.25:
        keys = [
            [name, rng.random() < 0.7]
            for name, _ in rng.sample(env, rng.randint(1, min(2, len(env))))
        ]
        node = {"op": "order_by", "input": node, "keys": keys}
    return node


def _gen_join(
    rng: random.Random,
    left: dict,
    left_env: list[tuple[str, str]],
    right: dict,
    right_env: list[tuple[str, str]],
    right_table: dict,
) -> tuple[dict, list[tuple[str, str]]]:
    kind = rng.choices(
        ("inner", "left_outer", "semi", "anti", "cross"),
        weights=(40, 20, 17, 18, 5),
    )[0]
    on: list[list[str]] = []
    if kind != "cross":
        on = [list(pair) for pair in _pick_join_keys(rng, left_env, right_env)]
    residual = None
    if kind == "cross" or (on and rng.random() < 0.3) or not on:
        residual = _gen_theta(rng, left_env, right_env)
        if residual is None and not on:
            kind = "cross"  # no comparable columns at all: plain product
    node = {
        "op": "join",
        "left": left,
        "right": right,
        "kind": kind,
        "on": on,
        "residual": residual,
    }
    if kind in ("semi", "anti"):
        return node, left_env
    return node, left_env + right_env


def _pick_join_keys(
    rng: random.Random,
    left_env: list[tuple[str, str]],
    right_env: list[tuple[str, str]],
) -> list[tuple[str, str]]:
    """Equi-join column pairs, preferring FK -> id reference edges."""
    # An fk_<table> column paired with any id column is a plausible edge;
    # a "wrong" pairing (different alias's id) is still a valid equi-join.
    fk_edges = [
        (lname, rname)
        for lname, _ in left_env
        if lname.split(".", 1)[1].startswith("fk_")
        for rname, _ in right_env
        if rname.split(".", 1)[1] == "id"
    ]
    fk_edges += [
        (lname, rname)
        for rname, _ in right_env
        if rname.split(".", 1)[1].startswith("fk_")
        for lname, _ in left_env
        if lname.split(".", 1)[1] == "id"
    ]
    if fk_edges and rng.random() < 0.75:
        return [rng.choice(fk_edges)]
    pairs = [
        (lname, rname)
        for lname, ldtype in left_env
        for rname, rdtype in right_env
        if ldtype == rdtype and ldtype in ("integer", "varchar")
    ]
    if not pairs:
        return []
    chosen = [rng.choice(pairs)]
    if len(pairs) > 1 and rng.random() < 0.2:
        extra = rng.choice(pairs)
        if extra[0] != chosen[0][0] and extra[1] != chosen[0][1]:
            chosen.append(extra)
    return chosen


def _gen_theta(
    rng: random.Random,
    left_env: list[tuple[str, str]],
    right_env: list[tuple[str, str]],
) -> dict | None:
    for dtype_class in rng.sample(["num", "str"], 2):
        wanted = ("integer", "float") if dtype_class == "num" else ("varchar",)
        lhs = [name for name, dtype in left_env if dtype in wanted]
        rhs = [name for name, dtype in right_env if dtype in wanted]
        if lhs and rhs:
            return {
                "t": "cmp",
                "op": rng.choice(_THETA_OPS),
                "l": {"t": "col", "name": rng.choice(lhs)},
                "r": {"t": "col", "name": rng.choice(rhs)},
            }
    return None


# -- predicates and expressions --------------------------------------------


def _gen_pred(rng: random.Random, env: list[tuple[str, str]], depth: int = 0) -> dict:
    roll = rng.random()
    if depth < 2 and roll < 0.25:
        op = "and" if rng.random() < 0.5 else "or"
        return {
            "t": op,
            "args": [
                _gen_pred(rng, env, depth + 1)
                for _ in range(rng.randint(2, 3))
            ],
        }
    if depth < 2 and roll < 0.35:
        return {"t": "not", "arg": _gen_pred(rng, env, depth + 1)}
    name, dtype = rng.choice(env)
    column = {"t": "col", "name": name}
    roll = rng.random()
    if roll < 0.15:
        return {"t": "isnull", "arg": column, "neg": rng.random() < 0.5}
    if roll < 0.35:
        vals = [_gen_literal(rng, dtype) for _ in range(rng.randint(0, 4))]
        if rng.random() < 0.4:
            vals.append(None)  # NOT IN (... NULL) is never true
        rng.shuffle(vals)
        return {
            "t": "inlist",
            "arg": column,
            "vals": vals,
            "neg": rng.random() < 0.4,
        }
    lhs: dict = column
    if dtype in ("integer", "float") and rng.random() < 0.3:
        lhs = _gen_arith(rng, env, column, dtype)
    op = rng.choice(_CMP_OPS if dtype != "boolean" else ("=", "!="))
    rhs: dict = {"t": "lit", "v": _gen_literal(rng, dtype)}
    if rng.random() < 0.1:
        rhs = {"t": "lit", "v": None}  # col <op> NULL: always unknown
    elif rng.random() < 0.25:
        peers = [n for n, d in env if d == dtype and n != name]
        if peers:
            rhs = {"t": "col", "name": rng.choice(peers)}
    return {"t": "cmp", "op": op, "l": lhs, "r": rhs}


def _gen_arith(
    rng: random.Random,
    env: list[tuple[str, str]],
    column: dict,
    dtype: str,
) -> dict:
    op = rng.choice(("+", "-", "*", "/"))
    peers = [n for n, d in env if d in ("integer", "float")]
    if peers and rng.random() < 0.5:
        other: dict = {"t": "col", "name": rng.choice(peers)}
    else:
        other = {"t": "lit", "v": _gen_literal(rng, dtype) or 1}
    if rng.random() < 0.5:
        return {"t": "arith", "op": op, "l": column, "r": other}
    return {"t": "arith", "op": op, "l": other, "r": column}


def _gen_literal(rng: random.Random, dtype: str) -> object:
    if dtype == "integer":
        return rng.choice(_INT_POOL + (rng.randint(-5, 50),))
    if dtype == "float":
        return rng.choice(_FLOAT_POOL)
    if dtype == "varchar":
        return rng.choice(_STR_POOL)
    return rng.random() < 0.5


# -- finishers -------------------------------------------------------------


def _gen_finisher(
    rng: random.Random, node: dict, env: list[tuple[str, str]]
) -> tuple[dict, list[tuple[str, str]]]:
    roll = rng.random()
    if roll < 0.4:
        return _gen_aggregate(rng, node, env)
    if roll < 0.75:
        return _gen_project(rng, node, env)
    return node, env


def _gen_aggregate(
    rng: random.Random, node: dict, env: list[tuple[str, str]]
) -> tuple[dict, list[tuple[str, str]]]:
    groupable = [
        (name, dtype) for name, dtype in env if dtype != "float"
    ]
    group_by = [
        name
        for name, _ in rng.sample(
            groupable, rng.randint(0, min(2, len(groupable)))
        )
    ]
    numeric = [name for name, dtype in env if dtype in ("integer", "float")]
    ordered = [
        name for name, dtype in env if dtype in ("integer", "float", "varchar")
    ]
    aggs: list[list] = []
    for i in range(rng.randint(1, 3)):
        name = f"z{i}"
        roll = rng.random()
        if roll < 0.2 or not numeric:
            if roll < 0.1 or not env:
                aggs.append(["count", None, name])
            else:
                target = {"t": "col", "name": rng.choice(env)[0]}
                func = rng.choice(("count", "count_distinct"))
                aggs.append([func, target, name])
        elif roll < 0.6:
            func = rng.choice(("sum", "avg"))
            expr: dict = {"t": "col", "name": rng.choice(numeric)}
            if rng.random() < 0.2:
                expr = _gen_arith(rng, env, expr, "integer")
            aggs.append([func, expr, name])
        else:
            pool = ordered or [n for n, _ in env]
            func = rng.choice(("min", "max"))
            aggs.append([func, {"t": "col", "name": rng.choice(pool)}, name])
    out = {"op": "aggregate", "input": node, "group_by": group_by, "aggs": aggs}
    out_env = [
        (name, dict(env)[name]) for name in group_by
    ] + [(agg[2], "integer") for agg in aggs]
    return out, out_env


def _gen_project(
    rng: random.Random, node: dict, env: list[tuple[str, str]]
) -> tuple[dict, list[tuple[str, str]]]:
    outputs: list[list] = []
    out_env: list[tuple[str, str]] = []
    for i in range(rng.randint(1, min(4, len(env)))):
        name, dtype = rng.choice(env)
        expr: dict = {"t": "col", "name": name}
        if dtype in ("integer", "float") and rng.random() < 0.25:
            expr = _gen_arith(rng, env, expr, dtype)
            dtype = "float"
        outputs.append([f"c{i}", expr])
        out_env.append((f"c{i}", dtype))
    return (
        {
            "op": "project",
            "input": node,
            "outputs": outputs,
            "distinct": rng.random() < 0.3,
        },
        out_env,
    )
