"""``python -m repro`` — a self-contained demonstration of the library.

Generates a small TPC-H database, runs the schema-driven and
workload-driven designers, partitions the data, and executes a few queries
on the simulated cluster, printing the annotated physical plans and the
locality/redundancy numbers.

Options::

    python -m repro [--scale SF] [--nodes N] [--seed S]
    python -m repro explain --query Q3 --analyze --batch-size 256 \
        --backends serial,thread,process --check --json-out trace.json
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import paper_cost_parameters
from repro.cluster import SimulatedCluster
from repro.design import QuerySpec, SchemaDrivenDesigner, WorkloadDrivenDesigner
from repro.engine.rows import DEFAULT_BATCH_SIZE
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES, generate_tpch


def explain_main(argv: list[str]) -> int:
    """``python -m repro explain`` — EXPLAIN [ANALYZE] a TPC-H query.

    Designs a schema-driven PREF configuration for generated TPC-H data,
    then renders the annotated plan; with ``--analyze`` the query runs
    traced on each requested backend and the measured locality/skew show
    up next to the rewriter's annotations.  ``--check`` asserts the
    canonical (timing-free) traces are identical across the backends;
    ``--json-out`` writes the last backend's trace as schema-validated
    JSON.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="EXPLAIN [ANALYZE] one TPC-H query on the simulated cluster",
    )
    parser.add_argument(
        "--query", default="Q3", choices=sorted(ALL_QUERIES),
        help="TPC-H query name",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="execute the query and show measured locality/skew per operator",
    )
    parser.add_argument(
        "--backends", default="thread",
        help="comma-separated engine backends (serial, thread, process)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="statically certify the rewritten plan (parallel-correctness) "
        "and, with --analyze, assert canonical traces are identical "
        "across the backends",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the (validated) JSON trace export to this path",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002, help="TPC-H scale factor"
    )
    parser.add_argument(
        "--nodes", type=int, default=4, help="simulated cluster size"
    )
    parser.add_argument("--seed", type=int, default=1, help="generator seed")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="rows per execution batch (results are invariant to this)",
    )
    parser.add_argument(
        "--predicate-transfer", action="store_true",
        help="transfer Bloom filters across the join graph before "
        "execution (results are invariant to this)",
    )
    parser.add_argument(
        "--bloom-fpr", type=float, default=0.01,
        help="target false-positive rate of the transferred Bloom filters",
    )
    args = parser.parse_args(argv)

    database = generate_tpch(scale_factor=args.scale, seed=args.seed)
    design = SchemaDrivenDesigner(database, args.nodes).design(
        replicate=SMALL_TABLES
    )
    build = ALL_QUERIES[args.query]

    if args.check:
        # Static parallel-correctness certification of the rewritten plan
        # runs first — a refuted plan is not worth tracing.
        from repro.partitioning import partition_database
        from repro.query.certify import certify
        from repro.query.executor import Executor

        partitioned = partition_database(database, design.config)
        executor = Executor(
            partitioned,
            predicate_transfer=args.predicate_transfer,
            bloom_fpr=args.bloom_fpr,
        )
        verdict = certify(executor.annotate(build()), partitioned)
        if not verdict.certified:
            print(verdict.render(), file=sys.stderr)
            return 1
        print(f"certify OK: {args.query} parallel-correct\n")
        print(verdict.render())
        print()

    if not args.analyze:
        cluster = SimulatedCluster.partition(
            database, design.config, batch_size=args.batch_size,
            predicate_transfer=args.predicate_transfer,
            bloom_fpr=args.bloom_fpr,
        )
        try:
            print(cluster.explain(build()))
        finally:
            cluster.close()
        return 0

    from repro.obs.explain import dump_trace, trace_to_json, validate_trace
    from repro.partitioning import partition_database

    partitioned = partition_database(database, design.config)
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    traces = {}
    for backend_name in backends:
        cluster = SimulatedCluster(
            database, partitioned, design.config, backend=backend_name,
            batch_size=args.batch_size,
            predicate_transfer=args.predicate_transfer,
            bloom_fpr=args.bloom_fpr,
        )
        try:
            result = cluster.run(build(), analyze=True, query_name=args.query)
        finally:
            cluster.close()
        traces[backend_name] = result.trace
        print(result.explain_analyze())
        print()

    if args.check:
        canonicals = {
            name: trace.canonical() for name, trace in traces.items()
        }
        reference_name, *rest = list(canonicals)
        for name in rest:
            if canonicals[name] != canonicals[reference_name]:
                print(
                    f"TRACE MISMATCH: {name} diverges from {reference_name}",
                    file=sys.stderr,
                )
                return 1
        print(f"trace check OK: {', '.join(canonicals)} identical")

    if args.json_out:
        last_trace = traces[backends[-1]]
        violations = validate_trace(trace_to_json(last_trace))
        if violations:
            for violation in violations:
                print(f"schema violation: {violation}", file=sys.stderr)
            return 1
        dump_trace(last_trace, args.json_out)
        print(f"wrote {args.json_out}")
    return 0


def certify_main(argv: list[str]) -> int:
    """``python -m repro certify`` — certify TPC-H plans under 3 configs.

    Rewrites every TPC-H query against an all-hashed, a schema-driven
    PREF, and a patched-PREF (``max_copies=1`` on un-referenced PREF
    leaves) partitioning of generated data, and runs the static
    parallel-correctness certifier on each plan.  Exit status 1 if any
    plan is refuted; ``--render`` prints the per-node certificates.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro certify",
        description="statically certify TPC-H plans under several configs",
    )
    parser.add_argument(
        "--query", default=None, choices=sorted(ALL_QUERIES),
        help="certify only this query (default: all)",
    )
    parser.add_argument(
        "--configs", default="hashed,pref,patched",
        help="comma-separated subset of hashed,pref,patched",
    )
    parser.add_argument(
        "--render", action="store_true",
        help="print the full per-node certificate for every plan",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002, help="TPC-H scale factor"
    )
    parser.add_argument(
        "--nodes", type=int, default=4, help="simulated cluster size"
    )
    parser.add_argument("--seed", type=int, default=1, help="generator seed")
    args = parser.parse_args(argv)

    from repro.partitioning import partition_database
    from repro.partitioning.config import PartitioningConfig
    from repro.partitioning.scheme import PatchedPrefScheme, PrefScheme
    from repro.query.certify import certify
    from repro.query.rewrite import Rewriter

    database = generate_tpch(scale_factor=args.scale, seed=args.seed)
    pref_config = SchemaDrivenDesigner(database, args.nodes).design(
        replicate=SMALL_TABLES
    ).config

    def patched_config() -> PartitioningConfig:
        referenced = {
            scheme.referenced_table
            for _table, scheme in pref_config
            if isinstance(scheme, PrefScheme)
        }
        patched = PartitioningConfig(pref_config.partition_count)
        for table, scheme in pref_config:
            if isinstance(scheme, PrefScheme) and table not in referenced:
                scheme = PatchedPrefScheme(
                    scheme.referenced_table, scheme.predicate, max_copies=1
                )
            patched.add(table, scheme)
        patched.validate(database.schema)
        return patched

    from repro.design.baselines import all_hashed

    builders = {
        "hashed": lambda: all_hashed(database, args.nodes),
        "pref": lambda: pref_config,
        "patched": patched_config,
    }
    wanted = [name.strip() for name in args.configs.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in builders]
    if unknown:
        print(f"unknown configs: {', '.join(unknown)}", file=sys.stderr)
        return 2
    queries = [args.query] if args.query else sorted(ALL_QUERIES)

    failures = 0
    for config_name in wanted:
        config = builders[config_name]()
        partitioned = partition_database(database, config)
        rewriter = Rewriter(partitioned)
        certified = 0
        for name in queries:
            verdict = certify(rewriter.rewrite(ALL_QUERIES[name]()), partitioned)
            if verdict.certified:
                certified += 1
                if args.render:
                    print(f"--- {config_name} {name} ---")
                    print(verdict.render())
            else:
                failures += 1
                print(f"--- {config_name} {name} ---", file=sys.stderr)
                print(verdict.render(), file=sys.stderr)
        print(f"{config_name}: {certified}/{len(queries)} plans certified")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "certify":
        return certify_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PREF partitioning demo on generated TPC-H data",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002, help="TPC-H scale factor"
    )
    parser.add_argument(
        "--nodes", type=int, default=10, help="simulated cluster size"
    )
    parser.add_argument("--seed", type=int, default=1, help="generator seed")
    args = parser.parse_args(argv)

    print(f"generating TPC-H at SF {args.scale} (seed {args.seed}) ...")
    database = generate_tpch(scale_factor=args.scale, seed=args.seed)
    sizes = ", ".join(
        f"{name}={table.row_count}" for name, table in database.tables.items()
    )
    print(f"  {sizes}\n")

    print("running the schema-driven designer (paper Section 3) ...")
    design = SchemaDrivenDesigner(database, args.nodes).design(
        replicate=SMALL_TABLES
    )
    print(design.config.describe())
    print(
        f"  seeds={design.seeds}  DL={design.data_locality:.2f}  "
        f"estimated DR={design.estimated_redundancy:.2f}\n"
    )

    print("partitioning and executing queries ...")
    cluster = SimulatedCluster.partition(database, design.config)
    cost = paper_cost_parameters(args.scale)
    print(f"  actual DR = {cluster.data_redundancy():.2f}")
    for name in ("Q3", "Q9", "Q22"):
        result = cluster.run(ALL_QUERIES[name]())
        print(
            f"  {name}: {len(result.rows)} rows, "
            f"{result.stats.shuffle_count} shuffles, "
            f"{result.stats.network_bytes} net bytes, "
            f"~{result.simulated_seconds(cost):.1f}s at deployment scale"
        )

    print("\nannotated plan of a co-partitioned join:")
    print(
        cluster.explain(
            "SELECT c.c_mktsegment, COUNT(*) AS n FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "GROUP BY c.c_mktsegment"
        )
    )

    print("\nrunning the workload-driven designer (paper Section 4) ...")
    specs = [
        QuerySpec.from_plan(name, build(), database.schema)
        for name, build in ALL_QUERIES.items()
    ]
    wd = WorkloadDrivenDesigner(database, args.nodes).design(
        specs, replicate=SMALL_TABLES
    )
    print(
        f"  {wd.components_initial} query components -> "
        f"{wd.components_after_containment} after containment -> "
        f"{len(wd.fragments)} fragments; DL={wd.data_locality:.2f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
