"""``python -m repro`` — a self-contained demonstration of the library.

Generates a small TPC-H database, runs the schema-driven and
workload-driven designers, partitions the data, and executes a few queries
on the simulated cluster, printing the annotated physical plans and the
locality/redundancy numbers.

Options::

    python -m repro [--scale SF] [--nodes N] [--seed S]
"""

from __future__ import annotations

import argparse

from repro.bench import paper_cost_parameters
from repro.cluster import SimulatedCluster
from repro.design import QuerySpec, SchemaDrivenDesigner, WorkloadDrivenDesigner
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES, generate_tpch


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PREF partitioning demo on generated TPC-H data",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002, help="TPC-H scale factor"
    )
    parser.add_argument(
        "--nodes", type=int, default=10, help="simulated cluster size"
    )
    parser.add_argument("--seed", type=int, default=1, help="generator seed")
    args = parser.parse_args(argv)

    print(f"generating TPC-H at SF {args.scale} (seed {args.seed}) ...")
    database = generate_tpch(scale_factor=args.scale, seed=args.seed)
    sizes = ", ".join(
        f"{name}={table.row_count}" for name, table in database.tables.items()
    )
    print(f"  {sizes}\n")

    print("running the schema-driven designer (paper Section 3) ...")
    design = SchemaDrivenDesigner(database, args.nodes).design(
        replicate=SMALL_TABLES
    )
    print(design.config.describe())
    print(
        f"  seeds={design.seeds}  DL={design.data_locality:.2f}  "
        f"estimated DR={design.estimated_redundancy:.2f}\n"
    )

    print("partitioning and executing queries ...")
    cluster = SimulatedCluster.partition(database, design.config)
    cost = paper_cost_parameters(args.scale)
    print(f"  actual DR = {cluster.data_redundancy():.2f}")
    for name in ("Q3", "Q9", "Q22"):
        result = cluster.run(ALL_QUERIES[name]())
        print(
            f"  {name}: {len(result.rows)} rows, "
            f"{result.stats.shuffle_count} shuffles, "
            f"{result.stats.network_bytes} net bytes, "
            f"~{result.simulated_seconds(cost):.1f}s at deployment scale"
        )

    print("\nannotated plan of a co-partitioned join:")
    print(
        cluster.explain(
            "SELECT c.c_mktsegment, COUNT(*) AS n FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "GROUP BY c.c_mktsegment"
        )
    )

    print("\nrunning the workload-driven designer (paper Section 4) ...")
    specs = [
        QuerySpec.from_plan(name, build(), database.schema)
        for name, build in ALL_QUERIES.items()
    ]
    wd = WorkloadDrivenDesigner(database, args.nodes).design(
        specs, replicate=SMALL_TABLES
    )
    print(
        f"  {wd.components_initial} query components -> "
        f"{wd.components_after_containment} after containment -> "
        f"{len(wd.fragments)} fragments; DL={wd.data_locality:.2f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
