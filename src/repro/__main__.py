"""``python -m repro`` — a self-contained demonstration of the library.

Generates a small TPC-H database, runs the schema-driven and
workload-driven designers, partitions the data, and executes a few queries
on the simulated cluster, printing the annotated physical plans and the
locality/redundancy numbers.

Options::

    python -m repro [--scale SF] [--nodes N] [--seed S]
    python -m repro explain --query Q3 --analyze --batch-size 256 \
        --backends serial,thread,process --check --json-out trace.json
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import paper_cost_parameters
from repro.cluster import SimulatedCluster
from repro.design import QuerySpec, SchemaDrivenDesigner, WorkloadDrivenDesigner
from repro.engine.rows import DEFAULT_BATCH_SIZE
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES, generate_tpch


def explain_main(argv: list[str]) -> int:
    """``python -m repro explain`` — EXPLAIN [ANALYZE] a TPC-H query.

    Designs a schema-driven PREF configuration for generated TPC-H data,
    then renders the annotated plan; with ``--analyze`` the query runs
    traced on each requested backend and the measured locality/skew show
    up next to the rewriter's annotations.  ``--check`` asserts the
    canonical (timing-free) traces are identical across the backends;
    ``--json-out`` writes the last backend's trace as schema-validated
    JSON.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="EXPLAIN [ANALYZE] one TPC-H query on the simulated cluster",
    )
    parser.add_argument(
        "--query", default="Q3", choices=sorted(ALL_QUERIES),
        help="TPC-H query name",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="execute the query and show measured locality/skew per operator",
    )
    parser.add_argument(
        "--backends", default="thread",
        help="comma-separated engine backends (serial, thread, process)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="assert canonical traces are identical across the backends",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the (validated) JSON trace export to this path",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002, help="TPC-H scale factor"
    )
    parser.add_argument(
        "--nodes", type=int, default=4, help="simulated cluster size"
    )
    parser.add_argument("--seed", type=int, default=1, help="generator seed")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="rows per execution batch (results are invariant to this)",
    )
    parser.add_argument(
        "--predicate-transfer", action="store_true",
        help="transfer Bloom filters across the join graph before "
        "execution (results are invariant to this)",
    )
    parser.add_argument(
        "--bloom-fpr", type=float, default=0.01,
        help="target false-positive rate of the transferred Bloom filters",
    )
    args = parser.parse_args(argv)

    database = generate_tpch(scale_factor=args.scale, seed=args.seed)
    design = SchemaDrivenDesigner(database, args.nodes).design(
        replicate=SMALL_TABLES
    )
    build = ALL_QUERIES[args.query]

    if not args.analyze:
        cluster = SimulatedCluster.partition(
            database, design.config, batch_size=args.batch_size,
            predicate_transfer=args.predicate_transfer,
            bloom_fpr=args.bloom_fpr,
        )
        try:
            print(cluster.explain(build()))
        finally:
            cluster.close()
        return 0

    from repro.obs.explain import dump_trace, trace_to_json, validate_trace
    from repro.partitioning import partition_database

    partitioned = partition_database(database, design.config)
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    traces = {}
    for backend_name in backends:
        cluster = SimulatedCluster(
            database, partitioned, design.config, backend=backend_name,
            batch_size=args.batch_size,
            predicate_transfer=args.predicate_transfer,
            bloom_fpr=args.bloom_fpr,
        )
        try:
            result = cluster.run(build(), analyze=True, query_name=args.query)
        finally:
            cluster.close()
        traces[backend_name] = result.trace
        print(result.explain_analyze())
        print()

    if args.check:
        canonicals = {
            name: trace.canonical() for name, trace in traces.items()
        }
        reference_name, *rest = list(canonicals)
        for name in rest:
            if canonicals[name] != canonicals[reference_name]:
                print(
                    f"TRACE MISMATCH: {name} diverges from {reference_name}",
                    file=sys.stderr,
                )
                return 1
        print(f"trace check OK: {', '.join(canonicals)} identical")

    if args.json_out:
        last_trace = traces[backends[-1]]
        violations = validate_trace(trace_to_json(last_trace))
        if violations:
            for violation in violations:
                print(f"schema violation: {violation}", file=sys.stderr)
            return 1
        dump_trace(last_trace, args.json_out)
        print(f"wrote {args.json_out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PREF partitioning demo on generated TPC-H data",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002, help="TPC-H scale factor"
    )
    parser.add_argument(
        "--nodes", type=int, default=10, help="simulated cluster size"
    )
    parser.add_argument("--seed", type=int, default=1, help="generator seed")
    args = parser.parse_args(argv)

    print(f"generating TPC-H at SF {args.scale} (seed {args.seed}) ...")
    database = generate_tpch(scale_factor=args.scale, seed=args.seed)
    sizes = ", ".join(
        f"{name}={table.row_count}" for name, table in database.tables.items()
    )
    print(f"  {sizes}\n")

    print("running the schema-driven designer (paper Section 3) ...")
    design = SchemaDrivenDesigner(database, args.nodes).design(
        replicate=SMALL_TABLES
    )
    print(design.config.describe())
    print(
        f"  seeds={design.seeds}  DL={design.data_locality:.2f}  "
        f"estimated DR={design.estimated_redundancy:.2f}\n"
    )

    print("partitioning and executing queries ...")
    cluster = SimulatedCluster.partition(database, design.config)
    cost = paper_cost_parameters(args.scale)
    print(f"  actual DR = {cluster.data_redundancy():.2f}")
    for name in ("Q3", "Q9", "Q22"):
        result = cluster.run(ALL_QUERIES[name]())
        print(
            f"  {name}: {len(result.rows)} rows, "
            f"{result.stats.shuffle_count} shuffles, "
            f"{result.stats.network_bytes} net bytes, "
            f"~{result.simulated_seconds(cost):.1f}s at deployment scale"
        )

    print("\nannotated plan of a co-partitioned join:")
    print(
        cluster.explain(
            "SELECT c.c_mktsegment, COUNT(*) AS n FROM customer c "
            "JOIN orders o ON c.c_custkey = o.o_custkey "
            "GROUP BY c.c_mktsegment"
        )
    )

    print("\nrunning the workload-driven designer (paper Section 4) ...")
    specs = [
        QuerySpec.from_plan(name, build(), database.schema)
        for name, build in ALL_QUERIES.items()
    ]
    wd = WorkloadDrivenDesigner(database, args.nodes).design(
        specs, replicate=SMALL_TABLES
    )
    print(
        f"  {wd.components_initial} query components -> "
        f"{wd.components_after_containment} after containment -> "
        f"{len(wd.fragments)} fragments; DL={wd.data_locality:.2f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
