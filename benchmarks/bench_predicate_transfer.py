"""Predicate transfer on a non-co-partitioned (all-hashed) layout.

The fig9-style ablation for the Bloom-filter transfer knob: every table
hash-partitioned on its primary key (the fig7 "Hashed" baseline, where
no join is co-partitioned and every join edge shuffles), a set of
multi-join TPC-H queries run with the knob off and on.  Reported per
query: bytes shuffled, wall-clock, and simulated deployment-scale
seconds.  Answers must be identical — the knob only changes how many
rows cross the wire, never which rows come back.
"""

import time

from conftest import NODES, TPCH_SF

from repro.bench import format_table, paper_cost_parameters
from repro.design.baselines import all_hashed
from repro.partitioning import partition_database
from repro.query import Executor
from repro.workloads.tpch import ALL_QUERIES

#: Multi-join queries where transfer prunes hard on a hashed layout
#: (selective date/region predicates far from the fact table), plus two
#: where co-pruning is weak (Q5's region filter survives most keys; Q9's
#: part filter prunes ~30%) to keep the report honest.
QUERIES = ("Q2", "Q3", "Q4", "Q20", "Q5", "Q9")


def test_predicate_transfer_all_hashed(benchmark, tpch_db, report):
    partitioned = partition_database(tpch_db, all_hashed(tpch_db, NODES))
    cost = paper_cost_parameters(TPCH_SF)

    def experiment():
        results = {}
        for name in QUERIES:
            plan_builder = ALL_QUERIES[name]
            for transfer in (False, True):
                executor = Executor(partitioned, predicate_transfer=transfer)
                start = time.perf_counter()
                result = executor.execute(plan_builder())
                wall = time.perf_counter() - start
                results[(name, transfer)] = (
                    result.stats.network_bytes,
                    wall,
                    result.simulated_seconds(cost),
                    result.rows,
                )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    reductions = {}
    for name in QUERIES:
        off_bytes, off_wall, off_sim, off_rows = results[(name, False)]
        on_bytes, on_wall, on_sim, on_rows = results[(name, True)]
        assert on_rows == off_rows, f"{name}: answers changed under transfer"
        reduction = 100.0 * (off_bytes - on_bytes) / off_bytes if off_bytes else 0.0
        reductions[name] = reduction
        rows.append(
            (
                name,
                off_bytes,
                on_bytes,
                f"{reduction:.1f}%",
                f"{off_wall * 1000:.0f} -> {on_wall * 1000:.0f}",
                f"{off_sim:.1f} -> {on_sim:.1f}",
            )
        )
    report(
        "predicate_transfer",
        format_table(
            [
                "Query",
                "bytes off",
                "bytes on",
                "reduction",
                "wall (ms)",
                "simulated (s)",
            ],
            rows,
            title="Bloom predicate transfer on the all-hashed baseline "
            f"(SF {TPCH_SF} / {NODES} nodes)",
        ),
    )
    # Acceptance: at least two multi-join queries save >= 30% of the
    # bytes shuffled on the non-co-partitioned layout.
    big_wins = [name for name, r in reductions.items() if r >= 30.0]
    assert len(big_wins) >= 2, f"expected >=2 queries at >=30%, got {reductions}"
    assert reductions["Q3"] >= 30.0
