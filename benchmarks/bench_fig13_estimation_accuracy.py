"""Figure 13: redundancy-estimate accuracy vs sampling rate and runtime.

Paper reference: a 10% sampling rate already gives ~3% estimation error on
uniform TPC-H and ~8% on skewed TPC-DS, with acceptable one-off runtime;
skew costs accuracy at every sampling rate.
"""

from conftest import NODES

from repro.bench import estimation_accuracy, format_table
from repro.workloads import tpcds, tpch

SAMPLING_RATES = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]


def test_fig13_accuracy_vs_sampling(benchmark, tpch_db, tpcds_db, report):
    def experiment():
        return {
            "TPC-H": estimation_accuracy(
                tpch_db, NODES, tpch.SMALL_TABLES, SAMPLING_RATES
            ),
            "TPC-DS": estimation_accuracy(
                tpcds_db, NODES, tpcds.SMALL_TABLES, SAMPLING_RATES
            ),
        }

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for index, rate in enumerate(SAMPLING_RATES):
        tpch_point = points["TPC-H"][index]
        tpcds_point = points["TPC-DS"][index]
        rows.append(
            (
                f"{rate:.0%}",
                round(tpch_point.error, 3),
                round(tpch_point.runtime_seconds, 3),
                round(tpcds_point.error, 3),
                round(tpcds_point.runtime_seconds, 3),
            )
        )
    report(
        "fig13_estimation_accuracy",
        format_table(
            [
                "sampling",
                "TPC-H error",
                "TPC-H time (s)",
                "TPC-DS error",
                "TPC-DS time (s)",
            ],
            rows,
            title="Figure 13: estimation error and design runtime vs sampling rate",
        ),
    )
    tpch_errors = [p.error for p in points["TPC-H"]]
    tpcds_errors = [p.error for p in points["TPC-DS"]]
    # A modest sample is already accurate on uniform TPC-H (paper: ~3%
    # error at 10%), and full scans are near-exact.
    assert tpch_errors[2] < 0.15  # 10% sampling
    assert tpch_errors[-1] < 0.05  # full scan
    # Skewed TPC-DS estimates are worse than uniform TPC-H overall (the
    # paper's headline for this figure).
    assert sum(tpcds_errors[:4]) > sum(tpch_errors[:4])
