"""Row-at-a-time loops vs the columnar kernels (engine micro-benchmark).

The columnar refactor replaced the engine's per-row tuple loops with
``ColumnBatch`` kernels.  This benchmark keeps the old row idioms alive
as reference implementations for the three hot operator shapes — filter,
hash-join probe, grouped aggregation — checks the batch kernels produce
identical output, and reports the measured speedup.  It is the unit-level
companion to the end-to-end numbers in EXPERIMENTS.md (fig7 wall clock).
"""

from __future__ import annotations

import random
import time

from repro.engine.rows import DEFAULT_BATCH_SIZE, ColumnBatch
from repro.query.expressions import col, lit

ROWS = 20_000
BUILD_ROWS = 2_000
COLUMNS = ["key", "grp", "price"]


def _probe_rows():
    rng = random.Random(42)
    return [
        (
            rng.randrange(BUILD_ROWS * 2),
            f"g{rng.randrange(25)}",
            None if rng.random() < 0.02 else rng.random() * 100.0,
        )
        for _ in range(ROWS)
    ]


def _build_rows():
    rng = random.Random(43)
    return [(key, f"b{rng.randrange(10)}") for key in range(BUILD_ROWS)]


def _best_of(fn, rounds: int = 5) -> tuple[float, object]:
    result = None
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _report_speedup(report, name: str, row_seconds: float, batch_seconds: float):
    report(
        name,
        f"{name}: row {row_seconds * 1e3:.2f} ms -> "
        f"batch {batch_seconds * 1e3:.2f} ms "
        f"({row_seconds / batch_seconds:.1f}x)",
    )


def test_bench_filter_vectorized(report):
    rows = _probe_rows()
    batch = ColumnBatch.from_rows(rows, len(COLUMNS))
    predicate = col("price") > lit(50.0)
    row_fn = predicate.bind(COLUMNS)
    batch_fn = predicate.bind_batch(COLUMNS)

    def by_row():
        return [row for row in rows if row_fn(row) is True]

    def by_batch():
        return ColumnBatch.concat(
            [
                chunk.compress(batch_fn(chunk))
                for chunk in batch.chunks(DEFAULT_BATCH_SIZE)
            ],
            batch.width,
        )

    row_seconds, row_result = _best_of(by_row)
    batch_seconds, batch_result = _best_of(by_batch)
    assert batch_result.to_rows() == row_result
    _report_speedup(report, "bench_filter_vectorized", row_seconds, batch_seconds)


def test_bench_join_probe_vectorized(report):
    probe_rows = _probe_rows()
    build_rows = _build_rows()
    probe = ColumnBatch.from_rows(probe_rows, len(COLUMNS))
    build = ColumnBatch.from_rows(build_rows, 2)

    def by_row():
        # The row engine keyed both sides with per-row key tuples.
        table: dict = {}
        for index, row in enumerate(build_rows):
            key = tuple(row[p] for p in (0,))
            table.setdefault(key, []).append(index)
        out = []
        for left in probe_rows:
            key = tuple(left[p] for p in (0,))
            if None in key:
                continue
            for match in table.get(key, ()):
                out.append(left + build_rows[match])
        return out

    def by_batch():
        # The operators' unique-build fast path: optimistic dict(zip)
        # build, C-level map probe, gather only the matched rows.
        from itertools import compress as icompress

        keys = build.columns[0]
        table = dict(zip(keys, range(build.length)))
        raw = list(map(table.get, probe.columns[0]))
        mask = [match is not None for match in raw]
        left = probe.compress(mask)
        right = build.take(list(icompress(raw, mask)))
        return ColumnBatch(left.columns + right.columns, left.length)

    row_seconds, row_result = _best_of(by_row)
    batch_seconds, batch_result = _best_of(by_batch)
    assert batch_result.to_rows() == row_result
    _report_speedup(
        report, "bench_join_probe_vectorized", row_seconds, batch_seconds
    )


def test_bench_aggregate_keys_vectorized(report):
    rows = _probe_rows()
    batch = ColumnBatch.from_rows(rows, len(COLUMNS))
    positions = (1, 0)

    def by_row():
        groups: dict = {}
        for row in rows:
            key = tuple(row[p] for p in positions)
            state = groups.get(key)
            if state is None:
                groups[key] = state = [0, 0.0]
            state[0] += 1
            if row[2] is not None:
                state[1] += row[2]
        return {
            key: (count, total) for key, (count, total) in groups.items()
        }

    def by_batch():
        groups: dict = {}
        values = batch.columns[2]
        for index, key in enumerate(batch.key_tuples(positions)):
            state = groups.get(key)
            if state is None:
                groups[key] = state = [0, 0.0]
            state[0] += 1
            value = values[index]
            if value is not None:
                state[1] += value
        return {
            key: (count, total) for key, (count, total) in groups.items()
        }

    row_seconds, row_result = _best_of(by_row)
    batch_seconds, batch_result = _best_of(by_batch)
    assert batch_result == row_result
    _report_speedup(
        report, "bench_aggregate_keys_vectorized", row_seconds, batch_seconds
    )
