"""Shared fixtures for the experiment benchmarks.

Each benchmark reproduces one table or figure of the paper.  Results are
printed and also written to ``benchmarks/results/<experiment>.txt`` so they
can be inspected after a ``pytest benchmarks/ --benchmark-only`` run.

Scale: the paper ran TPC-H/TPC-DS at SF 10 on ten nodes; benchmarks here
generate small databases with the same shape and extrapolate simulated
runtimes through :func:`repro.bench.paper_cost_parameters`.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.design import QuerySpec
from repro.workloads.tpcds import generate_tpcds, tpcds_workload
from repro.workloads.tpch import ALL_QUERIES, generate_tpch

#: TPC-H scale used by the benchmarks (paper: SF 10).
TPCH_SF = 0.005
#: TPC-DS scale (fraction of the paper's SF 10 row counts).
TPCDS_SF = 0.0005
#: Cluster size (paper: 10 nodes).
NODES = 10

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def tpch_db():
    """The TPC-H database all TPC-H experiments run against."""
    return generate_tpch(scale_factor=TPCH_SF, seed=1)


@pytest.fixture(scope="session")
def tpch_specs(tpch_db):
    """Workload specs of the 22 TPC-H queries (input of WD)."""
    return [
        QuerySpec.from_plan(name, build(), tpch_db.schema)
        for name, build in ALL_QUERIES.items()
    ]


@pytest.fixture(scope="session")
def tpcds_db():
    """The TPC-DS database (skewed, SF 10 shape)."""
    return generate_tpcds(scale_factor=TPCDS_SF, seed=1)


@pytest.fixture(scope="session")
def tpcds_specs():
    """The 99 TPC-DS queries as SPJA-block workload specs."""
    return tpcds_workload()


@pytest.fixture(scope="session")
def report():
    """Write an experiment report to stdout and benchmarks/results/."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write
