"""Sustained-QPS serving benchmark: concurrent server vs serialized loop.

A mixed TPC-H read workload is replayed two ways over identical data:

* **baseline** — one thread calling ``cluster.sql`` per request, the
  pre-serving execution model (no admission, no caches, no concurrency);
* **served** — N client sessions submitting the same request mix through
  :class:`repro.serve.ClusterServer`, where repeats hit the result cache
  and distinct statements share the plan cache.

Every served answer is checked against the single-query reference rows,
and a bulk load mid-run must flip the dependent answers (epoch
invalidation at work).  Reported: QPS both ways, speedup, p50/p99
latency from the server's metrics registry, and cache hit rates.

Runs under pytest (``pytest benchmarks/bench_serving.py``) or standalone
(``python benchmarks/bench_serving.py --smoke``), writing the same
report to ``benchmarks/results/serving.txt``.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import format_table  # noqa: E402
from repro.cluster import SimulatedCluster  # noqa: E402
from repro.partitioning import (  # noqa: E402
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
    ReplicatedScheme,
)
from repro.workloads.tpch import generate_tpch  # noqa: E402

#: TPC-H scale / cluster size of the serving experiment.
SERVING_SF = 0.005
SMOKE_SF = 0.002
NODES = 10
CLIENTS = 4
REQUESTS_PER_CLIENT = 25
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The read mix: repeated dashboard-style statements over the PREF
#: layout — exactly the shape a result cache exists for.
QUERIES = (
    "SELECT COUNT(*) AS n FROM lineitem l",
    (
        "SELECT l.l_returnflag, SUM(l.l_extendedprice) AS revenue, "
        "COUNT(*) AS n FROM lineitem l GROUP BY l.l_returnflag"
    ),
    "SELECT c.c_mktsegment, COUNT(*) AS n FROM customer c GROUP BY c.c_mktsegment",
    (
        "SELECT n.n_name, COUNT(*) AS c FROM customer c "
        "JOIN nation n ON c.c_nationkey = n.n_nationkey GROUP BY n.n_name"
    ),
    (
        "SELECT o.o_orderpriority, COUNT(*) AS n FROM orders o "
        "WHERE o.o_totalprice > 1000.0 GROUP BY o.o_orderpriority"
    ),
    (
        "SELECT SUM(l.l_extendedprice) AS rev FROM lineitem l "
        "JOIN orders o ON l.l_orderkey = o.o_orderkey "
        "WHERE o.o_totalprice > 500.0"
    ),
)


def tpch_pref_config(n: int) -> PartitioningConfig:
    """Orders-seeded PREF chain over the TPC-H schema."""
    config = PartitioningConfig(n)
    config.add("orders", HashScheme(("o_orderkey",), n))
    config.add(
        "lineitem",
        PrefScheme(
            "orders",
            JoinPredicate.equi("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ),
    )
    config.add(
        "customer",
        PrefScheme(
            "orders",
            JoinPredicate.equi("customer", "c_custkey", "orders", "o_custkey"),
        ),
    )
    config.add("part", HashScheme(("p_partkey",), n))
    config.add(
        "partsupp",
        PrefScheme(
            "part",
            JoinPredicate.equi("partsupp", "ps_partkey", "part", "p_partkey"),
        ),
    )
    for small in ("supplier", "nation", "region"):
        config.add(small, ReplicatedScheme(n))
    return config


def _normalise(rows, places: int = 6) -> Counter:
    return Counter(
        tuple(
            round(v, places) if isinstance(v, float) else v for v in row
        )
        for row in rows
    )


def run_serving_experiment(
    scale: float = SERVING_SF,
    clients: int = CLIENTS,
    requests_per_client: int = REQUESTS_PER_CLIENT,
) -> dict:
    """Run baseline + served workloads; return the measurements."""
    database = generate_tpch(scale_factor=scale, seed=1)
    config = tpch_pref_config(NODES)
    cluster = SimulatedCluster.partition(database, config)
    total_requests = clients * requests_per_client
    try:
        # Reference answers, and a cache/partition warm-up for the
        # baseline so the serialized loop is measured at steady state.
        reference = {sql: cluster.sql(sql).rows for sql in QUERIES}

        started = time.perf_counter()
        for step in range(total_requests):
            cluster.sql(QUERIES[step % len(QUERIES)])
        baseline_seconds = time.perf_counter() - started
        baseline_qps = total_requests / baseline_seconds

        server = cluster.serve(max_inflight=clients, queue_depth=512)
        mismatches: list[str] = []

        def client(index: int) -> None:
            session = server.session(f"client-{index}")
            for step in range(requests_per_client):
                sql = QUERIES[(index + step) % len(QUERIES)]
                rows = session.execute(sql, timeout=120).rows
                if _normalise(rows) != _normalise(reference[sql]):
                    mismatches.append(sql)

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served_seconds = time.perf_counter() - started
        served_qps = total_requests / served_seconds

        # Mid-workload write: the dependent cached answer must move, not
        # be served stale, and the PREF closure must bump lineitem too.
        orders_count_sql = "SELECT COUNT(*) AS n FROM orders o"
        before = server.execute(orders_count_sql).rows[0][0]
        server.insert(
            "orders", [(10_000_000, 1, "O", 42.0, 100, "1-URGENT", 0)]
        )
        after = server.execute(orders_count_sql).rows[0][0]
        invalidation_ok = after == before + 1
        lineitem_epoch_bumped = server.epochs.current("lineitem") > 0
        summary = server.metrics_summary()
        server.close()
    finally:
        cluster.close()
    return {
        "scale": scale,
        "clients": clients,
        "requests": total_requests,
        "baseline_qps": baseline_qps,
        "served_qps": served_qps,
        "speedup": served_qps / baseline_qps,
        "mismatches": mismatches,
        "invalidation_ok": invalidation_ok and lineitem_epoch_bumped,
        "metrics": summary,
    }


def render_report(outcome: dict) -> str:
    metrics = outcome["metrics"]
    latency = metrics["latency"]
    rows = [
        ("baseline (serialized)", f"{outcome['baseline_qps']:.1f}", "-", "-", "-"),
        (
            f"served ({outcome['clients']} clients)",
            f"{outcome['served_qps']:.1f}",
            f"{latency['p50'] * 1000:.2f}",
            f"{latency['p99'] * 1000:.2f}",
            f"{metrics['result_cache']['hit_rate']:.1%}",
        ),
    ]
    table = format_table(
        ["mode", "QPS", "p50 (ms)", "p99 (ms)", "result-cache hits"],
        rows,
        title=(
            f"Sustained QPS, TPC-H SF {outcome['scale']} / {NODES} nodes, "
            f"{outcome['requests']} requests "
            f"(speedup {outcome['speedup']:.1f}x)"
        ),
    )
    plan = metrics["plan_cache"]
    lines = [
        table,
        f"plan cache: hit_rate={plan['hit_rate']:.1%} "
        f"invalidations={plan['invalidations']}",
        f"result cache invalidations={metrics['result_cache']['invalidations']}",
        f"answers identical to single-query execution: "
        f"{'yes' if not outcome['mismatches'] else outcome['mismatches'][:3]}",
        f"mid-workload load invalidates dependents: "
        f"{'yes' if outcome['invalidation_ok'] else 'NO'}",
    ]
    return "\n".join(lines)


def _check(outcome: dict) -> None:
    assert not outcome["mismatches"], outcome["mismatches"][:3]
    assert outcome["invalidation_ok"]
    assert outcome["speedup"] >= 3.0, (
        f"expected >=3x sustained QPS over the serialized baseline, got "
        f"{outcome['speedup']:.2f}x"
    )
    assert outcome["metrics"]["latency"]["p99"] >= outcome["metrics"]["latency"]["p50"]


def test_serving_qps(benchmark, report):
    outcome = benchmark.pedantic(run_serving_experiment, rounds=1, iterations=1)
    report("serving", render_report(outcome))
    _check(outcome)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    outcome = run_serving_experiment(scale=SMOKE_SF if smoke else SERVING_SF)
    text = render_report(outcome)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serving.txt").write_text(text + "\n")
    print(text)
    _check(outcome)
    print("serving benchmark: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
