"""Adaptive repartitioning benchmark: detect -> recommend -> migrate.

A skewed star-join workload runs against a hash/hash layout where every
join must shuffle both sides.  The adaptive loop then closes the gap
online, with the server still up:

* :func:`repro.partitioning.detect_hotspots` reads the query traces and
  flags ``fact`` for its measured remote fraction (and skewed shuffle);
* :func:`repro.partitioning.recommend_patched_pref` turns the hottest
  join into a patched-PREF design: ``fact`` co-partitioned with ``dim``
  on the join key, per-tuple duplication capped at ``MAX_COPIES`` and
  overflow copies routed to the patch lists (serviced by the residual
  shuffle at scan time);
* ``server.migrate`` applies it under the write lock, so concurrent
  readers never see a half-migrated store.

The same workload replays afterwards; answers must be identical and the
measured remote-bytes fraction must drop by at least 30%, with stored
duplication bounded at ``MAX_COPIES`` and a nonzero patch list proving
the cap actually bound.

Runs under pytest (``pytest benchmarks/bench_adaptive.py``) or standalone
(``python benchmarks/bench_adaptive.py --smoke``), writing the report to
``benchmarks/results/adaptive.txt``.
"""

from __future__ import annotations

import random
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import format_table  # noqa: E402
from repro.catalog import DatabaseSchema, DataType  # noqa: E402
from repro.cluster import SimulatedCluster  # noqa: E402
from repro.partitioning import (  # noqa: E402
    AdaptiveThresholds,
    HashScheme,
    PartitioningConfig,
    detect_hotspots,
    recommend_patched_pref,
)
from repro.storage import Database  # noqa: E402

NODES = 8
GROUPS = 64
FACT_ROWS = 3000
SMOKE_FACT_ROWS = 800
MAX_COPIES = 2
#: Groups with extra dimension rows: their partner partitions outnumber
#: ``MAX_COPIES``, so their fact tuples overflow into the patch lists.
WIDE_GROUPS = frozenset(g for g in range(GROUPS) if g % 16 == 15)
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The replayed workload: grp-joins that the hash/hash layout must
#: shuffle both sides of, plus one scan-only probe.
QUERIES = (
    "SELECT SUM(f.val) AS revenue FROM fact f JOIN dim d ON f.grp = d.grp",
    (
        "SELECT d.label, SUM(f.val) AS revenue, COUNT(*) AS n "
        "FROM fact f JOIN dim d ON f.grp = d.grp GROUP BY d.label"
    ),
    (
        "SELECT COUNT(*) AS n FROM fact f JOIN dim d ON f.grp = d.grp "
        "WHERE f.val > 50.0"
    ),
    "SELECT COUNT(*) AS n FROM fact f",
)


def star_schema() -> DatabaseSchema:
    schema = DatabaseSchema()
    schema.create_table(
        "dim",
        [
            ("k", DataType.INTEGER),
            ("grp", DataType.INTEGER),
            ("label", DataType.VARCHAR),
        ],
        primary_key=["k"],
    )
    schema.create_table(
        "fact",
        [
            ("id", DataType.INTEGER),
            ("grp", DataType.INTEGER),
            ("val", DataType.FLOAT),
        ],
        primary_key=["id"],
    )
    return schema


def star_database(fact_rows: int, seed: int = 7) -> Database:
    """A dim/fact star with zipf-skewed fact group keys.

    Every group has two dimension rows scattered by the hash on ``k``;
    the :data:`WIDE_GROUPS` get four, so under patched PREF their fact
    tuples have more partner partitions than ``MAX_COPIES`` stored
    copies and must be patched.
    """
    rng = random.Random(seed)
    database = Database(star_schema())
    dim_rows = []
    k = 0
    for grp in range(GROUPS):
        copies = 4 if grp in WIDE_GROUPS else 2
        for _ in range(copies):
            dim_rows.append((k, grp, f"seg{grp % 8}"))
            k += 1
    database.load("dim", dim_rows)
    weights = [1.0 / (1 + grp) for grp in range(GROUPS)]
    groups = rng.choices(range(GROUPS), weights=weights, k=fact_rows)
    database.load(
        "fact",
        [
            (i, grp, float(rng.randrange(100)))
            for i, grp in enumerate(groups)
        ],
    )
    return database


def hash_config(n: int) -> PartitioningConfig:
    """The starting layout: both tables hashed on their primary keys."""
    config = PartitioningConfig(n)
    config.add("dim", HashScheme(("k",), n))
    config.add("fact", HashScheme(("id",), n))
    return config


def _normalise(rows, places: int = 6) -> Counter:
    return Counter(
        tuple(
            round(v, places) if isinstance(v, float) else v for v in row
        )
        for row in rows
    )


def _measure(traces, schema) -> dict:
    """Remote-bytes fraction of a workload from its traces."""
    shuffled = 0
    scanned = 0
    patch_rows = 0
    for trace in traces:
        shuffled += int(trace.metrics.counter("engine.bytes.shuffled"))
        patch_rows += int(trace.metrics.counter("engine.rows.patch_shipped"))
        for span in trace.spans():
            if span.name != "scan":
                continue
            table = span.label[len("scan(") : -1]
            scanned += span.rows_out * schema.table(table).row_byte_width
    return {
        "shuffled_bytes": shuffled,
        "scanned_bytes": scanned,
        "remote_fraction": shuffled / scanned if scanned else 0.0,
        "patch_rows": patch_rows,
    }


def run_adaptive_experiment(
    fact_rows: int = FACT_ROWS, seed: int = 7
) -> dict:
    """Baseline -> detect -> recommend -> migrate -> replay; measure both."""
    database = star_database(fact_rows, seed=seed)
    cluster = SimulatedCluster.partition(database, hash_config(NODES))
    server = cluster.serve(queue_depth=64)
    mismatches: list[str] = []
    try:
        reference: dict[str, list] = {}
        before_traces = []
        for sql in QUERIES:
            result = server.execute(sql, analyze=True, timeout=120)
            reference[sql] = result.rows
            before_traces.append(result.trace)
        before = _measure(before_traces, database.schema)

        report = detect_hotspots(
            before_traces,
            AdaptiveThresholds(remote_fraction=0.1, skew=1.2, min_rows=50),
        )
        hotspot = report.hotspot("fact")
        new_config = recommend_patched_pref(
            cluster.config, database.schema, report, max_copies=MAX_COPIES
        )
        migration = None
        copy_counts: dict = {}
        patch_entries = 0
        after = dict(before)
        if new_config is not None:
            plan = server.migrate(new_config)
            fact = cluster.partitioned.table("fact")
            copy_counts = fact.stored_copy_counts()
            patch_entries = fact.patch_count
            migration = {
                "copies_moved": plan.copies_moved,
                "moved_fraction": plan.moved_fraction,
                "seconds_parallel": plan.simulated_seconds(),
                "seconds_serialized": plan.simulated_seconds(parallelism=1),
            }
            after_traces = []
            for sql in QUERIES:
                result = server.execute(sql, analyze=True, timeout=120)
                if _normalise(result.rows) != _normalise(reference[sql]):
                    mismatches.append(sql)
                after_traces.append(result.trace)
            after = _measure(after_traces, database.schema)
        server.close()
    finally:
        cluster.close()
    drop = (
        1.0 - after["remote_fraction"] / before["remote_fraction"]
        if before["remote_fraction"]
        else 0.0
    )
    return {
        "fact_rows": fact_rows,
        "before": before,
        "after": after,
        "remote_drop": drop,
        "hotspot": hotspot,
        "recommended": new_config is not None,
        "scheme": (
            new_config.describe() if new_config is not None else "(none)"
        ),
        "migration": migration,
        "max_stored_copies": max(copy_counts.values(), default=0),
        "patch_entries": patch_entries,
        "mismatches": mismatches,
    }


def render_report(outcome: dict) -> str:
    before, after = outcome["before"], outcome["after"]
    rows = [
        (
            "hash/hash baseline",
            f"{before['shuffled_bytes'] / 1024:.1f}",
            f"{before['remote_fraction']:.3f}",
            str(before["patch_rows"]),
        ),
        (
            f"patched-PREF (max_copies={MAX_COPIES})",
            f"{after['shuffled_bytes'] / 1024:.1f}",
            f"{after['remote_fraction']:.3f}",
            str(after["patch_rows"]),
        ),
    ]
    table = format_table(
        ["layout", "shuffled KiB", "remote fraction", "patch rows"],
        rows,
        title=(
            f"Adaptive repartitioning, {outcome['fact_rows']} fact rows / "
            f"{NODES} nodes (remote fraction -{outcome['remote_drop']:.0%})"
        ),
    )
    hotspot = outcome["hotspot"]
    lines = [table]
    if hotspot is not None:
        lines.append(
            f"detector: fact flagged ({'; '.join(hotspot.reasons)}), "
            f"partner={hotspot.partner_table} on {hotspot.join_columns}"
        )
    migration = outcome["migration"]
    if migration is not None:
        lines.append(
            f"migration: {migration['copies_moved']} copies moved "
            f"({migration['moved_fraction']:.0%} of target), "
            f"{migration['seconds_parallel']:.3f}s parallel vs "
            f"{migration['seconds_serialized']:.3f}s serialized"
        )
    lines.append(
        f"duplication: max stored copies={outcome['max_stored_copies']} "
        f"(bound {MAX_COPIES}), patch entries={outcome['patch_entries']}"
    )
    lines.append(
        "answers identical before/after migration: "
        f"{'yes' if not outcome['mismatches'] else outcome['mismatches'][:3]}"
    )
    return "\n".join(lines)


def _check(outcome: dict) -> None:
    hotspot = outcome["hotspot"]
    assert hotspot is not None, "detector did not flag the fact table"
    assert any("remote fraction" in r for r in hotspot.reasons)
    assert outcome["recommended"], "no patched-PREF recommendation produced"
    assert not outcome["mismatches"], outcome["mismatches"][:3]
    assert outcome["migration"] is not None
    assert outcome["migration"]["copies_moved"] > 0
    assert (
        outcome["migration"]["seconds_parallel"]
        <= outcome["migration"]["seconds_serialized"]
    )
    assert 0 < outcome["max_stored_copies"] <= MAX_COPIES
    assert outcome["patch_entries"] > 0, "duplication cap never bound"
    assert outcome["after"]["patch_rows"] > 0, "residual shuffle never ran"
    assert outcome["remote_drop"] >= 0.30, (
        f"expected >=30% remote-fraction drop, got "
        f"{outcome['remote_drop']:.0%}"
    )


def test_adaptive_locality(benchmark, report):
    outcome = benchmark.pedantic(
        run_adaptive_experiment, rounds=1, iterations=1
    )
    report("adaptive", render_report(outcome))
    _check(outcome)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    outcome = run_adaptive_experiment(
        fact_rows=SMOKE_FACT_ROWS if smoke else FACT_ROWS
    )
    text = render_report(outcome)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "adaptive.txt").write_text(text + "\n")
    print(text)
    _check(outcome)
    print("adaptive benchmark: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
