"""Figure 9: effectiveness of the dup/hasS-index optimizations.

Three queries over the SD-partitioned TPC-H database, with (w) and without
(wo) the Section 2.2 optimizations:

1. count distinct customer tuples — with the dup index this is a purely
   local filter; without, a value-based DISTINCT shuffles the table;
2. semi join customer ⋉ orders — hasS=1 filter vs executing the join;
3. anti join customer ▷ orders — hasS=0 filter vs a remote NOT-EXISTS
   nested loop (the paper's unoptimised run exceeded its 1-hour budget).
"""

from conftest import NODES, TPCH_SF

from repro.bench import format_table, paper_cost_parameters, tpch_variants
from repro.partitioning import partition_database
from repro.query import Executor, Query
from repro.workloads.tpch import SMALL_TABLES


def _queries():
    customer = Query.scan("customer", alias="c")
    orders = Query.scan("orders", alias="o")
    count = [("count", None, "cnt")]
    return {
        "distinct": {
            # With the dup index, counting base tuples is local.
            True: customer.aggregate(aggregates=count).plan(),
            # Without it, DISTINCT over values must shuffle the rows.
            False: customer.select(
                ["c.c_custkey", "c.c_name"], distinct=True
            ).aggregate(aggregates=count).plan(),
        },
        "semi join": {
            flag: customer.semi_join(
                orders, on=[("c.c_custkey", "o.o_custkey")]
            ).aggregate(aggregates=count).plan()
            for flag in (True, False)
        },
        "anti join": {
            flag: customer.anti_join(
                orders, on=[("c.c_custkey", "o.o_custkey")]
            ).aggregate(aggregates=count).plan()
            for flag in (True, False)
        },
    }


def test_fig9_optimizations(benchmark, tpch_db, tpch_specs, report):
    cost = paper_cost_parameters(TPCH_SF)
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)
    config = variants["SD (wo small tables)"].configs[0]
    partitioned = partition_database(tpch_db, config)

    def experiment():
        results = {}
        for name, plans in _queries().items():
            for optimizations in (True, False):
                executor = Executor(partitioned, optimizations=optimizations)
                result = executor.execute(plans[optimizations])
                results[(name, optimizations)] = (
                    result.simulated_seconds(cost),
                    result.rows,
                )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name in ("distinct", "semi join", "anti join"):
        with_opt, with_rows = results[(name, True)]
        without, without_rows = results[(name, False)]
        assert with_rows == without_rows, name  # same answers
        rows.append(
            (name, round(with_opt, 2), round(without, 2),
             round(without / with_opt, 1))
        )
    report(
        "fig9_optimizations",
        format_table(
            ["Query", "w opt (s)", "wo opt (s)", "speedup"],
            rows,
            title="Figure 9: effectiveness of the dup/hasS optimizations "
            f"(simulated, SF 10 / {NODES} nodes)",
        ),
    )
    speedups = {row[0]: row[3] for row in rows}
    assert speedups["anti join"] > 20  # paper: aborted after 1 hour
    assert speedups["semi join"] > 2
    # The dup-index count avoids the value-shuffle entirely; the linear
    # cost model bounds the visible speedup well below the paper's 100x
    # (MySQL's unoptimised DISTINCT was sort-based).
    assert speedups["distinct"] > 1.3


def test_q13_outer_join_rewrite(benchmark, tpch_db, tpch_specs, report):
    """The paper's Q13 anecdote (Section 5.1).

    Q13 (customer LEFT JOIN orders + two-level aggregation) exceeded the
    hour budget on the paper's testbed until rewritten with the Section
    2.2 optimizations, after which it finished in ~40 s.  Here: the
    locality-aware rewrite executes the outer join partition-locally; the
    locality-unaware execution re-partitions both inputs.
    """
    from repro.bench import materialize_variant
    from repro.workloads.tpch import ALL_QUERIES

    cost = paper_cost_parameters(TPCH_SF)
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)
    partitioned = materialize_variant(
        tpch_db, variants["WD (wo small tables)"]
    )[variants["WD (wo small tables)"].config_for("Q13")]

    def experiment():
        plan = ALL_QUERIES["Q13"]()
        local = Executor(partitioned, locality=True).execute(plan)
        remote = Executor(partitioned, locality=False).execute(plan)
        assert sorted(local.rows) == sorted(remote.rows)
        return (
            local.simulated_seconds(cost),
            remote.simulated_seconds(cost),
        )

    rewritten, naive = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        "fig9_q13_rewrite",
        format_table(
            ["Execution", "simulated seconds"],
            [
                ("Q13 rewritten (local outer join)", round(rewritten, 1)),
                ("Q13 locality-unaware (shuffled)", round(naive, 1)),
            ],
            title="Q13 outer-join rewrite (paper Section 5.1 anecdote)",
        ),
    )
    assert naive > rewritten
