"""Figure 10: bulk-loading costs of the TPC-H variants.

Paper reference: SD (wo small tables) is only slightly more expensive than
classical partitioning; disallowing redundancy roughly doubles SD's cost
(the biggest table becomes PREF and pays a look-up per tuple); WD is the
most expensive (redundancy plus look-ups).  Better query performance is
paid for at load time.
"""

from conftest import NODES

from repro.bench import bulk_load_variant, format_table, tpch_variants
from repro.workloads.tpch import SMALL_TABLES

VARIANTS = [
    "Classical",
    "SD (wo small tables)",
    "SD (wo small tables, wo redundancy)",
    "WD (wo small tables)",
]


def test_fig10_bulk_loading(benchmark, tpch_db, tpch_specs, report):
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)

    def experiment():
        return {
            name: bulk_load_variant(tpch_db, variants[name])
            for name in VARIANTS
        }

    stats = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            stats[name].rows_in,
            stats[name].copies_written,
            stats[name].index_lookups,
            round(stats[name].simulated_seconds(), 2),
        )
        for name in VARIANTS
    ]
    report(
        "fig10_bulk_loading",
        format_table(
            ["Variant", "rows in", "copies written", "index lookups", "sim s"],
            rows,
            title="Figure 10: bulk-loading cost per variant",
        ),
    )
    seconds = {name: stats[name].simulated_seconds() for name in VARIANTS}
    # Classical pays I/O for replication but no look-ups.
    assert stats["Classical"].index_lookups == 0
    assert stats["Classical"].copies_written > stats["Classical"].rows_in
    # Every PREF insert pays a partition-index look-up; in both SD
    # variants the biggest table (lineitem) is PREF partitioned, so the
    # bulk of all inserted rows needs a look-up.
    assert stats["SD (wo small tables)"].index_lookups > 0.5 * stats[
        "SD (wo small tables)"
    ].rows_in
    assert stats["SD (wo small tables, wo redundancy)"].index_lookups > 0
    # WD pays both redundancy and look-ups: at least as expensive as the
    # redundancy-free SD variant.
    assert (
        seconds["WD (wo small tables)"]
        >= seconds["SD (wo small tables, wo redundancy)"]
    )
