"""Figure 7: total simulated runtime of the TPC-H queries per variant.

Paper reference (SF 10, 10 nodes, queries 13 and 22 excluded): the
workload-driven design is fastest; both SD variants and WD beat classical
partitioning on the partsupp-heavy queries, while classical partitioning's
total is dominated by joins against its large replicated tables.
"""

from conftest import NODES, TPCH_SF

from repro.bench import (
    format_table,
    paper_cost_parameters,
    run_workload,
    tpch_variants,
)
from repro.workloads.tpch import SMALL_TABLES, runtime_queries

VARIANTS = [
    "Classical",
    "SD (wo small tables)",
    "SD (wo small tables, wo redundancy)",
    "WD (wo small tables)",
]


def test_fig7_total_runtime(benchmark, tpch_db, tpch_specs, report):
    cost = paper_cost_parameters(TPCH_SF)
    queries = runtime_queries()
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)

    def experiment():
        return {
            name: run_workload(tpch_db, variants[name], queries, cost=cost)
            for name in VARIANTS
        }

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    totals = {
        name: sum(run.seconds for run in variant_runs.values())
        for name, variant_runs in runs.items()
    }
    rows = [(name, round(totals[name], 1)) for name in VARIANTS]
    report(
        "fig7_total_runtime",
        format_table(
            ["Variant", "total simulated seconds"],
            rows,
            title=(
                "Figure 7: total runtime of the TPC-H queries "
                f"(simulated, extrapolated to SF 10 / {NODES} nodes)"
            ),
        ),
    )
    # Headline shape: WD wins overall.
    assert totals["WD (wo small tables)"] == min(totals.values())
    # Classical loses badly on the partsupp-replica queries (paper: Q2,
    # Q11, Q16, Q20 are 5-30x slower under CP).
    for query in ("Q2", "Q11", "Q16", "Q20"):
        cp = runs["Classical"][query].seconds
        sd = runs["SD (wo small tables)"][query].seconds
        assert cp > 2 * sd, (query, cp, sd)
