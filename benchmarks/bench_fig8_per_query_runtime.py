"""Figure 8: per-query simulated runtime for 20 TPC-H queries x 4 variants.

The per-query patterns the paper highlights:

* remote operations make individual queries much slower (SD-wo-redundancy
  pays on the part/lineitem joins it cannot co-locate);
* high redundancy in classical partitioning hurts the queries touching the
  big replicated tables (Q2, Q11, Q16, Q20);
* WD is never catastrophic on any query.
"""

from conftest import NODES, TPCH_SF

from repro.bench import (
    format_table,
    paper_cost_parameters,
    run_workload,
    tpch_variants,
)
from repro.workloads.tpch import SMALL_TABLES, runtime_queries

VARIANTS = [
    "Classical",
    "SD (wo small tables)",
    "SD (wo small tables, wo redundancy)",
    "WD (wo small tables)",
]


def test_fig8_per_query_runtime(benchmark, tpch_db, tpch_specs, report):
    cost = paper_cost_parameters(TPCH_SF)
    queries = runtime_queries()
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)

    def experiment():
        return {
            name: run_workload(tpch_db, variants[name], queries, cost=cost)
            for name in VARIANTS
        }

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (query,)
        + tuple(round(runs[name][query].seconds, 1) for name in VARIANTS)
        for query in queries
    ]
    report(
        "fig8_per_query_runtime",
        format_table(
            ["Query", "Classical", "SD", "SD wo red.", "WD"],
            rows,
            title=(
                "Figure 8: per-query simulated runtime "
                f"(extrapolated to SF 10 / {NODES} nodes)"
            ),
        ),
    )
    # Remote-operation penalty: SD-wo-redundancy cannot co-locate the
    # part-lineitem join, so Q17/Q19 are much slower than under SD.
    for query in ("Q17", "Q19"):
        assert (
            runs["SD (wo small tables, wo redundancy)"][query].seconds
            > 2 * runs["SD (wo small tables)"][query].seconds
        )
    # WD is within a small factor of the best variant on every query.
    for query in queries:
        best = min(runs[name][query].seconds for name in VARIANTS)
        assert runs["WD (wo small tables)"][query].seconds <= 3 * best + 1.0
